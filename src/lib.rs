//! # aequus
//!
//! Facade crate re-exporting the full Aequus reproduction stack:
//!
//! * [`aequus_core`] — policies, usage, the fairshare algorithm, vectors,
//!   projections (the paper's contribution).
//! * [`aequus_services`] — the PDS/USS/UMS/FCS/IRS services and libaequus.
//! * [`aequus_rms`] — SLURM-like and Maui-like local resource managers.
//! * [`aequus_sim`] — the discrete-event grid simulator (test bed).
//! * [`aequus_workload`] — the Table II/III statistical models and
//!   synthetic trace generation.
//! * [`aequus_stats`] — the statistics substrate (18 distributions, BIC,
//!   KS, ACF).
//! * [`aequus_store`] — the durable per-site state store (CRC-framed WAL
//!   + checkpoints with crash-consistent replay).
//! * [`aequus_telemetry`] — metric registry, stage spans, event ring, and
//!   the empirical pipeline-delay tracer (see DESIGN.md, Observability).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

#![warn(missing_docs)]

pub use aequus_core as core;
pub use aequus_rms as rms;
pub use aequus_services as services;
pub use aequus_sim as sim;
pub use aequus_stats as stats;
pub use aequus_store as store;
pub use aequus_telemetry as telemetry;
pub use aequus_workload as workload;
