//! End-to-end decision-provenance and causal-tracing suite: every served
//! priority captured by a fully-traced grid run must replay **bit-for-bit**
//! from its stored explanation — under all three projections — and the
//! causal span chains must survive the chaos fault matrix (gossip retries,
//! resync pulls, snapshot catch-up) without a single broken parent link.
//! With tracing disabled the run must leave no observability residue at all.

use aequus::core::projection::ProjectionKind;
use aequus::core::Explanation;
use aequus::services::{RetryPolicy, ServiceTimings};
use aequus::sim::{GridScenario, GridSimulation, Outage, SimResult};
use aequus::telemetry::{SpanRecord, SpanTree};
use aequus::workload::{Trace, TraceJob};
use std::collections::{BTreeSet, HashSet};

fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A compact grid with aggressive service intervals (the chaos suite's
/// tuning) and full tracing: every usage report roots a causal trace and
/// every served query captures replayable provenance.
fn traced_scenario(seed: u64, projection: ProjectionKind) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    )
    .with_full_tracing();
    sc.projection = projection;
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.timings = ServiceTimings {
        report_delay_s: 5.0,
        uss_publish_interval_s: 30.0,
        ums_refresh_interval_s: 30.0,
        fcs_refresh_interval_s: 30.0,
        lib_cache_ttl_s: 10.0,
        lib_identity_ttl_s: 60.0,
        exchange_latency_s: 5.0,
    };
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    sc
}

fn trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn run(sc: GridScenario) -> SimResult {
    GridSimulation::new(sc).run(&trace(), 1800.0)
}

/// Every provenance record in the result must parse, self-verify, and
/// replay to the exact bits of the factor it was captured with.
fn assert_replays_bit_for_bit(result: &SimResult, label: &str) -> usize {
    let mut checked = 0;
    for (site, recs) in result.site_provenance.iter().enumerate() {
        for rec in recs {
            let ex = Explanation::from_json(&rec.json)
                .unwrap_or_else(|| panic!("{label}: site {site} provenance parses"));
            assert!(
                ex.verify(),
                "{label}: site {site} user {} explanation self-verifies",
                rec.user
            );
            assert_eq!(
                ex.replay().to_bits(),
                rec.factor.to_bits(),
                "{label}: site {site} user {} replay differs from served factor {:?}",
                rec.user,
                rec.factor,
            );
            checked += 1;
        }
    }
    checked
}

/// Every non-root span must find its parent somewhere in the merged
/// per-site stores — a broken link means a retry/resync/snapshot hop
/// dropped the causal context.
fn assert_no_broken_links(result: &SimResult, label: &str) {
    let all: Vec<&SpanRecord> = result.site_spans.iter().flatten().collect();
    let ids: HashSet<u64> = all.iter().map(|s| s.span_id).collect();
    for s in &all {
        assert!(
            s.parent_span == 0 || ids.contains(&s.parent_span),
            "{label}: span {} ({}) at site {} orphaned — parent {} missing",
            s.span_id,
            s.name,
            s.site,
            s.parent_span,
        );
    }
    // The bounded stores must not have evicted (which would make the link
    // check vacuous): the run is sized well under the per-site cap.
    for (site, spans) in result.site_spans.iter().enumerate() {
        assert!(
            spans.len() < 4096,
            "{label}: site {site} store at capacity, links may be evicted"
        );
    }
}

fn sites_of(tree: &SpanTree, out: &mut BTreeSet<u32>) {
    out.insert(tree.record.site);
    for c in &tree.children {
        sites_of(c, out);
    }
}

#[test]
fn replay_is_bit_for_bit_across_all_projections() {
    for projection in [
        ProjectionKind::Percental,
        ProjectionKind::Bitwise,
        ProjectionKind::Dictionary,
    ] {
        let result = run(traced_scenario(base_seed(), projection));
        let checked = assert_replays_bit_for_bit(&result, &format!("{projection:?}"));
        assert!(
            checked > 0,
            "{projection:?}: the traced run captured no provenance"
        );
    }
}

#[test]
fn traces_survive_the_chaos_fault_matrix() {
    let seed = base_seed();
    let outages: [&[Outage]; 2] = [
        &[],
        &[Outage {
            cluster: 1,
            from_s: 120.0,
            to_s: 420.0,
        }],
    ];
    for &drop in &[0.1, 0.3] {
        for (i, outage_set) in outages.iter().enumerate() {
            let label = format!("drop {drop} / outages #{i}");
            let mut sc = traced_scenario(seed, ProjectionKind::Percental);
            sc.faults.drop_probability = drop;
            sc.faults.outages = outage_set.to_vec();
            let result = run(sc);
            assert_no_broken_links(&result, &label);
            assert!(
                assert_replays_bit_for_bit(&result, &label) > 0,
                "{label}: no provenance captured"
            );
            // The surviving spans still assemble into end-to-end causal
            // trees, and gossip still carries contexts across sites.
            let stores: Vec<&[SpanRecord]> = result.site_spans.iter().map(Vec::as_slice).collect();
            let trees = SpanTree::assemble(&stores);
            assert!(!trees.is_empty(), "{label}: no causal trees assembled");
            let cross_site = trees.iter().any(|t| {
                let mut sites = BTreeSet::new();
                sites_of(t, &mut sites);
                sites.len() > 1
            });
            assert!(cross_site, "{label}: no trace crossed a site boundary");
        }
    }
}

#[test]
fn disabled_tracing_leaves_no_residue() {
    let mut sc = traced_scenario(base_seed(), ProjectionKind::Percental);
    sc.telemetry = false;
    sc.span_sample_every = 0;
    sc.capture_provenance = false;
    let result = run(sc);
    assert!(result.site_spans.iter().all(Vec::is_empty));
    assert!(result.site_provenance.iter().all(Vec::is_empty));
    assert!(result.flight_records.is_empty());
    assert!(result.site_telemetry.is_empty());
}
