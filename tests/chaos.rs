//! Deterministic fault-matrix suite for the gossip reliability layer:
//! {drop 1% / 10% / 30%} × {no outage, single-site outage, rolling outages}
//! × {3 seeds}. The invariant throughout: once faults clear and the
//! anti-entropy machinery has had a round to re-sync, every site's per-user
//! view of grid usage equals the fault-free run's to within 1e-9 — lost
//! summaries are retried, gaps are pulled back, crashes recover from peer
//! snapshots, and nothing is ever double-counted.

use aequus::core::codec::Encoding;
use aequus::core::projection::ProjectionKind;
use aequus::core::GridUser;
use aequus::services::{OverlayTopology, RetryPolicy, ServiceTimings};
use aequus::sim::{FaultPlan, GridScenario, GridSimulation, Outage, SimResult};
use aequus::workload::{Trace, TraceJob};
use std::collections::BTreeMap;

/// Base seed of the 3-seed matrix; `AEQUUS_TEST_SEED` shifts the whole
/// matrix so CI can sweep seed families without editing the suite.
fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A small, fast grid tuned so every reliability path gets exercised:
/// publish interval 30 s against an ack timeout of 15 s, retention and
/// outbox caps of 8 so long outages overflow into gap-detection, resync
/// pulls, and snapshot fallback rather than simple retries.
fn chaos_scenario(seed: u64) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.timings = ServiceTimings {
        report_delay_s: 5.0,
        uss_publish_interval_s: 30.0,
        ums_refresh_interval_s: 30.0,
        fcs_refresh_interval_s: 30.0,
        lib_cache_ttl_s: 10.0,
        lib_identity_ttl_s: 60.0,
        exchange_latency_s: 5.0,
    };
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    sc
}

/// 48 fixed jobs over four users — all faults land inside [60, 900] while
/// jobs are still submitting, and the 1800 s drain leaves the protocol many
/// backoff cycles to converge after the last fault clears.
fn chaos_trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn run(sc: GridScenario) -> SimResult {
    GridSimulation::new(sc).run(&chaos_trace(), 1800.0)
}

fn outage(cluster: usize, from_s: f64, to_s: f64) -> Outage {
    Outage {
        cluster,
        from_s,
        to_s,
    }
}

/// The invariant: the faulted run completes every job and ends with every
/// site holding exactly the fault-free run's per-user grid-usage view.
fn assert_converged_to(faulted: &SimResult, baseline: &SimResult, label: &str) {
    assert_eq!(
        faulted.total_completed(),
        48,
        "{label}: faults must not lose jobs"
    );
    assert_eq!(
        faulted.site_usage_views.len(),
        baseline.site_usage_views.len()
    );
    for (site, (got, want)) in faulted
        .site_usage_views
        .iter()
        .zip(&baseline.site_usage_views)
        .enumerate()
    {
        let users: std::collections::BTreeSet<&GridUser> = got.keys().chain(want.keys()).collect();
        for user in users {
            let g = got.get(user).copied().unwrap_or(0.0);
            let w = want.get(user).copied().unwrap_or(0.0);
            assert!(
                (g - w).abs() < 1e-9,
                "{label}: site {site} diverged on {user:?}: {g} vs fault-free {w}"
            );
        }
    }
}

fn run_matrix(outages_for: impl Fn(u64) -> Vec<Outage>, label: &str) {
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        let baseline = run(chaos_scenario(seed));
        for drop_probability in [0.01, 0.10, 0.30] {
            let mut sc = chaos_scenario(seed);
            sc.faults = FaultPlan {
                drop_probability,
                outages: outages_for(seed),
                crashes: vec![],
            };
            let faulted = run(sc);
            assert_converged_to(
                &faulted,
                &baseline,
                &format!("{label} drop={drop_probability} seed={seed}"),
            );
        }
    }
}

#[test]
fn drops_without_outage_converge() {
    run_matrix(|_| vec![], "no-outage");
}

#[test]
fn drops_with_single_site_outage_converge() {
    // Site 1 is partitioned for 300 s mid-workload: its outbox overflows the
    // cap, peers detect the gaps, and resync/snapshot catch-up repairs both
    // directions after the outage lifts.
    run_matrix(|_| vec![outage(1, 300.0, 600.0)], "single-outage");
}

#[test]
fn drops_with_rolling_outages_converge() {
    // Every site takes a turn offline; no two windows overlap, so the grid
    // is never fully partitioned but every pairwise link breaks at least
    // once in each direction.
    run_matrix(
        |_| {
            vec![
                outage(0, 150.0, 300.0),
                outage(1, 300.0, 450.0),
                outage(2, 450.0, 600.0),
            ]
        },
        "rolling-outages",
    );
}

#[test]
fn crash_recovery_converges_via_snapshot_catchup() {
    // Site 2 crashes for 300 s (volatile USS/UMS/FCS state wiped) while 10%
    // of exchange traffic drops. On recovery it pulls peer snapshots, peers
    // detect its sequence restart, and republication of its local history
    // must not double-charge anyone.
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        let baseline = run(chaos_scenario(seed));
        let mut sc = chaos_scenario(seed);
        sc.faults = FaultPlan {
            drop_probability: 0.10,
            outages: vec![],
            crashes: vec![outage(2, 400.0, 700.0)],
        };
        let faulted = run(sc);
        assert_converged_to(&faulted, &baseline, &format!("crash seed={seed}"));
    }
}

/// Durability axis of the fault matrix: the same crash plan runs with and
/// without the per-site durable store, under a snapshot-transfer surcharge
/// that makes bulk catch-up expensive (as hauling a full cumulative view
/// over a real wire is). The store-backed site replays its WAL on recovery
/// and closes the gap with cheap retried summaries; the volatile site must
/// wait out the surcharged snapshot. Both must still converge exactly to
/// the fault-free views — durability changes *when*, never *what*.
#[test]
fn durable_store_recovers_faster_than_snapshot_only() {
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        let baseline = run(chaos_scenario(seed));
        let make = |durable: bool| {
            let mut sc = chaos_scenario(seed).with_snapshot_transfer(240.0);
            // History sized into the window that separates the two recovery
            // paths: deep enough to hold every crash-window unacked seq (so
            // peers' retries stay cheap summaries and never degrade into
            // pushed snapshots mid-outage), shallow enough that the volatile
            // site's from-scratch resync (seq 1..N) overflows it and forces
            // the surcharged cumulative-snapshot pull. The store-backed site
            // recovers its exchange cursors from the WAL, so retried
            // summaries alone close its gap.
            sc.retry.history_cap = 12;
            sc.retry.outbox_cap = 16;
            if durable {
                sc = sc.with_durable_store();
            }
            sc.faults = FaultPlan {
                drop_probability: 0.0,
                outages: vec![],
                crashes: vec![outage(2, 400.0, 700.0)],
            };
            run(sc)
        };
        let with_store = make(true);
        let without_store = make(false);

        assert_converged_to(&with_store, &baseline, &format!("store-on seed={seed}"));
        assert_converged_to(&without_store, &baseline, &format!("store-off seed={seed}"));

        let t_on = with_store
            .metrics
            .view_convergence_time(1e-6)
            .expect("store-backed run converges");
        let t_off = without_store
            .metrics
            .view_convergence_time(1e-6)
            .expect("snapshot-only run converges");
        assert!(
            t_on < t_off,
            "seed={seed}: WAL replay must beat surcharged snapshot catch-up: \
             {t_on:.0}s !< {t_off:.0}s"
        );

        let stats = with_store.site_store_stats[2].expect("store attached to site 2");
        assert!(stats.torn_tails >= 1, "crash left a torn tail: {stats:?}");
        assert!(stats.frames_replayed > 0, "recovery replayed: {stats:?}");
        assert!(
            without_store.site_store_stats.iter().all(Option::is_none),
            "volatile run must not report store stats"
        );
    }
}

#[test]
fn faulted_views_converge_before_the_run_ends() {
    // The divergence series itself must show convergence: under 30% drop
    // plus an outage the per-user spread across site views returns to ~0
    // well before the drain ends, and stays there.
    let mut sc = chaos_scenario(base_seed());
    sc.faults = FaultPlan {
        drop_probability: 0.30,
        outages: vec![outage(1, 300.0, 600.0)],
        crashes: vec![],
    };
    let result = run(sc);
    let convergence = result.metrics.view_convergence_time(1e-6);
    let end = result.end_s;
    match convergence {
        Some(t) => assert!(
            t < end - 300.0,
            "views converged only at {t:.0}s of {end:.0}s"
        ),
        None => panic!("site views never converged"),
    }
    let last = result.metrics.samples().last().expect("samples");
    assert!(last.usage_view_divergence < 1e-9, "residual divergence");
}

#[test]
fn fault_free_run_shows_no_reliability_traffic() {
    // With faults disabled the reliability layer must be invisible: every
    // summary is acknowledged on first delivery, so nothing retries, no
    // gaps open, and no resync or snapshot traffic flows.
    let mut sc = chaos_scenario(base_seed()).with_telemetry();
    sc.faults = FaultPlan::none();
    let result = run(sc);
    for snap in &result.site_telemetry {
        for counter in [
            "aequus_uss_retries_total",
            "aequus_uss_seq_gaps_total",
            "aequus_uss_resyncs_total",
            "aequus_uss_snapshots_total",
        ] {
            assert_eq!(
                snap.counters.get(counter).copied().unwrap_or(0),
                0,
                "clean run must not produce {counter}"
            );
        }
    }
}

#[test]
fn faulted_runs_are_deterministic() {
    // Same scenario, same seed → bitwise-identical outcome, including the
    // jittered retry schedule and every merged view.
    let make = || {
        let mut sc = chaos_scenario(base_seed());
        sc.faults = FaultPlan {
            drop_probability: 0.30,
            outages: vec![outage(0, 150.0, 450.0)],
            crashes: vec![outage(2, 500.0, 650.0)],
        };
        run(sc)
    };
    let (a, b) = (make(), make());
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.total_completed(), b.total_completed());
    assert_eq!(a.site_usage_views, b.site_usage_views);
    let (sa, sb) = (a.metrics.samples(), b.metrics.samples());
    assert_eq!(sa.len(), sb.len());
    for (x, y) in sa.iter().zip(sb) {
        assert_eq!(x.usage_view_divergence, y.usage_view_divergence);
        assert_eq!(x.utilization, y.utilization);
    }
}

/// The overlay axis runs on all six testbed sites so Tree and Hub have real
/// interior structure: `Tree { fanout: 2 }` makes sites 0–2 interior with
/// leaves 3–5, and `Hub { hubs: 2 }` meshes sites 0–1 with leaves 2–5 split
/// between them. Delta encoding rides along so the faulted relay paths also
/// exercise the wire codec.
fn overlay_scenario(seed: u64, projection: ProjectionKind) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    for c in &mut sc.clusters {
        c.nodes = 2;
    }
    sc.projection = projection;
    sc.timings = ServiceTimings {
        report_delay_s: 5.0,
        uss_publish_interval_s: 30.0,
        ums_refresh_interval_s: 30.0,
        fcs_refresh_interval_s: 30.0,
        lib_cache_ttl_s: 10.0,
        lib_identity_ttl_s: 60.0,
        exchange_latency_s: 5.0,
    };
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    sc.with_encoding(Encoding::Delta)
}

const PROJECTIONS: [ProjectionKind; 3] = [
    ProjectionKind::Dictionary,
    ProjectionKind::Bitwise,
    ProjectionKind::Percental,
];

/// Fault-free equivalence across the whole overlay × encoding grid: every
/// topology, under either codec, must end with exactly the full-mesh views.
/// This is the invariant the fault cases below lean on — the baseline they
/// reconverge to is the same no matter how summaries were routed.
#[test]
fn overlay_topologies_match_full_mesh_views_fault_free() {
    let seed = base_seed();
    let baseline = run(overlay_scenario(seed, ProjectionKind::Percental));
    for overlay in [
        OverlayTopology::Tree { fanout: 2 },
        OverlayTopology::Hub { hubs: 2 },
    ] {
        for encoding in [Encoding::Dense, Encoding::Delta] {
            let sc = overlay_scenario(seed, ProjectionKind::Percental)
                .with_overlay(overlay)
                .with_encoding(encoding);
            let got = run(sc);
            assert_converged_to(
                &got,
                &baseline,
                &format!("fault-free {overlay:?} {encoding:?}"),
            );
        }
    }
}

/// Partition a hub: sites 2 and 4 lose their *only* route into the grid for
/// 300 s (hub 0 is their sole neighbor), while 10% of the surviving traffic
/// drops. Once the partition lifts, retry/resync through the hub must bring
/// every leaf back to the fault-free full-mesh views — across 3 seeds and
/// all 3 priority projections.
#[test]
fn hub_partition_leaves_reconverge_across_projections() {
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        for projection in PROJECTIONS {
            let baseline = run(overlay_scenario(seed, projection));
            let mut sc =
                overlay_scenario(seed, projection).with_overlay(OverlayTopology::Hub { hubs: 2 });
            sc.faults = FaultPlan {
                drop_probability: 0.10,
                outages: vec![outage(0, 300.0, 600.0)],
                crashes: vec![],
            };
            let faulted = run(sc);
            assert_converged_to(
                &faulted,
                &baseline,
                &format!("hub-partition seed={seed} projection={projection:?}"),
            );
        }
    }
}

/// Crash a tree-interior node: site 1 (parent of leaves 3 and 4) loses all
/// volatile USS state — including its per-origin relay mirror — for 300 s.
/// On recovery it pulls peer snapshots, rebuilds the mirror, and must
/// re-relay without double-charging: every leaf's view ends within 1e-9 of
/// the fault-free full-mesh run, across 3 seeds × 3 projections.
#[test]
fn tree_interior_crash_leaves_reconverge_across_projections() {
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        for projection in PROJECTIONS {
            let baseline = run(overlay_scenario(seed, projection));
            let mut sc = overlay_scenario(seed, projection)
                .with_overlay(OverlayTopology::Tree { fanout: 2 });
            sc.faults = FaultPlan {
                drop_probability: 0.10,
                outages: vec![],
                crashes: vec![outage(1, 400.0, 700.0)],
            };
            let faulted = run(sc);
            assert_converged_to(
                &faulted,
                &baseline,
                &format!("tree-crash seed={seed} projection={projection:?}"),
            );
        }
    }
}

/// Different users' usage views stay separable under faults: the faulted
/// run's per-user totals across the whole grid equal the trace's submitted
/// work per user (nothing leaks between accounts during resync).
#[test]
fn per_user_accounting_survives_fault_matrix() {
    let mut sc = chaos_scenario(base_seed());
    sc.faults = FaultPlan {
        drop_probability: 0.10,
        outages: vec![outage(1, 300.0, 600.0)],
        crashes: vec![],
    };
    let result = run(sc);
    let mut want: BTreeMap<GridUser, f64> = BTreeMap::new();
    for job in chaos_trace().jobs() {
        *want.entry(GridUser::new(job.user.clone())).or_insert(0.0) +=
            job.duration_s * job.cores as f64;
    }
    let got = result.usage_by_user();
    for (user, w) in &want {
        let g = got.get(user).copied().unwrap_or(0.0);
        assert!((g - w).abs() < 1e-6, "{user:?}: {g} vs submitted {w}");
    }
}
