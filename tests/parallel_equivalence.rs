//! The tentpole invariant of the sharded engine: an N-thread run is
//! seed-for-seed identical to the single-threaded run. Verified over the
//! chaos fault matrix (drops + outages + crashes), all three projections,
//! worker counts {2, 4, 8}, and three seeds — every site view, every
//! fairness metric, every completed-job count within 1e-9 (in fact, they
//! must match bit-for-bit, since both paths execute identical operations).

use aequus::core::projection::ProjectionKind;
use aequus::services::{RetryPolicy, ServiceTimings};
use aequus::sim::{FaultPlan, GridScenario, GridSimulation, Outage, ShardPlacement, SimResult};
use aequus::workload::{Trace, TraceJob};

fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The chaos suite's grid: 3 sites, fast timings, tight retry caps so the
/// reliability layer (retries, gap detection, resync, snapshots) is active
/// while threads race.
fn scenario(seed: u64, projection: ProjectionKind) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.projection = projection;
    sc.timings = ServiceTimings {
        report_delay_s: 5.0,
        uss_publish_interval_s: 30.0,
        ums_refresh_interval_s: 30.0,
        fcs_refresh_interval_s: 30.0,
        lib_cache_ttl_s: 10.0,
        lib_identity_ttl_s: 60.0,
        exchange_latency_s: 5.0,
    };
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    // The full chaos plan: random drops, an outage, and a crash-recovery
    // cycle, all mid-workload.
    sc.faults = FaultPlan {
        drop_probability: 0.10,
        outages: vec![Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 600.0,
        }],
        crashes: vec![Outage {
            cluster: 2,
            from_s: 400.0,
            to_s: 700.0,
        }],
    };
    sc
}

fn trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn run(sc: GridScenario) -> SimResult {
    GridSimulation::new(sc).run(&trace(), 1800.0)
}

/// Every acceptance-relevant output within 1e-9 of the serial run (and
/// exactly equal where the quantity is discrete).
fn assert_equivalent(serial: &SimResult, parallel: &SimResult, label: &str) {
    assert_eq!(
        serial.total_completed(),
        parallel.total_completed(),
        "{label}: completed"
    );
    assert_eq!(
        serial.events_processed, parallel.events_processed,
        "{label}: events"
    );
    // Site usage views.
    assert_eq!(
        serial.site_usage_views.len(),
        parallel.site_usage_views.len()
    );
    for (site, (a, b)) in serial
        .site_usage_views
        .iter()
        .zip(&parallel.site_usage_views)
        .enumerate()
    {
        let users: std::collections::BTreeSet<_> = a.keys().chain(b.keys()).collect();
        for u in users {
            let x = a.get(u).copied().unwrap_or(0.0);
            let y = b.get(u).copied().unwrap_or(0.0);
            assert!(
                (x - y).abs() < 1e-9,
                "{label}: site {site} view for {u:?}: {x} vs {y}"
            );
        }
    }
    // Fairness metrics, sample by sample.
    let (sa, sb) = (serial.metrics.samples(), parallel.metrics.samples());
    assert_eq!(sa.len(), sb.len(), "{label}: sample count");
    for (x, y) in sa.iter().zip(sb) {
        assert_eq!(x.t_s, y.t_s, "{label}: sample times");
        assert_eq!(
            x.users.len(),
            y.users.len(),
            "{label}: tracked users at t={}",
            x.t_s
        );
        for (user, ux) in &x.users {
            let uy = &y.users[user];
            assert!(
                (ux.priority - uy.priority).abs() < 1e-9
                    && (ux.usage_share - uy.usage_share).abs() < 1e-9
                    && (ux.factor - uy.factor).abs() < 1e-9,
                "{label}: {user} at t={}: {ux:?} vs {uy:?}",
                x.t_s
            );
        }
        assert!(
            (x.utilization - y.utilization).abs() < 1e-9,
            "{label}: utilization at t={}",
            x.t_s
        );
        assert!(
            (x.usage_view_divergence - y.usage_view_divergence).abs() < 1e-9,
            "{label}: divergence at t={}",
            x.t_s
        );
        assert_eq!(
            (x.pending, x.running, x.completed),
            (y.pending, y.running, y.completed),
            "{label}: queue state at t={}",
            x.t_s
        );
        assert_eq!(x.per_site_priority, y.per_site_priority, "{label}");
    }
    // Per-cluster accounting.
    assert_eq!(
        serial.usage_by_user(),
        parallel.usage_by_user(),
        "{label}: usage ledger"
    );
}

#[test]
fn worker_counts_replay_serial_run_across_chaos_matrix() {
    let base = base_seed();
    for seed in [base, base + 1, base + 2] {
        for projection in [
            ProjectionKind::Percental,
            ProjectionKind::Dictionary,
            ProjectionKind::Bitwise,
        ] {
            let serial = run(scenario(seed, projection));
            for threads in [2, 4, 8] {
                let parallel = run(scenario(seed, projection).with_threads(threads));
                assert_equivalent(
                    &serial,
                    &parallel,
                    &format!("seed={seed} {projection:?} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn placement_strategy_does_not_change_results() {
    let serial = run(scenario(base_seed(), ProjectionKind::Percental));
    for placement in [ShardPlacement::RoundRobin, ShardPlacement::Blocked] {
        let parallel = run(scenario(base_seed(), ProjectionKind::Percental)
            .with_threads(2)
            .with_placement(placement));
        assert_equivalent(&serial, &parallel, &format!("{placement:?}"));
    }
}

#[test]
fn fault_free_runs_are_equivalent_too() {
    // The fault-free path exercises a different code shape (no drops, no
    // crash edges); it must be just as thread-count independent.
    let mut clean = scenario(base_seed(), ProjectionKind::Percental);
    clean.faults = FaultPlan::none();
    let serial = run(clean.clone());
    let parallel = run(clean.with_threads(4));
    assert_equivalent(&serial, &parallel, "fault-free");
}
