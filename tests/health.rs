//! Integration tests of the fairness-health subsystem: the SLO engine and
//! gossip health map observe the sim through sample barriers stamped with
//! sim time, so the health report and the alert stream must be
//! byte-identical at every worker count — verified over the chaos grid
//! (drops, an outage, and a crash), because health monitoring that is only
//! deterministic on clean runs cannot gate CI. The alert lifecycle is also
//! checked end to end: a fault-free run stays silent, and an outage drives
//! a staleness rule through pending → firing → resolved.

use aequus::services::RetryPolicy;
use aequus::sim::{FaultPlan, GridScenario, GridSimulation, Outage, SimResult};
use aequus::telemetry::slo::alerts_to_jsonl;
use aequus::telemetry::SloConfig;
use aequus::workload::{Trace, TraceJob};

fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The chaos suite's 3-site grid: fast cadences so faults land between
/// publishes, small retention so outages overflow into resync traffic.
fn scenario(seed: u64) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.timings.report_delay_s = 5.0;
    sc.timings.uss_publish_interval_s = 30.0;
    sc.timings.ums_refresh_interval_s = 30.0;
    sc.timings.fcs_refresh_interval_s = 30.0;
    sc.timings.lib_cache_ttl_s = 10.0;
    sc.timings.exchange_latency_s = 5.0;
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    sc
}

/// The full chaos matrix: 10% drops plus an outage and a crash that
/// overlap the job stream.
fn chaos_faults() -> FaultPlan {
    FaultPlan {
        drop_probability: 0.10,
        outages: vec![Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 600.0,
        }],
        crashes: vec![Outage {
            cluster: 2,
            from_s: 400.0,
            to_s: 700.0,
        }],
    }
}

fn trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn health_run(threads: usize, faults: FaultPlan) -> SimResult {
    let mut sc = scenario(base_seed())
        .with_health(SloConfig::default())
        .with_threads(threads);
    sc.faults = faults;
    GridSimulation::new(sc).run(&trace(), 1800.0)
}

#[test]
fn health_report_and_alerts_byte_identical_across_worker_counts() {
    let serial = health_run(1, chaos_faults());
    let reference_report = serial
        .health_report
        .as_ref()
        .expect("health run yields a report")
        .to_json();
    let reference_alerts = alerts_to_jsonl(&serial.alerts);
    for threads in [2, 4, 8] {
        let par = health_run(threads, chaos_faults());
        assert_eq!(
            par.health_report.as_ref().expect("report").to_json(),
            reference_report,
            "health report diverged at {threads} workers"
        );
        assert_eq!(
            alerts_to_jsonl(&par.alerts),
            reference_alerts,
            "alert stream diverged at {threads} workers"
        );
    }
}

#[test]
fn fault_free_run_fires_no_alerts() {
    let result = health_run(1, FaultPlan::none());
    assert!(
        result.alerts.is_empty(),
        "fault-free baseline should be silent, got:\n{}",
        alerts_to_jsonl(&result.alerts)
    );
    let report = result.health_report.expect("report present");
    // Every directed link of the 3-site full mesh is tracked, and traffic
    // actually flowed on each.
    assert_eq!(report.links.len(), 6);
    assert!(report.links.iter().all(|l| l.bytes > 0 && l.msgs > 0));
}

#[test]
fn outage_fires_and_resolves_staleness_alert() {
    // The aggressive chaos plan: 30% drops plus the outage, no crash — the
    // calibration run behind `aequus-health --check`.
    let faults = FaultPlan {
        drop_probability: 0.30,
        outages: vec![Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 600.0,
        }],
        crashes: vec![],
    };
    let result = health_run(1, faults);
    let fired = result
        .alerts
        .iter()
        .find(|a| a.transition == "firing" && a.rule.starts_with("staleness:"))
        .expect("outage fires a staleness alert");
    assert!(
        fired.t_s >= 300.0,
        "alert cannot fire before the outage starts"
    );
    assert!(
        result
            .alerts
            .iter()
            .any(|a| a.rule == fired.rule && a.transition == "resolved" && a.t_s > fired.t_s),
        "staleness alert must resolve after recovery"
    );
    // The report's stressed link shows real staleness while clean links
    // stay bounded by the publish cadence.
    let report = result.health_report.expect("report present");
    let stressed = report
        .links
        .iter()
        .max_by(|a, b| {
            a.staleness_max_s
                .partial_cmp(&b.staleness_max_s)
                .expect("finite staleness")
        })
        .expect("links tracked");
    assert!(
        stressed.staleness_max_s >= 300.0,
        "a 300 s outage should strand data for at least the outage length"
    );
}
