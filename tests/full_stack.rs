//! Full-stack integration tests: trace generation → grid simulation →
//! fairshare behavior, spanning every crate in the workspace.

use aequus::core::{DecayPolicy, GridUser};
use aequus::sim::{FaultPlan, GridScenario, GridSimulation, Outage, RoutingPolicy};
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{test_trace, TestTraceConfig, Trace, TraceJob};

fn small_scenario(seed: u64) -> GridScenario {
    GridScenario::national_testbed(&baseline_policy_shares(), seed)
}

fn small_trace(jobs: usize, seed: u64) -> Trace {
    test_trace(&TestTraceConfig {
        total_jobs: jobs,
        seed,
        ..Default::default()
    })
}

#[test]
fn grid_completes_paper_scale_workload() {
    let result = GridSimulation::new(small_scenario(1)).run(&small_trace(10_000, 1), 2400.0);
    let completed = result.total_completed();
    assert!(
        completed as f64 > 0.98 * 10_000.0,
        "only {completed}/10000 completed"
    );
}

#[test]
fn completed_usage_mix_matches_submitted_mix() {
    // The comparison is against the *full-trace* submitted mix, so the queue
    // must be (nearly) drained: the longest jobs disproportionately belong
    // to the heavy users, and cutting the run while they are still in flight
    // skews the completed mix (a 3600 s drain leaves ~20 of 10 000 jobs
    // unfinished and U65 off by 0.032). A 14 400 s drain completes
    // 9 998/10 000 and the mix matches to ≤ 0.006 (see EXPERIMENTS.md).
    let trace = small_trace(10_000, 2);
    let result = GridSimulation::new(small_scenario(2)).run(&trace, 14_400.0);
    let usage = result.usage_by_user();
    let total: f64 = usage.values().sum();
    for (user, submitted_share) in trace.usage_share_by_user() {
        let completed_share = usage
            .get(&GridUser::new(user.clone()))
            .copied()
            .unwrap_or(0.0)
            / total;
        assert!(
            (completed_share - submitted_share).abs() < 0.01,
            "{user}: completed {completed_share:.3} vs submitted {submitted_share:.3}"
        );
    }
}

#[test]
fn fairshare_throttles_overconsumer_end_to_end() {
    // Two users, equal policy shares, but user "hog" submits 4x the work of
    // "meek" early on; once both compete for the machine, meek's jobs must
    // observe shorter queue waits on average.
    let policy = [("hog", 0.5), ("meek", 0.5)];
    let mut scenario = GridScenario::national_testbed(&policy, 3);
    scenario.clusters.truncate(2);
    for c in &mut scenario.clusters {
        c.nodes = 8;
    }
    let mut jobs = Vec::new();
    for i in 0..400 {
        jobs.push(TraceJob {
            user: "hog".to_string(),
            submit_s: i as f64 * 10.0,
            duration_s: 200.0,
            cores: 1,
        });
    }
    for i in 0..100 {
        jobs.push(TraceJob {
            user: "meek".to_string(),
            submit_s: 1000.0 + i as f64 * 40.0,
            duration_s: 200.0,
            cores: 1,
        });
    }
    let trace = Trace::new(jobs);
    let result = GridSimulation::new(scenario).run(&trace, 20_000.0);
    // The priority series must show hog below balance and meek above once
    // the imbalance is visible.
    let hog = result.metrics.priority_series("hog");
    let meek = result.metrics.priority_series("meek");
    let mid = hog.len() / 2;
    assert!(hog[mid].1 < 0.0, "hog over-consumed: {}", hog[mid].1);
    assert!(meek[mid].1 > 0.0, "meek under-served: {}", meek[mid].1);
}

#[test]
fn round_robin_and_stochastic_agree_within_noise() {
    // The paper's finding: "without any noticeable difference".
    let trace = small_trace(6000, 4);
    let run = |policy| {
        let mut sc = small_scenario(4);
        sc.routing = policy;
        GridSimulation::new(sc).run(&trace, 2400.0)
    };
    let a = run(RoutingPolicy::Stochastic);
    let b = run(RoutingPolicy::RoundRobin);
    let ca = a.total_completed() as f64;
    let cb = b.total_completed() as f64;
    assert!((ca - cb).abs() / ca < 0.02, "{ca} vs {cb}");
    assert!((a.mean_utilization() - b.mean_utilization()).abs() < 0.05);
}

#[test]
fn gossip_drops_degrade_gracefully() {
    let trace = small_trace(6000, 5);
    let clean = GridSimulation::new(small_scenario(5)).run(&trace, 2400.0);
    let mut faulty_sc = small_scenario(5);
    faulty_sc.faults = FaultPlan {
        drop_probability: 0.5,
        outages: vec![],
        crashes: vec![],
    };
    let faulty = GridSimulation::new(faulty_sc).run(&trace, 2400.0);
    // Work still completes despite losing half the exchange traffic.
    assert!(faulty.total_completed() as f64 > 0.97 * clean.total_completed() as f64);
}

#[test]
fn site_outage_does_not_stall_grid() {
    let trace = small_trace(6000, 6);
    let mut sc = small_scenario(6);
    sc.faults = FaultPlan {
        drop_probability: 0.0,
        outages: vec![Outage {
            cluster: 0,
            from_s: 1800.0,
            to_s: 10_800.0,
        }],
        crashes: vec![],
    };
    let result = GridSimulation::new(sc).run(&trace, 3600.0);
    assert!(result.total_completed() as f64 > 0.97 * 6000.0);
}

#[test]
fn decay_policy_changes_measured_shares_not_completions() {
    let trace = small_trace(6000, 7);
    let run = |decay| {
        let mut sc = small_scenario(7);
        sc.fairshare.decay = decay;
        GridSimulation::new(sc).run(&trace, 2400.0)
    };
    let exp = run(DecayPolicy::Exponential {
        half_life_s: 1800.0,
    });
    let none = run(DecayPolicy::None);
    assert_eq!(exp.total_completed(), none.total_completed());
    // Undecayed shares integrate all history → smoother (lower variance).
    let var = |r: &aequus::sim::SimResult| {
        let s = r.metrics.usage_share_series("U65");
        let tail = &s[s.len() / 2..];
        let mean = tail.iter().map(|(_, v)| v).sum::<f64>() / tail.len() as f64;
        tail.iter().map(|(_, v)| (v - mean).powi(2)).sum::<f64>() / tail.len() as f64
    };
    assert!(
        var(&none) <= var(&exp) + 1e-9,
        "{} vs {}",
        var(&none),
        var(&exp)
    );
}

#[test]
fn deterministic_end_to_end() {
    let trace = small_trace(4000, 8);
    let r1 = GridSimulation::new(small_scenario(8)).run(&trace, 2400.0);
    let r2 = GridSimulation::new(small_scenario(8)).run(&trace, 2400.0);
    assert_eq!(r1.total_completed(), r2.total_completed());
    assert_eq!(r1.events_processed, r2.events_processed);
    let s1 = r1.metrics.usage_share_series("U65");
    let s2 = r2.metrics.usage_share_series("U65");
    assert_eq!(s1, s2);
}
