//! End-to-end observability: an instrumented grid run must produce a
//! registry snapshot covering every service boundary, the pipeline-delay
//! tracer must respect the configured §IV-A-2 worst case, and both
//! exporters must round-trip the full snapshot losslessly.

use aequus::sim::{GridScenario, GridSimulation};
use aequus::telemetry::export;
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{Trace, TraceJob};

fn sustained_trace(n: usize) -> Trace {
    Trace::new(
        (0..n)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 10.0,
                duration_s: 30.0,
                cores: 1,
            })
            .collect(),
    )
}

fn small_instrumented_scenario() -> GridScenario {
    let mut sc = GridScenario::national_testbed(&baseline_policy_shares(), 7).with_telemetry();
    sc.clusters.truncate(2);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc
}

#[test]
fn instrumented_run_covers_every_stage_and_exporters_round_trip() {
    let sc = small_instrumented_scenario();
    let bound = sc.timings.worst_case_pipeline_s();
    let result = GridSimulation::new(sc).run(&sustained_trace(160), 2000.0);

    assert_eq!(result.site_telemetry.len(), 2);
    let snap = &result.site_telemetry[0];

    // Every instrumented service boundary appears in the snapshot.
    for counter in [
        "aequus_uss_records_ingested_total",
        "aequus_uss_summaries_published_total",
        "aequus_uss_summaries_received_total",
        "aequus_ums_refreshes_total",
        "aequus_fcs_refreshes_total",
        "aequus_fcs_queries_total",
        "aequus_irs_lookups_total",
        "aequus_lib_fairshare_hits_total",
        "aequus_lib_identity_hits_total",
        "aequus_rms_submitted_total",
        "aequus_rms_started_total",
        "aequus_tracer_sampled_total",
    ] {
        assert!(snap.counters.contains_key(counter), "missing {counter}");
    }
    for hist in [
        "aequus_uss_ingest_s",
        "aequus_uss_publish_s",
        "aequus_uss_receive_s",
        "aequus_ums_refresh_s",
        "aequus_fcs_refresh_full_s",
        "aequus_fcs_refresh_incremental_s",
        "aequus_fcs_query_s",
        "aequus_irs_resolve_s",
        "aequus_rms_reprioritize_s",
        "aequus_rms_dispatch_s",
        "aequus_tracer_end_to_end_s",
    ] {
        assert!(snap.histograms.contains_key(hist), "missing {hist}");
    }

    // Work actually flowed through the pipeline.
    assert!(snap.counters["aequus_uss_records_ingested_total"] > 0);
    assert!(snap.counters["aequus_tracer_completed_total"] > 0);

    // The measured end-to-end delay respects the configured worst case
    // (quantiles overestimate by at most one sub-bucket, 6.25%).
    let e2e = &snap.histograms["aequus_tracer_end_to_end_s"];
    assert!(e2e.count > 0);
    assert!(
        e2e.p99 <= bound * 1.0625 + 1e-9,
        "e2e p99 {} vs bound {bound}",
        e2e.p99
    );

    // Both exporters round-trip the full snapshot.
    let prom = snap.to_prometheus();
    assert_eq!(export::from_prometheus(&prom).as_ref(), Some(snap));
    let json = snap.to_json();
    assert_eq!(export::from_json(&json).as_ref(), Some(snap));

    // The rendered forms actually carry the stage metrics by name.
    assert!(prom.contains("aequus_tracer_end_to_end_s{quantile=\"0.99\"}"));
    assert!(json.contains("\"aequus_fcs_refresh_full_s\""));
}

#[test]
fn disabled_telemetry_yields_nothing_and_changes_nothing() {
    let mut sc = small_instrumented_scenario();
    sc.telemetry = false;
    let on = GridSimulation::new(small_instrumented_scenario()).run(&sustained_trace(40), 1500.0);
    let off = GridSimulation::new(sc).run(&sustained_trace(40), 1500.0);

    assert!(off.site_telemetry.is_empty());
    assert!(off.engine_telemetry.is_none());
    // Observation must not perturb the simulation itself.
    assert_eq!(on.total_completed(), off.total_completed());
    assert_eq!(on.metrics.samples().len(), off.metrics.samples().len());
    for (a, b) in on.metrics.samples().iter().zip(off.metrics.samples()) {
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.users, b.users);
    }
}
