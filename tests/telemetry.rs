//! End-to-end observability: an instrumented grid run must produce a
//! registry snapshot covering every service boundary, the pipeline-delay
//! tracer must respect the configured §IV-A-2 worst case, and both
//! exporters must round-trip the full snapshot losslessly.

use aequus::sim::{GridScenario, GridSimulation};
use aequus::telemetry::export;
use aequus::workload::users::baseline_policy_shares;
use aequus::workload::{Trace, TraceJob};

fn sustained_trace(n: usize) -> Trace {
    Trace::new(
        (0..n)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 10.0,
                duration_s: 30.0,
                cores: 1,
            })
            .collect(),
    )
}

fn small_instrumented_scenario() -> GridScenario {
    let mut sc = GridScenario::national_testbed(&baseline_policy_shares(), 7).with_telemetry();
    sc.clusters.truncate(2);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc
}

#[test]
fn instrumented_run_covers_every_stage_and_exporters_round_trip() {
    let sc = small_instrumented_scenario();
    let bound = sc.timings.worst_case_pipeline_s();
    let result = GridSimulation::new(sc).run(&sustained_trace(160), 2000.0);

    assert_eq!(result.site_telemetry.len(), 2);
    let snap = &result.site_telemetry[0];

    // Every instrumented service boundary appears in the snapshot.
    for counter in [
        "aequus_uss_records_ingested_total",
        "aequus_uss_summaries_published_total",
        "aequus_uss_summaries_received_total",
        "aequus_ums_refreshes_total",
        "aequus_fcs_refreshes_total",
        "aequus_fcs_queries_total",
        "aequus_irs_lookups_total",
        "aequus_lib_fairshare_hits_total",
        "aequus_lib_identity_hits_total",
        "aequus_rms_submitted_total",
        "aequus_rms_started_total",
        "aequus_tracer_sampled_total",
    ] {
        assert!(snap.counters.contains_key(counter), "missing {counter}");
    }
    for hist in [
        "aequus_uss_ingest_s",
        "aequus_uss_publish_s",
        "aequus_uss_receive_s",
        "aequus_ums_refresh_s",
        "aequus_fcs_refresh_full_s",
        "aequus_fcs_refresh_incremental_s",
        "aequus_fcs_query_s",
        "aequus_irs_resolve_s",
        "aequus_rms_reprioritize_s",
        "aequus_rms_dispatch_s",
        "aequus_tracer_end_to_end_s",
    ] {
        assert!(snap.histograms.contains_key(hist), "missing {hist}");
    }

    // Work actually flowed through the pipeline.
    assert!(snap.counters["aequus_uss_records_ingested_total"] > 0);
    assert!(snap.counters["aequus_tracer_completed_total"] > 0);

    // The measured end-to-end delay respects the configured worst case
    // (quantiles overestimate by at most one sub-bucket, 6.25%).
    let e2e = &snap.histograms["aequus_tracer_end_to_end_s"];
    assert!(e2e.count > 0);
    assert!(
        e2e.p99 <= bound * 1.0625 + 1e-9,
        "e2e p99 {} vs bound {bound}",
        e2e.p99
    );

    // The structured-event ring surfaces in the snapshot and JSON carries
    // it losslessly; Prometheus text has no place for events and omits
    // them (documented), so its round-trip is checked modulo events.
    assert!(
        snap.events.iter().any(|e| e.kind == "uss.gossip_merge"),
        "gossip merges recorded in the event ring"
    );
    let prom = snap.to_prometheus();
    let prom_back = export::from_prometheus(&prom).expect("prometheus parses");
    assert!(prom_back.events.is_empty());
    assert_eq!(prom_back.counters, snap.counters);
    assert_eq!(prom_back.gauges, snap.gauges);
    assert_eq!(prom_back.histograms, snap.histograms);
    let json = snap.to_json();
    assert_eq!(export::from_json(&json).as_ref(), Some(snap));

    // The rendered forms actually carry the stage metrics by name.
    assert!(prom.contains("aequus_tracer_end_to_end_s{quantile=\"0.99\"}"));
    assert!(json.contains("\"aequus_fcs_refresh_full_s\""));
}

#[test]
fn disabled_telemetry_yields_nothing_and_changes_nothing() {
    let mut sc = small_instrumented_scenario();
    sc.telemetry = false;
    let on = GridSimulation::new(small_instrumented_scenario()).run(&sustained_trace(40), 1500.0);
    let off = GridSimulation::new(sc).run(&sustained_trace(40), 1500.0);

    assert!(off.site_telemetry.is_empty());
    assert!(off.engine_telemetry.is_none());
    // Observation must not perturb the simulation itself.
    assert_eq!(on.total_completed(), off.total_completed());
    assert_eq!(on.metrics.samples().len(), off.metrics.samples().len());
    for (a, b) in on.metrics.samples().iter().zip(off.metrics.samples()) {
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.users, b.users);
    }
}

#[test]
fn reliability_metrics_track_faults_and_stay_silent_when_clean() {
    use aequus::sim::{FaultPlan, Outage};

    // Clean run: the reliability layer is pure overhead-free bookkeeping —
    // summaries are acked on first delivery, the staleness gauge tracks the
    // publish cadence, and no retry/gap/resync/snapshot traffic exists.
    let clean_sc = small_instrumented_scenario();
    let clean = GridSimulation::new(clean_sc).run(&sustained_trace(120), 2000.0);
    for snap in &clean.site_telemetry {
        for counter in [
            "aequus_uss_retries_total",
            "aequus_uss_seq_gaps_total",
            "aequus_uss_resyncs_total",
            "aequus_uss_snapshots_total",
        ] {
            assert_eq!(
                snap.counters.get(counter).copied().unwrap_or(0),
                0,
                "clean run produced {counter}"
            );
        }
        // The peer-staleness gauge is exported and sane: non-negative, and
        // never beyond the run itself. (It legitimately grows through the
        // idle drain — peers only publish when new slots close.)
        let staleness = snap.gauges["aequus_uss_peer_staleness_s"];
        assert!(
            staleness >= 0.0 && staleness <= clean.end_s,
            "clean-run staleness {staleness}"
        );
    }

    // Faulted run: heavy drops plus an outage force retries; the outage is
    // long enough (> retention x publish interval) that receivers detect
    // gaps and pull resyncs, and outbox/history compaction forces at least
    // one snapshot fallback somewhere.
    let mut faulty_sc = small_instrumented_scenario();
    faulty_sc.faults = FaultPlan {
        drop_probability: 0.4,
        outages: vec![Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 900.0,
        }],
        crashes: vec![],
    };
    let faulty = GridSimulation::new(faulty_sc).run(&sustained_trace(120), 2000.0);
    let total = |name: &str| -> u64 {
        faulty
            .site_telemetry
            .iter()
            .map(|s| s.counters.get(name).copied().unwrap_or(0))
            .sum()
    };
    assert!(total("aequus_uss_retries_total") > 0, "drops must retry");
    assert!(
        total("aequus_uss_seq_gaps_total") > 0,
        "drops must open gaps"
    );
    assert!(total("aequus_uss_resyncs_total") > 0, "gaps must resync");
    // Dropped deliveries and the partition window show up in the engine's
    // own transport accounting.
    let engine = faulty.engine_telemetry.as_ref().expect("engine snapshot");
    assert!(engine.counters["aequus_sim_gossip_dropped_total"] > 0);
    assert!(engine.counters["aequus_sim_gossip_partitioned_total"] > 0);
}
