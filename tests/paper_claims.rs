//! The paper's headline claims, as executable assertions against the full
//! stack. Each test names the claim it checks (section in parentheses).

use aequus::core::policy::{PolicyNode, PolicyTree};
use aequus::core::projection::ProjectionKind;
use aequus::core::{parse_policy, EntityPath, GridUser};
use aequus::services::ParticipationMode;
use aequus::sim::{GridScenario, GridSimulation};
use aequus::workload::users::{baseline_policy_shares, bursty_usage_shares};
use aequus::workload::{test_trace, TestTraceConfig};

const QUICK_JOBS: usize = 15_000;

/// (§IV-A-5) "For U3 in this test, this indicates a maximum priority value
/// of 0.5 × (1 + 0.12) = 0.56, which is consistent with the data shown in
/// Figure 13b."
#[test]
fn claim_bursty_u3_priority_bound() {
    let policy: Vec<(&str, f64)> = bursty_usage_shares()
        .iter()
        .map(|(u, s)| (u.name(), *s))
        .collect();
    let scenario = GridScenario::national_testbed(&policy, 42);
    let trace = test_trace(&TestTraceConfig {
        total_jobs: QUICK_JOBS,
        ..TestTraceConfig::bursty(42)
    });
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);
    let max_u3 = result
        .metrics
        .priority_series("U3")
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max_u3 <= 0.56 + 1e-9, "bound violated: {max_u3}");
    assert!(
        (max_u3 - 0.56).abs() < 0.02,
        "idle U3 should reach its bound: {max_u3}"
    );
}

/// (§IV-A) "The system is shown to behave consistently despite great
/// variations in job arrival patterns": baseline reaches a sustained balance
/// window.
#[test]
fn claim_baseline_reaches_balance() {
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
    let trace = test_trace(&TestTraceConfig {
        total_jobs: QUICK_JOBS,
        ..Default::default()
    });
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);
    let conv = result.metrics.convergence_time(0.12, 1800.0);
    assert!(conv.is_some(), "no balance window found");
}

/// (§IV-A-4) "The priority on the site reading global data remains well
/// aligned with the priority of fully participating sites... The data from
/// this site acts as noise for the other sites, but this noise does not
/// have a noticeable impact."
#[test]
fn claim_partial_participation_alignment() {
    let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
    scenario.clusters[1].participation = ParticipationMode::ReadOnly;
    scenario.clusters[2].participation = ParticipationMode::LocalOnly;
    let trace = test_trace(&TestTraceConfig {
        total_jobs: QUICK_JOBS,
        ..Default::default()
    });
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    // The claim is about the *converged* system: before the first summaries
    // propagate (publication interval + gossip latency), every site only
    // sees its own local usage and all per-site priorities disagree wildly
    // (|Δp| up to 1.17 in the first half-hour, for full sites too). Skip two
    // decay half-lives (2 × 1800 s) of burn-in so the cold-start transient
    // does not dominate the mean (see EXPERIMENTS.md).
    const BURN_IN_S: f64 = 3600.0;
    let mean_abs_diff = |site: usize| {
        let samples = result.metrics.samples();
        let diffs: Vec<f64> = samples
            .iter()
            .filter(|s| s.t_s >= BURN_IN_S)
            .filter_map(|s| {
                let p = s.per_site_priority.get(site)?.get("U65")?;
                let p0 = s.per_site_priority.first()?.get("U65")?;
                Some((p - p0).abs())
            })
            .collect();
        diffs.iter().sum::<f64>() / diffs.len().max(1) as f64
    };
    let read_only = mean_abs_diff(1);
    let local_only = mean_abs_diff(2);
    let full_band = (3..6).map(mean_abs_diff).fold(0.0f64, f64::max);
    assert!(
        read_only <= full_band * 1.5,
        "read-only site must track the full sites: {read_only} vs band {full_band}"
    );
    assert!(
        local_only > read_only,
        "local-only site deviates more: {local_only} vs {read_only}"
    );
}

/// (§IV-A) "Both stochastic and round-robin scheduling ... have been
/// evaluated without any noticeable difference."
#[test]
fn claim_dispatch_equivalence() {
    use aequus::sim::RoutingPolicy;
    let trace = test_trace(&TestTraceConfig {
        total_jobs: 8000,
        ..Default::default()
    });
    let run = |policy| {
        let mut sc = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        sc.routing = policy;
        GridSimulation::new(sc).run(&trace, 2400.0)
    };
    let a = run(RoutingPolicy::Stochastic);
    let b = run(RoutingPolicy::RoundRobin);
    let rel = (a.total_completed() as f64 - b.total_completed() as f64).abs()
        / a.total_completed() as f64;
    assert!(rel < 0.02, "completion difference {rel}");
    assert!((a.mean_utilization() - b.mean_utilization()).abs() < 0.05);
}

/// (§II-A) "Globally managed sub-policies can be dynamically mounted into a
/// locally administered root node ... local administrators assign parts of
/// the resources to one or more grids while retaining full control."
#[test]
fn claim_mounting_end_to_end() {
    // The grid's PDS exports its internal subdivision; a site policy file
    // reserves 30% for it; the mounted tree drives a real simulation.
    let site_policy_text = "\
/local   70
/swegrid 30   mount=national
";
    let mut site_policy = parse_policy(site_policy_text).unwrap();
    let grid_subdivision = PolicyTree::new(PolicyNode::group(
        "swegrid",
        1.0,
        baseline_policy_shares()
            .iter()
            .map(|(n, s)| PolicyNode::user(*n, *s))
            .collect(),
    ))
    .unwrap();
    site_policy
        .mount(&EntityPath::parse("/swegrid"), &grid_subdivision)
        .unwrap();
    // Absolute shares: local 0.7; U65 = 0.3 × 0.6525.
    assert!(
        (site_policy
            .absolute_share(&EntityPath::parse("/swegrid/U65"))
            .unwrap()
            - 0.3 * 0.6525)
            .abs()
            < 1e-9
    );

    let mut scenario =
        GridScenario::national_testbed(&baseline_policy_shares(), 42).with_policy(site_policy);
    scenario.clusters.truncate(2);
    let trace = test_trace(&TestTraceConfig {
        total_jobs: 4000,
        capacity_cores: 80,
        ..Default::default()
    });
    let result = GridSimulation::new(scenario).run(&trace, 6000.0);
    // Grid users run under the mounted subtree; their priorities exist and
    // respect the k-bound for their mounted absolute shares.
    let u65 = result.metrics.priority_series("U65");
    assert!(!u65.is_empty(), "mounted user tracked through the stack");
    for (_, p) in &u65 {
        assert!(*p <= 0.5 * (1.0 + 0.6525) + 1e-9);
    }
}

/// (§III-A) "Previously resolved fairshare values and identities are cached
/// within the library, which considerably reduces the amount of network
/// traffic and computations required when batches of jobs are submitted."
#[test]
fn claim_libaequus_cache_absorbs_batches() {
    use aequus::core::fairshare::FairshareConfig;
    use aequus::core::policy::flat_policy;
    use aequus::core::SiteId;
    use aequus::services::{AequusSite, ServiceTimings};

    let mut site = AequusSite::new(
        SiteId(0),
        flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        ServiceTimings::default(),
        ParticipationMode::Full,
        60.0,
    );
    site.tick(0.0);
    // A batch of 500 queries inside one TTL window.
    for i in 0..500 {
        site.fairshare(&GridUser::new("a"), i as f64 * 0.01);
    }
    assert!(site.lib.fairshare_stats.hit_ratio().expect("queries ran") > 0.99);
}

/// (§IV) Production stability: HPC2N-shaped cluster at ~40,000 jobs/month —
/// queues stay bounded and the run completes.
#[test]
fn claim_production_stability() {
    let mut scenario = GridScenario::production_cluster(&baseline_policy_shares(), 42);
    scenario.tick_interval_s = 60.0;
    scenario.sample_interval_s = 3600.0;
    scenario.usage_slot_s = 3600.0;
    let month_s = 30.0 * 86400.0;
    let trace = test_trace(&TestTraceConfig {
        total_jobs: 40_000,
        test_len_s: month_s,
        load_target: 0.8,
        capacity_cores: scenario.total_cores(),
        ..Default::default()
    });
    let result = GridSimulation::new(scenario).run(&trace, 86400.0);
    assert!(result.total_completed() as f64 >= 0.99 * 40_000.0);
    let final_pending = result.metrics.samples().last().unwrap().pending;
    assert!(final_pending < 500, "queue must drain: {final_pending}");
}
