//! Integration tests of the continuous-profiling subsystem: the folded
//! profile is the *schedule's* profile, so it must be byte-identical at
//! every worker count; the Chrome trace is the *execution's* profile, so it
//! only promises structural validity (well-formed JSON, monotonic
//! timestamps per track, stable track identity across worker counts).
//! Verified over the chaos grid — drops, an outage, and a crash — because a
//! profiler that is only deterministic on clean runs is not deterministic.

use aequus::core::codec::Encoding;
use aequus::sim::{FaultPlan, GridScenario, GridSimulation, Outage, SimResult};
use aequus::telemetry::export::JsonValue;
use aequus::telemetry::{ProfileMode, RunProfile};
use aequus::workload::{Trace, TraceJob};

fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The chaos suite's 3-site grid with the full fault plan, profiled.
fn scenario(seed: u64, mode: ProfileMode) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.tick_interval_s = 5.0;
    sc.timings.exchange_latency_s = 5.0;
    sc.timings.uss_publish_interval_s = 30.0;
    sc.faults = FaultPlan {
        drop_probability: 0.10,
        outages: vec![Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 600.0,
        }],
        crashes: vec![Outage {
            cluster: 2,
            from_s: 400.0,
            to_s: 700.0,
        }],
    };
    sc.with_profiling(mode)
}

fn trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn profiled_run(threads: usize, mode: ProfileMode) -> SimResult {
    GridSimulation::new(scenario(base_seed(), mode).with_threads(threads)).run(&trace(), 1800.0)
}

fn profile_of(result: &SimResult) -> &RunProfile {
    result.profile.as_ref().expect("profiled run has a profile")
}

#[test]
fn folded_profile_is_byte_identical_across_worker_counts() {
    let serial = profiled_run(1, ProfileMode::Full);
    let reference = profile_of(&serial).to_folded();
    // The reference itself carries the expected hot-path rows.
    for needle in [
        "aequus;shard0;events.ticks ",
        "aequus;shard0;gossip.wire;bytes ",
        "aequus;shard2;queue.hwm ",
        "aequus;services;uss.ingest ",
        "aequus;engine;mailbox.hwm ",
    ] {
        assert!(
            reference.contains(needle),
            "folded profile missing {needle}"
        );
    }
    // And never wall-clock rows — those live in the Chrome trace.
    assert!(!reference.contains("barrier.wait"));
    for threads in [2, 4, 8] {
        let parallel = profiled_run(threads, ProfileMode::Full);
        assert_eq!(
            profile_of(&parallel).to_folded(),
            reference,
            "folded profile at {threads} workers diverged from serial"
        );
    }
    // Counters mode (no wall clocks at all) folds identically too: the
    // folded view only uses values both modes collect.
    let counters = profiled_run(1, ProfileMode::Counters);
    assert_eq!(profile_of(&counters).to_folded(), reference);
}

/// Track identity and per-track timestamps of a Chrome trace: a map of
/// `tid -> thread name` from the metadata events, plus the assertion that
/// every duration event's `ts` is monotonically non-decreasing per `tid`
/// and every `pid` is the single simulated process.
fn validate_chrome_trace(text: &str) -> std::collections::BTreeMap<u64, String> {
    let doc = JsonValue::parse(text).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let mut tracks = std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for ev in events {
        let pid = ev.get("pid").and_then(JsonValue::as_u64).expect("pid");
        assert_eq!(pid, 1, "single simulated process");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("tid");
        match ev.get("ph").and_then(JsonValue::as_str).expect("phase") {
            "M" => {
                if ev.get("name").and_then(JsonValue::as_str) == Some("thread_name") {
                    let name = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                        .expect("thread name");
                    tracks.insert(tid, name.to_string());
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                assert!(
                    ts >= *prev,
                    "track {tid}: ts {ts} went backwards (prev {prev})"
                );
                *prev = ts;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    tracks
}

#[test]
fn chrome_trace_is_loadable_and_tracks_are_stable() {
    let serial = profiled_run(1, ProfileMode::Full);
    let serial_tracks = validate_chrome_trace(&profile_of(&serial).to_chrome_trace());
    // One track per shard, named after the site it simulates.
    assert_eq!(serial_tracks.len(), 3);
    assert_eq!(serial_tracks[&0], "shard 0 (site 0)");
    assert_eq!(serial_tracks[&2], "shard 2 (site 2)");
    // Wall times differ run to run, but track identity (pid/tid/names)
    // must not depend on the worker count.
    for threads in [2, 8] {
        let parallel = profiled_run(threads, ProfileMode::Full);
        let tracks = validate_chrome_trace(&profile_of(&parallel).to_chrome_trace());
        assert_eq!(tracks, serial_tracks, "tracks at {threads} workers");
    }
}

#[test]
fn run_profile_round_trips_through_json() {
    let result = profiled_run(4, ProfileMode::Full);
    let profile = profile_of(&result);
    let back = RunProfile::from_json(&profile.to_json()).expect("parse own JSON");
    assert_eq!(&back, profile);
    // Spot-check the content survived: per-link wire bytes and the barrier
    // accounting both crossed the serialization boundary.
    assert!(back.shards.iter().any(|s| !s.link_bytes.is_empty()));
    assert!(profile.wall_totals().contains_key("epoch"));
}

#[test]
fn queue_gauges_surface_in_both_exporters() {
    let result = profiled_run(2, ProfileMode::Counters);
    let engine = result.engine_telemetry.as_ref().expect("telemetry on");
    assert!(engine.gauges["aequus_sim_event_queue_hwm"] > 0.0);
    assert!(engine.gauges["aequus_sim_mailbox_hwm"] > 0.0);
    let prom = aequus::telemetry::export::to_prometheus(engine);
    assert!(prom.contains("aequus_sim_event_queue_hwm"));
    assert!(prom.contains("aequus_sim_mailbox_hwm"));
    let json = aequus::telemetry::export::to_json(engine);
    assert!(json.contains("aequus_sim_event_queue_hwm"));
    assert!(json.contains("aequus_sim_mailbox_hwm"));
    // The profile agrees with the gauges — same underlying high-water marks.
    let profile = profile_of(&result);
    let max_queue = profile.shards.iter().map(|s| s.queue_hwm).max().unwrap();
    assert_eq!(
        engine.gauges["aequus_sim_event_queue_hwm"],
        max_queue as f64
    );
    assert_eq!(
        engine.gauges["aequus_sim_mailbox_hwm"],
        profile.mailbox_hwm as f64
    );
}

/// Modeled-vs-actual wire-bytes drift guard: the profiler's per-link wire
/// counters and the metrics `gossip_bytes` series are fed by the same
/// `UssMessage::wire_size`, which in turn must equal the codec's encoded
/// length (asserted at the unit level in `reliability.rs`). If either path
/// ever re-grows its own byte model, the two exporters disagree and this
/// test fails. Run under both encodings; Delta must also actually be the
/// smaller wire format on this workload.
#[test]
fn profiler_gossip_bytes_match_codec_bytes() {
    let mut totals = std::collections::BTreeMap::new();
    for encoding in [Encoding::Dense, Encoding::Delta] {
        let sc = scenario(base_seed(), ProfileMode::Counters).with_encoding(encoding);
        let result = GridSimulation::new(sc).run(&trace(), 1800.0);
        let profiled: u64 = profile_of(&result)
            .shards
            .iter()
            .flat_map(|s| s.link_bytes.values())
            .sum();
        let metered = result.metrics.total_gossip_bytes();
        assert!(profiled > 0, "{encoding:?}: no gossip bytes profiled");
        assert_eq!(
            profiled, metered,
            "{encoding:?}: profiler wire counters diverged from metrics gossip_bytes"
        );
        // The cumulative series ends at the total and never decreases.
        let series = result.metrics.gossip_bytes_series();
        assert_eq!(series.last().map(|&(_, b)| b), Some(metered));
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1));
        totals.insert(format!("{encoding:?}"), metered);
    }
    assert!(
        totals["Delta"] < totals["Dense"],
        "Delta must shrink the wire: {totals:?}"
    );
}

#[test]
fn unprofiled_runs_pay_nothing_visible() {
    // ProfileMode::Off is the default: no profile, no spans, and the
    // scenario flag is genuinely off unless asked for.
    let sc = GridScenario::national_testbed(&[("U65", 1.0)], base_seed());
    assert_eq!(sc.profile, ProfileMode::Off);
    let result = GridSimulation::new(scenario(base_seed(), ProfileMode::Off)).run(&trace(), 1800.0);
    assert!(result.profile.is_none());
}
