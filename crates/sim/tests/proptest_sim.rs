//! Property-based tests of the simulation engine: event ordering,
//! determinism, conservation, and gossip convergence under randomized
//! workloads and fault plans.

use aequus_core::GridUser;
use aequus_sim::event::{Event, EventQueue};
use aequus_sim::{FaultPlan, GridScenario, GridSimulation, Outage};
use aequus_workload::{Trace, TraceJob};
use proptest::prelude::*;

fn mini_scenario(seed: u64) -> GridScenario {
    let mut s = GridScenario::national_testbed(&[("U65", 0.6), ("U30", 0.3), ("U3", 0.1)], seed);
    s.clusters.truncate(3);
    for c in &mut s.clusters {
        c.nodes = 6;
    }
    s
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u8..3, 0.0..2000.0f64, 5.0..300.0f64), 1..80).prop_map(|jobs| {
        Trace::new(
            jobs.into_iter()
                .map(|(u, t, d)| TraceJob {
                    user: ["U65", "U30", "U3"][u as usize].to_string(),
                    submit_s: t,
                    duration_s: d,
                    cores: 1,
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn event_queue_pops_monotonically(times in proptest::collection::vec(0.0..1e6f64, 1..200)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(t, Event::ClusterTick);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn every_submitted_job_is_accounted(trace in trace_strategy(), seed in 0u64..100) {
        let result = GridSimulation::new(mini_scenario(seed)).run(&trace, 30_000.0);
        prop_assert_eq!(result.total_submitted(), trace.len() as u64);
        prop_assert_eq!(result.total_completed(), trace.len() as u64,
            "with a long drain every job completes");
        // Conservation of work.
        let done: f64 = result.usage_by_user().values().sum();
        prop_assert!((done - trace.total_work()).abs() < 1e-6 * trace.total_work().max(1.0));
    }

    #[test]
    fn simulation_is_deterministic(trace in trace_strategy(), seed in 0u64..50) {
        let r1 = GridSimulation::new(mini_scenario(seed)).run(&trace, 5000.0);
        let r2 = GridSimulation::new(mini_scenario(seed)).run(&trace, 5000.0);
        prop_assert_eq!(r1.events_processed, r2.events_processed);
        prop_assert_eq!(r1.total_completed(), r2.total_completed());
        for (a, b) in r1.metrics.samples().iter().zip(r2.metrics.samples()) {
            prop_assert_eq!(a.utilization, b.utilization);
            prop_assert_eq!(&a.users, &b.users);
        }
    }

    #[test]
    fn faults_never_break_accounting(
        trace in trace_strategy(),
        drop in 0.0..0.9f64,
        outage_start in 0.0..2000.0f64,
        outage_len in 100.0..3000.0f64,
    ) {
        let mut sc = mini_scenario(7);
        sc.faults = FaultPlan {
            drop_probability: drop,
            outages: vec![Outage { cluster: 1, from_s: outage_start, to_s: outage_start + outage_len }],
            crashes: vec![],
        };
        let result = GridSimulation::new(sc).run(&trace, 30_000.0);
        // Faults affect *information flow*, never the jobs themselves.
        prop_assert_eq!(result.total_completed(), trace.len() as u64);
        let done: f64 = result.usage_by_user().values().sum();
        prop_assert!((done - trace.total_work()).abs() < 1e-6 * trace.total_work().max(1.0));
    }

    #[test]
    fn gossip_converges_site_views(trace in trace_strategy()) {
        // After the run quiesces (drain ≫ publish interval), every fully
        // participating site's priorities agree, because all sites saw the
        // same usage summaries.
        let result = GridSimulation::new(mini_scenario(3)).run(&trace, 30_000.0);
        let last = result.metrics.samples().last().unwrap();
        let reference = &last.per_site_priority[0];
        for (site, view) in last.per_site_priority.iter().enumerate().skip(1) {
            for (user, p) in view {
                let p0 = reference.get(user).copied().unwrap_or(f64::NAN);
                prop_assert!(
                    (p - p0).abs() < 0.05,
                    "site {site} {user}: {p} vs site0 {p0}"
                );
            }
        }
    }

    #[test]
    fn utilization_bounded(trace in trace_strategy(), seed in 0u64..20) {
        let result = GridSimulation::new(mini_scenario(seed)).run(&trace, 10_000.0);
        for s in result.metrics.samples() {
            prop_assert!((0.0..=1.0).contains(&s.utilization));
        }
        prop_assert!((0.0..=1.0).contains(&result.mean_utilization()));
    }

    #[test]
    fn priorities_respect_k_bound(trace in trace_strategy()) {
        // No user's priority ever exceeds k + (1−k)·share.
        let sc = mini_scenario(11);
        let k = sc.fairshare.k_weight;
        let shares = [("U65", 0.6), ("U30", 0.3), ("U3", 0.1)];
        let result = GridSimulation::new(sc).run(&trace, 10_000.0);
        for (user, share) in shares {
            let bound = k + (1.0 - k) * share + 1e-9;
            for (_, p) in result.metrics.priority_series(user) {
                prop_assert!(p <= bound, "{user}: {p} > {bound}");
            }
        }
        let _ = GridUser::new("unused");
    }
}
