//! The sharded engine's order contract, property-tested: per-shard queues
//! fed through the cross-shard mailbox pop (merged) in exactly the global
//! `(time, insertion seq)` order the old single-queue engine used —
//! including ties at one timestamp that span shards, and ties between
//! directly pushed and barrier-delivered events.

use aequus_sim::{EventQueue, Mailbox, ShardedQueues};
use proptest::prelude::*;

/// One step of an interleaved schedule: local pushes happen immediately,
/// staged sends sit in the mailbox until the next barrier drains them.
#[derive(Debug, Clone)]
enum Op {
    Push { shard: usize, time: f64 },
    Stage { shard: usize, time: f64 },
    Barrier,
}

fn ops_strategy(shards: usize) -> impl Strategy<Value = Vec<Op>> {
    // Times drawn from a tiny grid so ties — the interesting case — are
    // everywhere, both within and across shards. The op mix is 4:4:1
    // push:stage:barrier via a drawn selector (the vendored proptest shim
    // has no `prop_oneof`).
    let op = (0u8..9, 0..shards, 0u8..8).prop_map(|(pick, shard, t)| {
        let time = f64::from(t) * 2.5;
        match pick {
            0..=3 => Op::Push { shard, time },
            4..=7 => Op::Stage { shard, time },
            _ => Op::Barrier,
        }
    });
    proptest::collection::vec(op, 0..120)
}

/// A popped event: `(shard, time, id)` from the sharded merge.
type Merged = Vec<(usize, f64, u32)>;
/// A popped event: `(time, (shard, id))` from the single reference queue.
type Reference = Vec<(f64, (usize, u32))>;

/// Replay `ops` against the sharded queues + mailbox and, in the same call
/// order, against one global queue; every event carries a unique id so the
/// pop sequences can be compared exactly.
fn replay(shards: usize, ops: &[Op]) -> (Merged, Reference) {
    let mut sharded: ShardedQueues<u32> = ShardedQueues::new(shards);
    let mut mailbox: Mailbox<u32> = Mailbox::new();
    let mut single: EventQueue<(usize, u32)> = EventQueue::new();
    let mut staged_ref: Vec<(usize, f64, u32)> = Vec::new();
    let mut next_id = 0u32;
    for op in ops {
        match *op {
            Op::Push { shard, time } => {
                sharded.push(shard, time, next_id);
                single.push(time, (shard, next_id));
                next_id += 1;
            }
            Op::Stage { shard, time } => {
                mailbox.stage(shard, time, next_id);
                staged_ref.push((shard, time, next_id));
                next_id += 1;
            }
            Op::Barrier => {
                mailbox.drain_into(&mut sharded);
                for (shard, time, id) in staged_ref.drain(..) {
                    single.push(time, (shard, id));
                }
            }
        }
    }
    // Final barrier so nothing is left in flight.
    mailbox.drain_into(&mut sharded);
    for (shard, time, id) in staged_ref.drain(..) {
        single.push(time, (shard, id));
    }
    let merged: Vec<(usize, f64, u32)> = std::iter::from_fn(|| sharded.pop_global()).collect();
    let reference: Vec<(f64, (usize, u32))> = std::iter::from_fn(|| single.pop()).collect();
    (merged, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_merge_equals_single_queue_order(
        shards in 1usize..6,
        ops in ops_strategy(5),
    ) {
        // Clamp shard indices into range (the strategy draws 0..5 but the
        // queue may have fewer shards this case).
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Push { shard, time } => Op::Push { shard: shard % shards, time },
                Op::Stage { shard, time } => Op::Stage { shard: shard % shards, time },
                Op::Barrier => Op::Barrier,
            })
            .collect();
        let (merged, reference) = replay(shards, &ops);
        prop_assert_eq!(merged.len(), reference.len());
        for (i, (&(m_shard, m_time, m_id), &(r_time, (r_shard, r_id)))) in
            merged.iter().zip(&reference).enumerate()
        {
            prop_assert_eq!(m_id, r_id, "position {}: {:?} vs {:?}", i, merged, reference);
            prop_assert_eq!(m_shard, r_shard);
            prop_assert_eq!(m_time, r_time);
        }
    }

    #[test]
    fn merged_pop_is_time_monotone(ops in ops_strategy(3)) {
        let (merged, _) = replay(3, &ops);
        for w in merged.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "{:?}", merged);
        }
    }
}
