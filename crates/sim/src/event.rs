//! The discrete-event core: deterministic time-ordered event queues.
//!
//! Since the sharded-engine refactor the queue layer has two shapes:
//!
//! * [`EventQueue`] — one shard's local queue. Events pop in `(time,
//!   insertion seq)` order, so a shard's execution is exactly reproducible.
//! * [`ShardedQueues`] + [`Mailbox`] — the *order contract* the sharded
//!   engine is built on: per-shard queues sharing one global insertion
//!   sequence, plus a mailbox staging cross-shard sends until a barrier.
//!   A merged pop over the sharded queues yields exactly the order a single
//!   global queue would, including cross-shard ties — the property test in
//!   `tests/proptest_event_order.rs` pins this down.
//!
//! The parallel engine never performs the merged pop (shards burn through a
//! whole epoch of local events without coordination); the merge exists to
//! state — and test — what "equivalent to the single-queue engine" means.

use aequus_services::UssMessage;
use aequus_workload::TraceJob;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A shard-local simulation event. Cross-shard traffic ([`Event::UssDeliver`])
/// enters a shard's queue only at epoch barriers, via the coordinator.
#[derive(Debug, Clone)]
pub enum Event {
    /// A job arrives at this shard's cluster (pre-dispatched at run start).
    JobArrival(TraceJob),
    /// Periodic cluster advance (site tick + scheduler iteration).
    ClusterTick,
    /// A reliable-exchange message reaches this shard's site after network
    /// latency (summaries, acks, resync pulls, snapshots).
    UssDeliver(UssMessage),
}

#[derive(Debug)]
struct Scheduled<E> {
    time_s: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest time pops first;
        // ties break by insertion order (earlier seq first). `total_cmp`
        // keeps this a total order even for non-finite times — those are
        // rejected with context at `push` time, so the comparator itself
        // has no panic path deep inside the heap.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue (one shard's local events).
#[derive(Debug)]
pub struct EventQueue<E = Event> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            high_water: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time_s`.
    ///
    /// Non-finite times are a scenario bug (e.g. a NaN latency or an
    /// overflowed horizon); they are rejected here, at insertion, where the
    /// caller and the offending value are still on the stack — not deep
    /// inside a heap comparison.
    pub fn push(&mut self, time_s: f64, event: E) {
        debug_assert!(
            time_s.is_finite(),
            "event time must be finite, got {time_s} (check scenario latencies/horizons)"
        );
        let seq = self.seq;
        self.seq += 1;
        self.push_at(time_s, seq, event);
    }

    /// Insert with an externally assigned sequence number (used by
    /// [`ShardedQueues`] to share one global insertion order across shards).
    fn push_at(&mut self, time_s: f64, seq: u64, event: E) {
        self.heap.push(Scheduled { time_s, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Pop the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time_s, s.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// `(time, seq)` key of the earliest event without removing it.
    pub fn peek_key(&self) -> Option<(f64, u64)> {
        self.heap.peek().map(|s| (s.time_s, s.seq))
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Peak queue depth observed over the queue's lifetime (saturating
    /// high-water mark, updated on every push). Deterministic: depends only
    /// on the event schedule, never on thread timing.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Cross-shard sends staged between barriers: `(destination shard, delivery
/// time, event)` triples held back until the coordinator drains them at the
/// next barrier, in staging order.
#[derive(Debug)]
pub struct Mailbox<E = Event> {
    staged: Vec<(usize, f64, E)>,
    high_water: usize,
}

impl<E> Default for Mailbox<E> {
    fn default() -> Self {
        Self {
            staged: Vec::new(),
            high_water: 0,
        }
    }
}

impl<E> Mailbox<E> {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage an event for delivery to `shard` at `time_s`.
    pub fn stage(&mut self, shard: usize, time_s: f64, event: E) {
        self.staged.push((shard, time_s, event));
        self.high_water = self.high_water.max(self.staged.len());
    }

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Peak number of events staged at once (survives drains — the gauge
    /// queue-depth blowups are diagnosed from).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drain every staged event into the sharded queues, preserving staging
    /// order (which therefore defines the tie-break order among same-time
    /// cross-shard deliveries).
    pub fn drain_into(&mut self, queues: &mut ShardedQueues<E>) {
        for (shard, time_s, event) in self.staged.drain(..) {
            queues.push(shard, time_s, event);
        }
    }
}

/// Per-shard event queues sharing one *global* insertion sequence: the
/// single-queue order, physically split by shard. [`Self::pop_global`]
/// merges them back into exactly the `(time, seq)` order a single
/// [`EventQueue`] would produce — the equivalence the sharded engine's
/// barrier discipline relies on.
#[derive(Debug)]
pub struct ShardedQueues<E = Event> {
    shards: Vec<EventQueue<E>>,
    seq: u64,
    live: usize,
    high_water: usize,
}

impl<E> ShardedQueues<E> {
    /// `n` empty per-shard queues.
    pub fn new(n: usize) -> Self {
        Self {
            shards: (0..n).map(|_| EventQueue::default()).collect(),
            seq: 0,
            live: 0,
            high_water: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedule `event` on `shard` at `time_s`, drawing the next global
    /// sequence number.
    pub fn push(&mut self, shard: usize, time_s: f64, event: E) {
        debug_assert!(
            time_s.is_finite(),
            "event time must be finite, got {time_s} (check scenario latencies/horizons)"
        );
        let seq = self.seq;
        self.seq += 1;
        self.shards[shard].push_at(time_s, seq, event);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
    }

    /// Pop the globally earliest event across all shards: minimum `(time,
    /// seq)`, i.e. exactly the order one global queue would pop in — time
    /// first, then insertion order, including cross-shard ties.
    pub fn pop_global(&mut self) -> Option<(usize, f64, E)> {
        let best = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.peek_key().map(|(t, s)| (i, t, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)))?;
        let (t, e) = self.shards[best.0].pop().expect("peeked shard non-empty");
        self.live -= 1;
        Some((best.0, t, e))
    }

    /// Total queued events across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventQueue::len).sum()
    }

    /// Whether every shard queue is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EventQueue::is_empty)
    }

    /// Peak total events queued across all shards at once (tracked with a
    /// live counter on push/pop, not an O(shards) sum).
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: f64) -> Event {
        Event::JobArrival(TraceJob {
            user: "u".to_string(),
            submit_s: t,
            duration_s: 1.0,
            cores: 1,
        })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, job(5.0));
        q.push(1.0, job(1.0));
        q.push(3.0, job(3.0));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::ClusterTick);
        q.push(2.0, job(2.0));
        assert!(matches!(q.pop().unwrap().1, Event::ClusterTick));
        assert!(matches!(q.pop().unwrap().1, Event::JobArrival(_)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7.0, Event::ClusterTick);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.peek_key(), Some((7.0, 0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "finiteness is a debug assertion")]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::ClusterTick);
    }

    #[test]
    fn sharded_pop_merges_cross_shard_ties_by_global_seq() {
        let mut q: ShardedQueues<u32> = ShardedQueues::new(3);
        q.push(2, 5.0, 0); // seq 0
        q.push(0, 5.0, 1); // seq 1 — same time, later insertion
        q.push(1, 1.0, 2); // seq 2 — earliest time
        let order: Vec<(usize, u32)> =
            std::iter::from_fn(|| q.pop_global().map(|(s, _, e)| (s, e))).collect();
        assert_eq!(order, vec![(1, 2), (2, 0), (0, 1)]);
    }

    #[test]
    fn high_water_marks_saturate_across_drains() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::ClusterTick);
        q.push(2.0, Event::ClusterTick);
        q.push(3.0, Event::ClusterTick);
        q.pop();
        q.pop();
        q.pop();
        q.push(4.0, Event::ClusterTick);
        assert_eq!(q.high_water(), 3, "hwm survives full drains");

        let mut sq: ShardedQueues<u32> = ShardedQueues::new(2);
        sq.push(0, 1.0, 1);
        sq.push(1, 1.0, 2);
        sq.pop_global();
        sq.push(0, 2.0, 3);
        assert_eq!(sq.high_water(), 2, "global hwm is cross-shard total");

        let mut mbox: Mailbox<u32> = Mailbox::new();
        mbox.stage(0, 1.0, 1);
        mbox.stage(1, 1.0, 2);
        mbox.stage(0, 1.0, 3);
        mbox.drain_into(&mut sq);
        mbox.stage(0, 2.0, 4);
        assert_eq!(mbox.high_water(), 3, "mailbox hwm survives drain_into");
    }

    #[test]
    fn mailbox_drains_in_staging_order() {
        let mut q: ShardedQueues<u32> = ShardedQueues::new(2);
        let mut mbox: Mailbox<u32> = Mailbox::new();
        mbox.stage(1, 3.0, 10);
        mbox.stage(0, 3.0, 11);
        assert_eq!(mbox.len(), 2);
        mbox.drain_into(&mut q);
        assert!(mbox.is_empty());
        assert_eq!(q.pop_global().unwrap().2, 10);
        assert_eq!(q.pop_global().unwrap().2, 11);
        assert!(q.is_empty());
    }
}
