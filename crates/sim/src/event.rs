//! The discrete-event core: a time-ordered event queue with deterministic
//! tie-breaking (insertion sequence), so simulations are exactly
//! reproducible given a seed.

use aequus_services::UssMessage;
use aequus_workload::TraceJob;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A job arrives at the submission host.
    JobArrival(TraceJob),
    /// Periodic cluster advance (site tick + scheduler iteration).
    ClusterTick,
    /// A reliable-exchange message reaches a destination site after network
    /// latency (summaries, acks, resync pulls, snapshots).
    UssDeliver {
        /// Destination cluster index.
        to: usize,
        /// The message being delivered.
        msg: UssMessage,
    },
    /// Periodic metrics sample.
    MetricsSample,
}

#[derive(Debug)]
struct Scheduled {
    time_s: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest time pops first;
        // ties break by insertion order (earlier seq first).
        other
            .time_s
            .partial_cmp(&self.time_s)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `time_s`.
    pub fn push(&mut self, time_s: f64, event: Event) {
        assert!(time_s.is_finite(), "event time must be finite");
        self.heap.push(Scheduled {
            time_s,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|s| (s.time_s, s.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: f64) -> Event {
        Event::JobArrival(TraceJob {
            user: "u".to_string(),
            submit_s: t,
            duration_s: 1.0,
            cores: 1,
        })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, job(5.0));
        q.push(1.0, job(1.0));
        q.push(3.0, job(3.0));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::ClusterTick);
        q.push(2.0, Event::MetricsSample);
        assert!(matches!(q.pop().unwrap().1, Event::ClusterTick));
        assert!(matches!(q.pop().unwrap().1, Event::MetricsSample));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7.0, Event::ClusterTick);
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::ClusterTick);
    }
}
