//! The grid simulation engine: event loop driving job arrivals, cluster
//! ticks, USS↔USS gossip with latency, fault injection, and metrics
//! sampling — the in-silico equivalent of the paper's 7-machine test bed.

use crate::cluster::SimCluster;
use crate::dispatch::Dispatcher;
use crate::event::{Event, EventQueue};
use crate::faults::FaultRng;
use crate::metrics::{MetricsLog, Sample, UserSample};
use crate::scenario::GridScenario;
use aequus_core::{GridUser, SiteId};
use aequus_rms::SchedulerStats;
use aequus_services::{StoreStats, UssMessage};
use aequus_telemetry::flight::{dump_jsonl, FlightRecorder};
use aequus_telemetry::provenance::ProvenanceRecord;
use aequus_telemetry::{Counter, Snapshot, SpanRecord, Telemetry};
use aequus_workload::Trace;
use std::collections::BTreeMap;

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Time-series metrics.
    pub metrics: MetricsLog,
    /// Final per-cluster scheduler statistics.
    pub cluster_stats: Vec<SchedulerStats>,
    /// Final mean utilization per cluster over the whole run.
    pub cluster_utilization: Vec<f64>,
    /// Simulated end time, seconds.
    pub end_s: f64,
    /// Events processed (engine observability).
    pub events_processed: u64,
    /// Final telemetry snapshot of each site's registry, in cluster order.
    /// Empty when the scenario ran without telemetry.
    pub site_telemetry: Vec<Snapshot>,
    /// Final snapshot of the engine's own registry (event-loop spans).
    /// `None` when the scenario ran without telemetry.
    pub engine_telemetry: Option<Snapshot>,
    /// Each site's final raw per-user view of grid usage (local + merged
    /// remote), in cluster order — what the chaos suite's convergence
    /// invariant compares against a fault-free run.
    pub site_usage_views: Vec<BTreeMap<GridUser, f64>>,
    /// Each site's bounded span store at the end of the run, in cluster
    /// order. `SpanTree::assemble` merges them into end-to-end causal trees.
    /// Empty per site unless the scenario enabled tracing.
    pub site_spans: Vec<Vec<SpanRecord>>,
    /// Each site's captured decision provenance, in cluster order. Empty
    /// per site unless the scenario enabled provenance capture.
    pub site_provenance: Vec<Vec<ProvenanceRecord>>,
    /// JSONL flight records dumped by the anomaly detector, in detection
    /// order. Empty without a configured flight recorder.
    pub flight_records: Vec<String>,
    /// Each site's durable-store health counters (cumulative across crash
    /// incarnations), in cluster order. `None` per site unless the scenario
    /// attached a store.
    pub site_store_stats: Vec<Option<StoreStats>>,
}

impl SimResult {
    /// Total jobs completed across clusters.
    pub fn total_completed(&self) -> u64 {
        self.cluster_stats.iter().map(|s| s.completed).sum()
    }

    /// Total jobs submitted across clusters.
    pub fn total_submitted(&self) -> u64 {
        self.cluster_stats.iter().map(|s| s.submitted).sum()
    }

    /// Grid-wide mean utilization (capacity-weighted mean of clusters is
    /// approximated by the plain mean here because the paper's clusters are
    /// homogeneous).
    pub fn mean_utilization(&self) -> f64 {
        if self.cluster_utilization.is_empty() {
            return 0.0;
        }
        self.cluster_utilization.iter().sum::<f64>() / self.cluster_utilization.len() as f64
    }

    /// Per-user completed usage across all clusters.
    pub fn usage_by_user(&self) -> BTreeMap<GridUser, f64> {
        let mut out: BTreeMap<GridUser, f64> = BTreeMap::new();
        for s in &self.cluster_stats {
            for (u, v) in &s.usage_by_user {
                *out.entry(u.clone()).or_insert(0.0) += v;
            }
        }
        out
    }
}

/// The simulation engine.
pub struct GridSimulation {
    scenario: GridScenario,
    clusters: Vec<SimCluster>,
    dispatcher: Dispatcher,
    faults: FaultRng,
    /// Per-cluster crash state (edge detection for crash/recovery windows).
    crashed: Vec<bool>,
    /// The engine's own telemetry domain: event-loop spans and counters,
    /// separate from the per-site registries.
    telemetry: Telemetry,
    /// The anomaly detector, when the scenario configured one.
    recorder: Option<FlightRecorder>,
    /// JSONL dumps the recorder produced so far.
    flight_records: Vec<String>,
}

impl GridSimulation {
    /// Build the grid from a scenario.
    pub fn new(scenario: GridScenario) -> Self {
        let mut clusters: Vec<SimCluster> = scenario
            .clusters
            .iter()
            .enumerate()
            .map(|(i, spec)| SimCluster::new(i, spec, &scenario))
            .collect();
        // Register the reliable-exchange topology: each site delivers to the
        // peers that read global data and expects summaries from the peers
        // that contribute it (participation modes, §IV-A-4).
        let n = clusters.len();
        for (i, cluster) in clusters.iter_mut().enumerate() {
            let tx: Vec<SiteId> = (0..n)
                .filter(|&j| j != i && scenario.clusters[j].participation.reads_global())
                .map(|j| SiteId(j as u32))
                .collect();
            let rx: Vec<SiteId> = (0..n)
                .filter(|&j| j != i && scenario.clusters[j].participation.contributes())
                .map(|j| SiteId(j as u32))
                .collect();
            cluster.site.configure_exchange(
                &tx,
                &rx,
                scenario.retry,
                scenario.stale_policy,
                scenario.seed,
            );
        }
        let dispatcher = Dispatcher::new(scenario.dispatch, &scenario.capacities(), scenario.seed);
        let faults = FaultRng::new(scenario.seed.wrapping_add(0x5EED));
        let telemetry = if scenario.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let recorder = scenario.flight.map(FlightRecorder::new);
        Self {
            scenario,
            clusters,
            dispatcher,
            faults,
            crashed: vec![false; n],
            telemetry,
            recorder,
            flight_records: Vec::new(),
        }
    }

    /// Run the trace through the grid, continuing `drain_s` seconds past the
    /// last submission so queued work completes.
    pub fn run(mut self, trace: &Trace, drain_s: f64) -> SimResult {
        let end_s = trace.last_submit() + drain_s;
        let mut queue = EventQueue::new();
        for job in trace.jobs() {
            queue.push(job.submit_s, Event::JobArrival(job.clone()));
        }
        queue.push(0.0, Event::ClusterTick);
        queue.push(0.0, Event::MetricsSample);

        let mut metrics = MetricsLog::new(self.scenario.tracked_users().into_iter().collect());
        let mut events = 0u64;
        let h_event = self.telemetry.histogram("aequus_sim_event_s");
        let c_arrivals = self.telemetry.counter("aequus_sim_job_arrivals_total");
        let c_ticks = self.telemetry.counter("aequus_sim_cluster_ticks_total");
        let c_gossip = self.telemetry.counter("aequus_sim_gossip_deliveries_total");
        let c_partitioned = self
            .telemetry
            .counter("aequus_sim_gossip_partitioned_total");
        let c_dropped = self.telemetry.counter("aequus_sim_gossip_dropped_total");
        let c_crashes = self.telemetry.counter("aequus_sim_crashes_total");
        let c_samples = self.telemetry.counter("aequus_sim_metrics_samples_total");

        while let Some((now, event)) = queue.pop() {
            if now > end_s {
                break;
            }
            events += 1;
            let span = h_event.start_timer();
            match event {
                Event::JobArrival(job) => {
                    c_arrivals.inc();
                    let target = self.dispatcher.pick();
                    self.clusters[target].submit(&job, now);
                    metrics.count_submission(now);
                }
                Event::ClusterTick => {
                    c_ticks.inc();
                    self.tick_clusters(now, &mut queue, &c_dropped, &c_crashes);
                    let next = now + self.scenario.tick_interval_s;
                    if next <= end_s {
                        queue.push(next, Event::ClusterTick);
                    }
                }
                Event::UssDeliver { to, msg } => {
                    if self.crashed[to] || self.scenario.faults.is_partitioned(to, now) {
                        // Undeliverable: the publisher's outbox keeps the
                        // data and the retry/anti-entropy layer re-syncs it
                        // once the site is back.
                        c_partitioned.inc();
                    } else {
                        if msg.is_data() {
                            c_gossip.inc();
                        }
                        let responses = self.clusters[to].deliver_msg(&msg, now);
                        for (dest, response) in responses {
                            self.route(dest.0 as usize, response, now, &mut queue, &c_dropped);
                        }
                    }
                }
                Event::MetricsSample => {
                    c_samples.inc();
                    let sample = self.sample(now);
                    self.observe_anomalies(&sample, now);
                    metrics.record(sample);
                    let next = now + self.scenario.sample_interval_s;
                    if next <= end_s {
                        queue.push(next, Event::MetricsSample);
                    }
                }
            }
            span.observe();
        }

        let cluster_utilization: Vec<f64> = self
            .clusters
            .iter_mut()
            .map(|c| c.rms.utilization(end_s))
            .collect();
        SimResult {
            metrics,
            cluster_stats: self
                .clusters
                .iter()
                .map(|c| c.rms.stats().clone())
                .collect(),
            cluster_utilization,
            end_s,
            events_processed: events,
            site_telemetry: self
                .clusters
                .iter()
                .filter_map(|c| c.telemetry.snapshot())
                .collect(),
            engine_telemetry: self.telemetry.snapshot(),
            site_usage_views: self
                .clusters
                .iter()
                .map(|c| c.site.uss.grid_view())
                .collect(),
            site_spans: self.clusters.iter().map(|c| c.telemetry.spans()).collect(),
            site_provenance: self
                .clusters
                .iter()
                .map(|c| c.telemetry.provenance_records())
                .collect(),
            site_store_stats: self.clusters.iter().map(|c| c.site.store_stats()).collect(),
            flight_records: self.flight_records,
        }
    }

    fn tick_clusters(
        &mut self,
        now: f64,
        queue: &mut EventQueue,
        c_dropped: &Counter,
        c_crashes: &Counter,
    ) {
        let n = self.clusters.len();
        for i in 0..n {
            // Crash-window edges: entering wipes the site's volatile Aequus
            // state, leaving triggers snapshot catch-up from peers.
            let crashed_now = self.scenario.faults.is_crashed(i, now);
            if crashed_now != self.crashed[i] {
                if crashed_now {
                    self.clusters[i].site.crash(now);
                    c_crashes.inc();
                } else {
                    self.clusters[i].site.recover(now);
                }
                self.crashed[i] = crashed_now;
            }
            if crashed_now {
                // The RMS keeps scheduling (degraded, stale-cache priorities)
                // and completed jobs spool their usage reports for replay,
                // but the Aequus services are down.
                self.clusters[i].step_rms_only(now);
                continue;
            }
            self.clusters[i].step(now);
            // With peers registered the legacy broadcast outbox stays empty
            // and the reliable exchange drains through poll_messages. A
            // peerless site (single-cluster scenario) still fills it — and
            // has nowhere to send, so discard.
            let _ = self.clusters[i].take_outbox();
            let msgs = self.clusters[i].poll_messages(now);
            if self.scenario.faults.is_partitioned(i, now) {
                // Transport cut at the source. The retry state has already
                // advanced, so the lost sends retry after their backoff.
                continue;
            }
            for (dest, msg) in msgs {
                self.route(dest.0 as usize, msg, now, queue, c_dropped);
            }
        }
    }

    /// Route one exchange message toward `dest` with network latency,
    /// subject to the random-drop fault (control messages are as droppable
    /// as data — the protocol tolerates either).
    fn route(
        &mut self,
        dest: usize,
        msg: UssMessage,
        now: f64,
        queue: &mut EventQueue,
        c_dropped: &Counter,
    ) {
        if self.faults.should_drop(&self.scenario.faults) {
            c_dropped.inc();
            return;
        }
        // Bulk snapshot catch-ups haul a full cumulative view over the
        // wire; the scenario may charge them extra transfer time on top of
        // the per-hop exchange latency (incremental summaries stay cheap).
        let transfer = match msg {
            UssMessage::Snapshot { .. } => self.scenario.snapshot_transfer_s,
            _ => 0.0,
        };
        queue.push(
            now + self.scenario.timings.exchange_latency_s + transfer,
            Event::UssDeliver { to: dest, msg },
        );
    }

    /// The raw per-user grid-usage views held by global-reading, non-crashed
    /// sites, and the largest per-user spread between them.
    fn view_divergence(&self) -> f64 {
        let views: Vec<BTreeMap<GridUser, f64>> = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !self.crashed[*i] && self.scenario.clusters[*i].participation.reads_global()
            })
            .map(|(_, c)| c.site.uss.grid_view())
            .collect();
        if views.len() < 2 {
            return 0.0;
        }
        let mut divergence = 0.0f64;
        let users: std::collections::BTreeSet<&GridUser> =
            views.iter().flat_map(|v| v.keys()).collect();
        for user in users {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for view in &views {
                let v = view.get(user).copied().unwrap_or(0.0);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            divergence = divergence.max(hi - lo);
        }
        divergence
    }

    /// Feed the flight recorder one sampling tick's observations; any newly
    /// fired anomaly dumps the reference site's retained telemetry as JSONL.
    fn observe_anomalies(&mut self, sample: &Sample, now: f64) {
        let Some(mut rec) = self.recorder.take() else {
            return;
        };
        let mut anomalies = Vec::new();
        for (name, target) in self.scenario.tracked_users() {
            let achieved = sample
                .users
                .get(&name)
                .map(|u| u.usage_share)
                .unwrap_or(0.0);
            anomalies.extend(rec.observe_user_share(&name, achieved, target, now));
        }
        let suppressed = self.clusters.iter().any(|c| c.site.uss.remote_suppressed());
        anomalies.extend(rec.observe_degradation(suppressed, now));
        anomalies.extend(rec.observe_divergence(sample.usage_view_divergence, now));
        for a in anomalies {
            self.flight_records
                .push(dump_jsonl(&a, &self.clusters[0].telemetry));
        }
        self.recorder = Some(rec);
    }

    fn sample(&mut self, now: f64) -> Sample {
        let mut users: BTreeMap<String, UserSample> = BTreeMap::new();
        let tracked = self.scenario.tracked_users();
        if let Some(tree) = self.clusters[0].site.fairshare_tree() {
            for (path, grid_user) in self.scenario.policy.users() {
                let name = grid_user.as_str().to_string();
                let factor = self.clusters[0].site.fcs.query(&grid_user).unwrap_or(0.5);
                // Absolute usage share: product of per-level usage shares —
                // identical to the per-node share for flat hierarchies.
                let shares = aequus_core::projection::Percental::total_shares(tree, &path);
                let priority = tree.user_priority(&grid_user);
                if let (Some((_, usage_share)), Some(priority)) = (shares, priority) {
                    users.insert(
                        name,
                        UserSample {
                            priority,
                            usage_share,
                            factor,
                        },
                    );
                }
            }
        }
        let per_site_priority: Vec<BTreeMap<String, f64>> = self
            .clusters
            .iter()
            .map(|c| {
                c.site
                    .fairshare_tree()
                    .map(|tree| {
                        tracked
                            .iter()
                            .filter_map(|(name, _)| {
                                tree.user_priority(&GridUser::new(name.clone()))
                                    .map(|p| (name.clone(), p))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let total_cores: u32 = self.scenario.total_cores();
        let busy: u32 = self
            .clusters
            .iter()
            .map(|c| match &c.rms {
                crate::cluster::Rms::Slurm(s) => s.core().nodes.busy_cores(),
                crate::cluster::Rms::Maui(m) => m.core().nodes.busy_cores(),
            })
            .sum();
        Sample {
            t_s: now,
            users,
            per_site_priority,
            utilization: busy as f64 / total_cores.max(1) as f64,
            pending: self.clusters.iter().map(|c| c.rms.pending()).sum(),
            running: self.clusters.iter().map(|c| c.rms.running()).sum(),
            completed: self.clusters.iter().map(|c| c.rms.stats().completed).sum(),
            fcs_full_refreshes: self
                .clusters
                .iter()
                .map(|c| c.site.fcs.full_refreshes())
                .sum(),
            fcs_incremental_refreshes: self
                .clusters
                .iter()
                .map(|c| c.site.fcs.incremental_refreshes())
                .sum(),
            fcs_nodes_recomputed: self
                .clusters
                .iter()
                .map(|c| c.site.fcs.nodes_recomputed())
                .sum(),
            usage_view_divergence: self.view_divergence(),
            site_telemetry: self
                .clusters
                .iter()
                .filter_map(|c| c.telemetry.snapshot())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_workload::users::baseline_policy_shares;
    use aequus_workload::TraceJob;

    fn small_scenario() -> GridScenario {
        let mut s = GridScenario::national_testbed(&baseline_policy_shares(), 7);
        // Shrink for unit-test speed: 2 clusters × 4 cores.
        s.clusters.truncate(2);
        for c in &mut s.clusters {
            c.nodes = 4;
        }
        s
    }

    fn uniform_trace(n: usize, spacing: f64, dur: f64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| TraceJob {
                    user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                    submit_s: i as f64 * spacing,
                    duration_s: dur,
                    cores: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn all_jobs_complete() {
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 2000.0);
        assert_eq!(result.total_submitted(), 40);
        assert_eq!(result.total_completed(), 40);
        assert!(result.events_processed > 0);
    }

    #[test]
    fn usage_conservation() {
        // Work completed == work submitted (all jobs single-core).
        let trace = uniform_trace(24, 5.0, 50.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 3000.0);
        let total: f64 = result.usage_by_user().values().sum();
        assert!((total - trace.total_work()).abs() < 1e-6, "{total}");
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = uniform_trace(30, 7.0, 40.0);
        let r1 = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        let r2 = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        assert_eq!(r1.total_completed(), r2.total_completed());
        assert_eq!(r1.metrics.samples().len(), r2.metrics.samples().len());
        for (a, b) in r1.metrics.samples().iter().zip(r2.metrics.samples()) {
            assert_eq!(a.utilization, b.utilization);
            assert_eq!(a.users, b.users);
        }
    }

    #[test]
    fn gossip_spreads_usage_between_sites() {
        // All jobs land on cluster 0 (cluster 1 has zero capacity), yet
        // cluster 1 learns the usage through the exchange.
        let mut sc = small_scenario();
        sc.clusters[1].nodes = 0;
        let trace = uniform_trace(16, 5.0, 60.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        let last = result.metrics.samples().last().unwrap();
        // Site 1's tree has non-trivial priorities (it saw remote usage).
        let site1 = &last.per_site_priority[1];
        assert!(
            site1.values().any(|p| p.abs() > 1e-6),
            "site 1 should see remote usage: {site1:?}"
        );
    }

    #[test]
    fn telemetry_tracer_p99_within_configured_pipeline_bound() {
        // Sustained submissions keep libaequus queries flowing long enough
        // for sampled traces to complete the whole delay chain; the measured
        // end-to-end p99 must then respect the §IV-A-2 worst-case bound.
        let sc = small_scenario().with_telemetry();
        let bound = sc.timings.worst_case_pipeline_s();
        let trace = uniform_trace(160, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        assert_eq!(result.site_telemetry.len(), 2, "one snapshot per site");
        let completed: u64 = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.counters.get("aequus_tracer_completed_total"))
            .sum();
        assert!(completed > 0, "some sampled traces must complete");
        for snap in &result.site_telemetry {
            let e2e = match snap.histograms.get("aequus_tracer_end_to_end_s") {
                Some(h) if h.count > 0 => h,
                _ => continue,
            };
            assert!(
                e2e.p99 <= bound * 1.0625 + 1e-9,
                "e2e p99 {} exceeds configured worst case {bound} \
                 (bucket width allows 6.25% overestimate)",
                e2e.p99
            );
            // Each stage histogram exists alongside the end-to-end one.
            for stage in ["report", "publish", "ums", "fcs", "lib"] {
                let name = format!("aequus_tracer_{stage}_delay_s");
                assert!(snap.histograms.contains_key(&name), "missing {name}");
            }
        }
        // The engine registry saw the event loop.
        let engine = result.engine_telemetry.expect("engine telemetry on");
        assert!(engine.histograms["aequus_sim_event_s"].count > 0);
        assert!(engine.counters["aequus_sim_cluster_ticks_total"] > 0);
        // Per-sample snapshots ride along in the metrics log.
        let last = result.metrics.samples().last().unwrap();
        assert_eq!(last.site_telemetry.len(), 2);
    }

    #[test]
    fn full_tracing_builds_cross_site_causal_trees() {
        use aequus_core::Explanation;
        use aequus_telemetry::SpanTree;
        let sc = small_scenario().with_full_tracing();
        let trace = uniform_trace(60, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        // Every site holds a span store; merged, they form causal trees
        // whose deepest chain crosses the whole pipeline.
        assert_eq!(result.site_spans.len(), 2);
        assert!(result.site_spans.iter().all(|s| !s.is_empty()));
        let stores: Vec<&[aequus_telemetry::SpanRecord]> =
            result.site_spans.iter().map(Vec::as_slice).collect();
        let trees = SpanTree::assemble(&stores);
        assert!(!trees.is_empty());
        assert!(
            trees.iter().any(|t| t.depth() >= 4),
            "some trace reaches report → ingest → publish → … depth, got {:?}",
            trees.iter().map(SpanTree::depth).max()
        );
        // Gossip linked at least one trace across sites.
        fn sites_of(t: &SpanTree, out: &mut std::collections::BTreeSet<u32>) {
            out.insert(t.record.site);
            for c in &t.children {
                sites_of(c, out);
            }
        }
        let cross_site = trees.iter().any(|t| {
            let mut sites = std::collections::BTreeSet::new();
            sites_of(t, &mut sites);
            sites.len() >= 2
        });
        assert!(cross_site, "no causal tree spans two sites");
        // Every captured explanation replays its served factor bit-for-bit.
        let mut replayed = 0;
        for recs in &result.site_provenance {
            for rec in recs {
                let ex = Explanation::from_json(&rec.json).expect("parseable provenance");
                assert!(ex.verify(), "tampered/lossy capture for {}", rec.user);
                assert_eq!(
                    ex.replay().to_bits(),
                    rec.factor.to_bits(),
                    "replay mismatch for {}",
                    rec.user
                );
                replayed += 1;
            }
        }
        assert!(replayed > 0, "provenance was captured");
    }

    #[test]
    fn flight_recorder_dumps_on_divergence() {
        use aequus_telemetry::flight::AnomalyConfig;
        // One contributing site is partitioned long enough for views to
        // diverge past a tiny threshold → the recorder must fire and the
        // dump must carry events and spans.
        let mut sc = small_scenario()
            .with_full_tracing()
            .with_flight_recorder(AnomalyConfig {
                divergence_threshold: 1e-6,
                ..AnomalyConfig::default()
            });
        sc.faults.outages.push(crate::faults::Outage {
            cluster: 1,
            from_s: 0.0,
            to_s: 4000.0,
        });
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 3000.0);
        assert!(
            !result.flight_records.is_empty(),
            "divergence above threshold must dump a flight record"
        );
        let dump = &result.flight_records[0];
        assert!(dump
            .lines()
            .next()
            .unwrap()
            .contains("\"type\":\"anomaly\""));
        assert!(dump.contains("\"type\":\"span\""), "spans ride along");
    }

    #[test]
    fn durable_store_journals_and_recovers_through_crash() {
        let mut sc = small_scenario().with_durable_store();
        sc.faults.crashes.push(crate::faults::Outage {
            cluster: 1,
            from_s: 400.0,
            to_s: 700.0,
        });
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        assert_eq!(result.site_store_stats.len(), 2);
        let s1 = result.site_store_stats[1].expect("store attached");
        assert!(s1.frames_appended > 0, "{s1:?}");
        assert_eq!(s1.torn_tails, 1, "one crash, one torn tail: {s1:?}");
        assert!(
            s1.frames_replayed > 0,
            "recovery replayed the journal: {s1:?}"
        );
        // The un-crashed site journals too but never replays.
        let s0 = result.site_store_stats[0].expect("store attached");
        assert_eq!((s0.torn_tails, s0.frames_replayed), (0, 0), "{s0:?}");
    }

    #[test]
    fn store_off_reports_no_stats() {
        let trace = uniform_trace(8, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 500.0);
        assert!(result.site_store_stats.iter().all(Option::is_none));
    }

    #[test]
    fn telemetry_off_yields_no_snapshots() {
        let trace = uniform_trace(8, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        assert!(result.site_telemetry.is_empty());
        assert!(result.engine_telemetry.is_none());
        assert!(result
            .metrics
            .samples()
            .iter()
            .all(|s| s.site_telemetry.is_empty()));
    }

    #[test]
    fn utilization_reported_in_unit_range() {
        let trace = uniform_trace(60, 2.0, 100.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 4000.0);
        for s in result.metrics.samples() {
            assert!((0.0..=1.0).contains(&s.utilization));
        }
        assert!(result.mean_utilization() > 0.0);
    }
}
