//! The grid simulation coordinator: builds one shard per site, pre-routes
//! the workload trace, drives the shards through the epoch-barrier schedule
//! (serially or on scoped worker threads), and assembles the results — the
//! in-silico equivalent of the paper's 7-machine test bed, scaled out.
//!
//! All simulation mechanics live in [`crate::shard`] (per-site event
//! processing) and [`crate::barrier`] (epoch schedule + worker pool); this
//! module only wires them together. The worker count never changes results:
//! see DESIGN.md §4h for the determinism argument.

use crate::barrier::{drive, BarrierFragments, EpochSchedule};
use crate::cluster::SimCluster;
use crate::dispatch::Dispatcher;
use crate::event::Event;
use crate::metrics::{MetricsLog, Sample};
use crate::scenario::GridScenario;
use crate::shard::{SampleSpec, Shard, ShardStats};
use aequus_core::{GridUser, SiteId};
use aequus_rms::SchedulerStats;
use aequus_services::{HealthMap, HealthReport, StoreStats};
use aequus_telemetry::export::series_name;
use aequus_telemetry::flight::{dump_jsonl, FlightRecorder};
use aequus_telemetry::provenance::ProvenanceRecord;
use aequus_telemetry::slo::StarvationClock;
use aequus_telemetry::{
    AlertEvent, ProfileMode, RunProfile, ShardProfiler, SloEngine, SloRule, Snapshot, SpanRecord,
    Telemetry,
};
use aequus_workload::Trace;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Per-site service histograms folded into [`RunProfile::services`]: the
/// registry metric name and the profile stage it reports as. Histogram
/// *counts* are deterministic (how often each stage ran is a function of
/// the schedule); histogram *sums* are wall seconds and feed the wall half.
const SERVICE_STAGES: &[(&str, &str)] = &[
    ("aequus_uss_ingest_s", "uss.ingest"),
    ("aequus_uss_publish_s", "uss.publish"),
    ("aequus_uss_receive_s", "gossip.merge"),
    ("aequus_ums_refresh_s", "ums.refresh"),
    ("aequus_fcs_refresh_full_s", "fcs.refresh_full"),
    (
        "aequus_fcs_refresh_incremental_s",
        "fcs.refresh_incremental",
    ),
    ("aequus_rms_dispatch_s", "rms.dispatch"),
    ("aequus_store_wal_append_s", "wal.append"),
    ("aequus_store_wal_replay_s", "wal.replay"),
];

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Time-series metrics.
    pub metrics: MetricsLog,
    /// Final per-cluster scheduler statistics.
    pub cluster_stats: Vec<SchedulerStats>,
    /// Final mean utilization per cluster over the whole run.
    pub cluster_utilization: Vec<f64>,
    /// Core capacity per cluster (weights for grid-wide utilization).
    pub cluster_capacities: Vec<u32>,
    /// Simulated end time, seconds.
    pub end_s: f64,
    /// Events processed (engine observability).
    pub events_processed: u64,
    /// Final telemetry snapshot of each site's registry, in cluster order.
    /// Empty when the scenario ran without telemetry.
    pub site_telemetry: Vec<Snapshot>,
    /// Final snapshot of the engine's own registry (epoch spans).
    /// `None` when the scenario ran without telemetry.
    pub engine_telemetry: Option<Snapshot>,
    /// Each site's final raw per-user view of grid usage (local + merged
    /// remote), in cluster order — what the chaos suite's convergence
    /// invariant compares against a fault-free run.
    pub site_usage_views: Vec<BTreeMap<GridUser, f64>>,
    /// Each site's bounded span store at the end of the run, in cluster
    /// order. `SpanTree::assemble` merges them into end-to-end causal trees.
    /// Empty per site unless the scenario enabled tracing.
    pub site_spans: Vec<Vec<SpanRecord>>,
    /// Each site's captured decision provenance, in cluster order. Empty
    /// per site unless the scenario enabled provenance capture.
    pub site_provenance: Vec<Vec<ProvenanceRecord>>,
    /// JSONL flight records dumped by the anomaly detector, in detection
    /// order. Empty without a configured flight recorder.
    pub flight_records: Vec<String>,
    /// Each site's durable-store health counters (cumulative across crash
    /// incarnations), in cluster order. `None` per site unless the scenario
    /// attached a store.
    pub site_store_stats: Vec<Option<StoreStats>>,
    /// The continuous-profiling artifact: per-shard stage accounting,
    /// barrier-wait attribution, queue high-water marks, gossip bytes on
    /// the wire, and the aggregated service stages. `None` unless the
    /// scenario enabled profiling ([`GridScenario::with_profiling`]).
    /// Export with [`RunProfile::to_chrome_trace`] / [`RunProfile::to_folded`].
    pub profile: Option<RunProfile>,
    /// The finalized gossip health report: per-link staleness/bytes/retry
    /// aggregates and the per-depth convergence-lag attribution. `None`
    /// unless the scenario enabled health monitoring
    /// ([`GridScenario::with_health`]). Deterministic at any worker count.
    pub health_report: Option<HealthReport>,
    /// The SLO alert stream: every lifecycle transition
    /// (pending/firing/resolved/cleared) stamped with sim time, in emission
    /// order. Empty unless the scenario enabled health monitoring.
    /// Bit-identical across worker counts.
    pub alerts: Vec<AlertEvent>,
}

impl SimResult {
    /// Total jobs completed across clusters.
    pub fn total_completed(&self) -> u64 {
        self.cluster_stats.iter().map(|s| s.completed).sum()
    }

    /// Total jobs submitted across clusters.
    pub fn total_submitted(&self) -> u64 {
        self.cluster_stats.iter().map(|s| s.submitted).sum()
    }

    /// Grid-wide mean utilization: capacity-weighted mean over clusters, so
    /// heterogeneous fleets (one 544-core site among 40-core sites) report
    /// the true grid-wide busy fraction rather than a per-site average.
    pub fn mean_utilization(&self) -> f64 {
        let total: u64 = self.cluster_capacities.iter().map(|&c| u64::from(c)).sum();
        if total == 0 {
            return 0.0;
        }
        self.cluster_utilization
            .iter()
            .zip(&self.cluster_capacities)
            .map(|(u, &c)| u * c as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Per-user completed usage across all clusters.
    pub fn usage_by_user(&self) -> BTreeMap<GridUser, f64> {
        let mut out: BTreeMap<GridUser, f64> = BTreeMap::new();
        for s in &self.cluster_stats {
            for (u, v) in &s.usage_by_user {
                *out.entry(u.clone()).or_insert(0.0) += v;
            }
        }
        out
    }
}

/// The simulation coordinator.
pub struct GridSimulation {
    scenario: Arc<GridScenario>,
    shards: Vec<Shard>,
    /// The engine's own telemetry domain: epoch spans and event counters,
    /// separate from the per-site registries.
    telemetry: Telemetry,
    /// Handle onto the reference site's registry (shared `Arc`), so the
    /// flight recorder can dump site-0 spans/events from the coordinator
    /// while the shard itself may live on a worker thread.
    site0_telemetry: Telemetry,
    /// The anomaly detector, when the scenario configured one.
    recorder: Option<FlightRecorder>,
}

impl GridSimulation {
    /// Build the grid from a scenario: one shard per site, each owning its
    /// cluster stack, event queue, and fault stream.
    pub fn new(scenario: GridScenario) -> Self {
        let mut clusters: Vec<SimCluster> = scenario
            .clusters
            .iter()
            .enumerate()
            .map(|(i, spec)| SimCluster::new(i, spec, &scenario))
            .collect();
        // Register the reliable-exchange topology: each site delivers to the
        // peers that read global data and expects summaries from the peers
        // that contribute it (participation modes, §IV-A-4).
        let n = clusters.len();
        let overlay = scenario.overlay;
        for (i, cluster) in clusters.iter_mut().enumerate() {
            // Links come from the overlay topology (full mesh by default);
            // participation modes then filter within the linked set. A site
            // expects summaries from linked peers that either contribute
            // their own data or forward others' (overlay interior nodes).
            let nbrs = overlay.neighbors(i, n);
            let tx: Vec<SiteId> = nbrs
                .iter()
                .copied()
                .filter(|&j| scenario.clusters[j].participation.reads_global())
                .map(|j| SiteId(j as u32))
                .collect();
            let rx: Vec<SiteId> = nbrs
                .iter()
                .copied()
                .filter(|&j| {
                    scenario.clusters[j].participation.contributes() || overlay.forwards(j, n)
                })
                .map(|j| SiteId(j as u32))
                .collect();
            cluster.site.configure_exchange(
                &tx,
                &rx,
                scenario.retry,
                scenario.stale_policy,
                scenario.seed,
            );
            cluster.site.uss.set_forwarding(overlay.forwards(i, n));
        }
        let telemetry = if scenario.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        let recorder = scenario.flight.map(FlightRecorder::new);
        let site0_telemetry = clusters
            .first()
            .map(|c| c.telemetry.clone())
            .unwrap_or_else(Telemetry::disabled);
        let scenario = Arc::new(scenario);
        let spec = Arc::new(SampleSpec::from_scenario(&scenario));
        // One run-start instant shared by every shard profiler, so all
        // trace spans land on a single wall-clock timeline.
        let origin = Instant::now();
        let shards = clusters
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let prof = ShardProfiler::new(i, scenario.profile, origin);
                Shard::new(i, c, Arc::clone(&scenario), Arc::clone(&spec), prof)
            })
            .collect();
        Self {
            scenario,
            shards,
            telemetry,
            site0_telemetry,
            recorder,
        }
    }

    /// Run the trace through the grid, continuing `drain_s` seconds past the
    /// last submission so queued work completes.
    pub fn run(mut self, trace: &Trace, drain_s: f64) -> SimResult {
        let end_s = trace.last_submit() + drain_s;
        let mut metrics = MetricsLog::new(self.scenario.tracked_users().into_iter().collect());

        // Pre-route every arrival to its shard, consuming the dispatcher in
        // submission-time order (ties by trace index) — the exact order the
        // serial event loop popped arrivals in, so placement is unchanged.
        let mut dispatcher = Dispatcher::new(
            self.scenario.routing,
            &self.scenario.capacities(),
            self.scenario.seed,
        );
        let jobs = trace.jobs();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .submit_s
                .total_cmp(&jobs[b].submit_s)
                .then(a.cmp(&b))
        });
        for idx in order {
            let job = &jobs[idx];
            if job.submit_s > end_s {
                break;
            }
            let target = dispatcher.pick();
            self.shards[target]
                .queue
                .push(job.submit_s, Event::JobArrival(job.clone()));
            metrics.count_submission(job.submit_s);
        }
        for shard in &mut self.shards {
            shard.queue.push(0.0, Event::ClusterTick);
        }

        let h_epoch = self.telemetry.histogram("aequus_sim_event_s");
        let c_samples = self.telemetry.counter("aequus_sim_metrics_samples_total");
        let lookahead = if self.scenario.timings.exchange_latency_s > 0.0 {
            self.scenario.timings.exchange_latency_s
        } else {
            self.scenario.tick_interval_s.max(1e-9)
        };
        let schedule = EpochSchedule::new(end_s, lookahead, self.scenario.sample_interval_s);
        let total_cores = self.scenario.total_cores();
        let tracked = self.scenario.tracked_users();
        let mut recorder = self.recorder.take();
        let mut flight_records: Vec<String> = Vec::new();
        let site0_telemetry = self.site0_telemetry.clone();

        // Fairness-health monitoring: resolve auto thresholds from the
        // scenario's cadences, then fix the rule set up front — fairness and
        // starvation per tracked user, the grid-wide divergence and
        // convergence-lag rules, and one staleness rule per directed overlay
        // link. A fixed rule set means a fixed observation order, so the
        // alert stream is bit-identical at any worker count.
        let n_sites = self.scenario.clusters.len();
        let mut health_links: Vec<(u32, u32)> = Vec::new();
        if self.scenario.health.is_some() {
            for i in 0..n_sites {
                for j in self.scenario.overlay.neighbors(i, n_sites) {
                    if self.scenario.clusters[j].participation.reads_global() {
                        health_links.push((i as u32, j as u32));
                    }
                }
            }
        }
        let mut slo = self.scenario.health.clone().map(|mut cfg| {
            if cfg.staleness_threshold_s <= 0.0 {
                // Three missed delivery opportunities end-to-end.
                cfg.staleness_threshold_s = 3.0
                    * (self.scenario.timings.uss_publish_interval_s
                        + self.scenario.timings.exchange_latency_s
                        + self.scenario.retry.ack_timeout_s);
            }
            if cfg.divergence_threshold <= 0.0 {
                // The structural divergence floor: the biggest site can
                // accrue a full slot of usage locally before a publish +
                // exchange round carries it to the peers.
                let max_cores = self
                    .scenario
                    .clusters
                    .iter()
                    .map(crate::scenario::ClusterSpec::cores)
                    .max()
                    .unwrap_or(1);
                cfg.divergence_threshold = 2.0
                    * f64::from(max_cores)
                    * (self.scenario.usage_slot_s
                        + self.scenario.timings.uss_publish_interval_s
                        + self.scenario.timings.exchange_latency_s);
            }
            let mut rules = Vec::new();
            for (name, _) in &tracked {
                rules.push(SloRule {
                    id: format!("fairness:{name}"),
                    threshold: cfg.fairness_threshold,
                });
            }
            for (name, _) in &tracked {
                rules.push(SloRule {
                    id: format!("starvation:{name}"),
                    threshold: cfg.starvation_age_s,
                });
            }
            rules.push(SloRule {
                id: "divergence".to_string(),
                threshold: cfg.divergence_threshold,
            });
            rules.push(SloRule {
                id: "convergence_lag".to_string(),
                threshold: cfg.convergence_lag_s,
            });
            for &(from, to) in &health_links {
                rules.push(SloRule {
                    id: format!("staleness:{from}->{to}"),
                    threshold: cfg.staleness_threshold_s,
                });
            }
            SloEngine::new(cfg, rules)
        });
        let slo_starv_frac = slo.as_ref().map_or(0.0, |e| e.config().starvation_frac);
        let slo_div_eps = slo
            .as_ref()
            .map_or(0.0, |e| e.config().divergence_threshold);
        // Rule index of each link's staleness value, so the barrier hook
        // fills the value vector with one pass over the observation rows
        // instead of a per-link search.
        let staleness_base = 2 * tracked.len() + 2;
        let link_rule_idx: BTreeMap<(u32, u32), usize> = health_links
            .iter()
            .enumerate()
            .map(|(k, &link)| (link, staleness_base + k))
            .collect();
        let mut health_map = HealthMap::default();
        let mut starvation = StarvationClock::default();
        let mut diverged_since: Option<f64> = None;

        let at_barrier = |now: f64, frags: BarrierFragments| {
            c_samples.inc();
            let suppressed = frags.iter().any(|(_, s)| *s);
            let fragments = frags.into_iter().map(|(f, _)| f).collect();
            let sample = Sample::assemble(now, fragments, total_cores);
            // Feed the flight recorder this barrier's observations; any
            // newly fired anomaly dumps the reference site's retained
            // telemetry as JSONL.
            if let Some(rec) = recorder.as_mut() {
                let mut anomalies = Vec::new();
                for (name, target) in &tracked {
                    let achieved = sample.users.get(name).map(|u| u.usage_share).unwrap_or(0.0);
                    anomalies.extend(rec.observe_user_share(name, achieved, *target, now));
                }
                anomalies.extend(rec.observe_degradation(suppressed, now));
                anomalies.extend(rec.observe_divergence(sample.usage_view_divergence, now));
                for a in anomalies {
                    flight_records.push(dump_jsonl(&a, &site0_telemetry));
                }
            }
            if let Some(engine) = slo.as_mut() {
                health_map.observe_all(&sample.link_health);
                // One value per rule, in the order the rules were built.
                let mut values = Vec::with_capacity(engine.rules().len());
                for (name, target) in &tracked {
                    let achieved = sample.users.get(name).map(|u| u.usage_share).unwrap_or(0.0);
                    values.push((achieved - target).abs());
                }
                for (name, target) in &tracked {
                    let achieved = sample.users.get(name).map(|u| u.usage_share).unwrap_or(0.0);
                    values.push(starvation.age(name, achieved, *target, slo_starv_frac, now));
                }
                values.push(sample.usage_view_divergence);
                // Convergence lag: how long the views have continuously
                // disagreed beyond the divergence threshold.
                if sample.usage_view_divergence > slo_div_eps {
                    diverged_since.get_or_insert(now);
                } else {
                    diverged_since = None;
                }
                values.push(diverged_since.map_or(0.0, |s| now - s));
                // Staleness rules default to 0.0 (no outstanding data),
                // then one pass over the tx rows fills the observed links.
                values.resize(engine.rules().len(), 0.0);
                for o in &sample.link_health {
                    if o.heard_age_s < 0.0 {
                        if let Some(&k) = link_rule_idx.get(&(o.from, o.to)) {
                            values[k] = o.staleness_s;
                        }
                    }
                }
                for ev in engine.observe(now, &values) {
                    if let Some(rec) = recorder.as_mut() {
                        if let Some(a) = rec.observe_alert(&ev.rule, ev.transition, ev.value, now) {
                            flight_records.push(dump_jsonl(&a, &site0_telemetry));
                        }
                    }
                }
            }
            metrics.record(sample);
        };

        let (mut shards, mailbox_hwm) = drive(
            std::mem::take(&mut self.shards),
            self.scenario.num_threads,
            self.scenario.placement,
            schedule,
            end_s,
            &h_epoch,
            self.scenario.debug_barrier_sleep_ns,
            at_barrier,
        );

        // Fold per-shard counters into the engine registry (the serial
        // engine incremented these inline; totals are identical).
        let mut totals = ShardStats::default();
        for shard in &shards {
            totals.merge(&shard.stats);
        }
        self.telemetry
            .counter("aequus_sim_job_arrivals_total")
            .add(totals.arrivals);
        self.telemetry
            .counter("aequus_sim_cluster_ticks_total")
            .add(totals.ticks);
        self.telemetry
            .counter("aequus_sim_gossip_deliveries_total")
            .add(totals.gossip_deliveries);
        self.telemetry
            .counter("aequus_sim_gossip_partitioned_total")
            .add(totals.partitioned);
        self.telemetry
            .counter("aequus_sim_gossip_dropped_total")
            .add(totals.dropped);
        self.telemetry
            .counter("aequus_sim_crashes_total")
            .add(totals.crashes);
        // Queue-depth high-water marks: visible in both exporters via the
        // engine registry, so depth blowups at scale surface long before
        // they become OOMs.
        let queue_hwm = shards
            .iter()
            .map(|s| s.queue.high_water())
            .max()
            .unwrap_or(0) as u64;
        self.telemetry
            .gauge("aequus_sim_event_queue_hwm")
            .set(queue_hwm as f64);
        self.telemetry
            .gauge("aequus_sim_mailbox_hwm")
            .set(mailbox_hwm as f64);
        let events_processed = totals.events + metrics.samples().len() as u64;

        let profile = (self.scenario.profile != ProfileMode::Off).then(|| {
            let mut rp = RunProfile {
                shards: shards
                    .iter()
                    .map(|s| {
                        let mut p = s.prof.to_profile();
                        p.queue_hwm = s.queue.high_water() as u64;
                        // Deterministic event-count stages from the shard's
                        // plain counters — always present, even in Counters
                        // mode, so the folded profile has a full skeleton.
                        for (name, calls) in [
                            ("events.arrivals", s.stats.arrivals),
                            ("events.ticks", s.stats.ticks),
                            ("events.gossip", s.stats.gossip_deliveries),
                            ("gossip.dropped", s.stats.dropped),
                            ("gossip.partitioned", s.stats.partitioned),
                        ] {
                            p.stages.entry(name.to_string()).or_default().calls += calls;
                        }
                        p
                    })
                    .collect(),
                services: BTreeMap::new(),
                mailbox_hwm,
            };
            for shard in &shards {
                let Some(snap) = shard.cluster.telemetry.snapshot() else {
                    continue;
                };
                for (metric, stage) in SERVICE_STAGES {
                    if let Some(h) = snap.histograms.get(*metric) {
                        let e = rp.services.entry((*stage).to_string()).or_default();
                        e.calls += h.count;
                        e.wall_ns = e
                            .wall_ns
                            .saturating_add((h.sum.max(0.0) * 1e9).min(u64::MAX as f64) as u64);
                    }
                }
            }
            rp
        });

        // Finalize the health subsystem: render the per-link report, export
        // the labeled series into the engine registry (both exporters pick
        // them up), and take the full alert log.
        let (health_report, alerts) = match slo {
            Some(engine) => {
                let report = health_map.finalize();
                for link in &report.links {
                    let from = link.from.to_string();
                    let to = link.to.to_string();
                    let depth = link.depth.to_string();
                    let labels = [
                        ("depth", depth.as_str()),
                        ("from", from.as_str()),
                        ("to", to.as_str()),
                    ];
                    self.telemetry
                        .gauge(&series_name("aequus_health_link_staleness_p99_s", &labels))
                        .set(link.staleness_p99_s);
                    self.telemetry
                        .counter(&series_name("aequus_health_link_bytes_total", &labels))
                        .add(link.bytes);
                }
                for d in &report.depths {
                    let depth = d.depth.to_string();
                    self.telemetry
                        .gauge(&series_name(
                            "aequus_health_depth_lag_s",
                            &[("depth", depth.as_str())],
                        ))
                        .set(d.convergence_lag_s);
                }
                let events = engine.into_events();
                let mut transitions: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
                for ev in &events {
                    *transitions
                        .entry((ev.rule.clone(), ev.transition))
                        .or_default() += 1;
                }
                for ((rule, to), count) in transitions {
                    self.telemetry
                        .counter(&series_name(
                            "aequus_slo_alert_transitions_total",
                            &[("rule", &rule), ("to", to)],
                        ))
                        .add(count);
                }
                (Some(report), events)
            }
            None => (None, Vec::new()),
        };

        let cluster_utilization: Vec<f64> = shards
            .iter_mut()
            .map(|s| s.cluster.rms.utilization(end_s))
            .collect();
        SimResult {
            metrics,
            cluster_stats: shards
                .iter()
                .map(|s| s.cluster.rms.stats().clone())
                .collect(),
            cluster_utilization,
            cluster_capacities: self.scenario.capacities(),
            end_s,
            events_processed,
            site_telemetry: shards
                .iter()
                .filter_map(|s| s.cluster.telemetry.snapshot())
                .collect(),
            engine_telemetry: self.telemetry.snapshot(),
            site_usage_views: shards
                .iter()
                .map(|s| s.cluster.site.uss.grid_view())
                .collect(),
            site_spans: shards.iter().map(|s| s.cluster.telemetry.spans()).collect(),
            site_provenance: shards
                .iter()
                .map(|s| s.cluster.telemetry.provenance_records())
                .collect(),
            site_store_stats: shards
                .iter()
                .map(|s| s.cluster.site.store_stats())
                .collect(),
            flight_records,
            profile,
            health_report,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_workload::users::baseline_policy_shares;
    use aequus_workload::TraceJob;

    fn small_scenario() -> GridScenario {
        let mut s = GridScenario::national_testbed(&baseline_policy_shares(), 7);
        // Shrink for unit-test speed: 2 clusters × 4 cores.
        s.clusters.truncate(2);
        for c in &mut s.clusters {
            c.nodes = 4;
        }
        s
    }

    fn uniform_trace(n: usize, spacing: f64, dur: f64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| TraceJob {
                    user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                    submit_s: i as f64 * spacing,
                    duration_s: dur,
                    cores: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn all_jobs_complete() {
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 2000.0);
        assert_eq!(result.total_submitted(), 40);
        assert_eq!(result.total_completed(), 40);
        assert!(result.events_processed > 0);
    }

    #[test]
    fn usage_conservation() {
        // Work completed == work submitted (all jobs single-core).
        let trace = uniform_trace(24, 5.0, 50.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 3000.0);
        let total: f64 = result.usage_by_user().values().sum();
        assert!((total - trace.total_work()).abs() < 1e-6, "{total}");
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = uniform_trace(30, 7.0, 40.0);
        let r1 = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        let r2 = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        assert_eq!(r1.total_completed(), r2.total_completed());
        assert_eq!(r1.metrics.samples().len(), r2.metrics.samples().len());
        for (a, b) in r1.metrics.samples().iter().zip(r2.metrics.samples()) {
            assert_eq!(a.utilization, b.utilization);
            assert_eq!(a.users, b.users);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The tentpole invariant at unit scale: 2 threads over 2 shards must
        // replay the serial run bit-for-bit (the dedicated equivalence suite
        // covers the chaos matrix; this is the smoke check).
        let trace = uniform_trace(40, 7.0, 40.0);
        let serial = GridSimulation::new(small_scenario()).run(&trace, 1500.0);
        let parallel = GridSimulation::new(small_scenario().with_threads(2)).run(&trace, 1500.0);
        assert_eq!(serial.total_completed(), parallel.total_completed());
        assert_eq!(serial.events_processed, parallel.events_processed);
        assert_eq!(serial.site_usage_views, parallel.site_usage_views);
        for (a, b) in serial
            .metrics
            .samples()
            .iter()
            .zip(parallel.metrics.samples())
        {
            assert_eq!(a.users, b.users);
            assert_eq!(a.utilization, b.utilization);
            assert_eq!(a.per_site_priority, b.per_site_priority);
        }
    }

    #[test]
    fn gossip_spreads_usage_between_sites() {
        // All jobs land on cluster 0 (cluster 1 has zero capacity), yet
        // cluster 1 learns the usage through the exchange.
        let mut sc = small_scenario();
        sc.clusters[1].nodes = 0;
        let trace = uniform_trace(16, 5.0, 60.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        let last = result.metrics.samples().last().unwrap();
        // Site 1's tree has non-trivial priorities (it saw remote usage).
        let site1 = &last.per_site_priority[1];
        assert!(
            site1.values().any(|p| p.abs() > 1e-6),
            "site 1 should see remote usage: {site1:?}"
        );
    }

    #[test]
    fn telemetry_tracer_p99_within_configured_pipeline_bound() {
        // Sustained submissions keep libaequus queries flowing long enough
        // for sampled traces to complete the whole delay chain; the measured
        // end-to-end p99 must then respect the §IV-A-2 worst-case bound.
        let sc = small_scenario().with_telemetry();
        let bound = sc.timings.worst_case_pipeline_s();
        let trace = uniform_trace(160, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        assert_eq!(result.site_telemetry.len(), 2, "one snapshot per site");
        let completed: u64 = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.counters.get("aequus_tracer_completed_total"))
            .sum();
        assert!(completed > 0, "some sampled traces must complete");
        for snap in &result.site_telemetry {
            let e2e = match snap.histograms.get("aequus_tracer_end_to_end_s") {
                Some(h) if h.count > 0 => h,
                _ => continue,
            };
            assert!(
                e2e.p99 <= bound * 1.0625 + 1e-9,
                "e2e p99 {} exceeds configured worst case {bound} \
                 (bucket width allows 6.25% overestimate)",
                e2e.p99
            );
            // Each stage histogram exists alongside the end-to-end one.
            for stage in ["report", "publish", "ums", "fcs", "lib"] {
                let name = format!("aequus_tracer_{stage}_delay_s");
                assert!(snap.histograms.contains_key(&name), "missing {name}");
            }
        }
        // The engine registry saw the epoch loop.
        let engine = result.engine_telemetry.expect("engine telemetry on");
        assert!(engine.histograms["aequus_sim_event_s"].count > 0);
        assert!(engine.counters["aequus_sim_cluster_ticks_total"] > 0);
        // Per-sample snapshots ride along in the metrics log.
        let last = result.metrics.samples().last().unwrap();
        assert_eq!(last.site_telemetry.len(), 2);
    }

    #[test]
    fn full_tracing_builds_cross_site_causal_trees() {
        use aequus_core::Explanation;
        use aequus_telemetry::SpanTree;
        let sc = small_scenario().with_full_tracing();
        let trace = uniform_trace(60, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        // Every site holds a span store; merged, they form causal trees
        // whose deepest chain crosses the whole pipeline.
        assert_eq!(result.site_spans.len(), 2);
        assert!(result.site_spans.iter().all(|s| !s.is_empty()));
        let stores: Vec<&[aequus_telemetry::SpanRecord]> =
            result.site_spans.iter().map(Vec::as_slice).collect();
        let trees = SpanTree::assemble(&stores);
        assert!(!trees.is_empty());
        assert!(
            trees.iter().any(|t| t.depth() >= 4),
            "some trace reaches report → ingest → publish → … depth, got {:?}",
            trees.iter().map(SpanTree::depth).max()
        );
        // Gossip linked at least one trace across sites.
        fn sites_of(t: &SpanTree, out: &mut std::collections::BTreeSet<u32>) {
            out.insert(t.record.site);
            for c in &t.children {
                sites_of(c, out);
            }
        }
        let cross_site = trees.iter().any(|t| {
            let mut sites = std::collections::BTreeSet::new();
            sites_of(t, &mut sites);
            sites.len() >= 2
        });
        assert!(cross_site, "no causal tree spans two sites");
        // Every captured explanation replays its served factor bit-for-bit.
        let mut replayed = 0;
        for recs in &result.site_provenance {
            for rec in recs {
                let ex = Explanation::from_json(&rec.json).expect("parseable provenance");
                assert!(ex.verify(), "tampered/lossy capture for {}", rec.user);
                assert_eq!(
                    ex.replay().to_bits(),
                    rec.factor.to_bits(),
                    "replay mismatch for {}",
                    rec.user
                );
                replayed += 1;
            }
        }
        assert!(replayed > 0, "provenance was captured");
    }

    #[test]
    fn flight_recorder_dumps_on_divergence() {
        use aequus_telemetry::flight::AnomalyConfig;
        // One contributing site is partitioned long enough for views to
        // diverge past a tiny threshold → the recorder must fire and the
        // dump must carry events and spans.
        let mut sc = small_scenario()
            .with_full_tracing()
            .with_flight_recorder(AnomalyConfig {
                divergence_threshold: 1e-6,
                ..AnomalyConfig::default()
            });
        sc.faults.outages.push(crate::faults::Outage {
            cluster: 1,
            from_s: 0.0,
            to_s: 4000.0,
        });
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 3000.0);
        assert!(
            !result.flight_records.is_empty(),
            "divergence above threshold must dump a flight record"
        );
        let dump = &result.flight_records[0];
        assert!(dump
            .lines()
            .next()
            .unwrap()
            .contains("\"type\":\"anomaly\""));
        assert!(dump.contains("\"type\":\"span\""), "spans ride along");
    }

    #[test]
    fn durable_store_journals_and_recovers_through_crash() {
        let mut sc = small_scenario().with_durable_store();
        sc.faults.crashes.push(crate::faults::Outage {
            cluster: 1,
            from_s: 400.0,
            to_s: 700.0,
        });
        let trace = uniform_trace(40, 10.0, 30.0);
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        assert_eq!(result.site_store_stats.len(), 2);
        let s1 = result.site_store_stats[1].expect("store attached");
        assert!(s1.frames_appended > 0, "{s1:?}");
        assert_eq!(s1.torn_tails, 1, "one crash, one torn tail: {s1:?}");
        assert!(
            s1.frames_replayed > 0,
            "recovery replayed the journal: {s1:?}"
        );
        // The un-crashed site journals too but never replays.
        let s0 = result.site_store_stats[0].expect("store attached");
        assert_eq!((s0.torn_tails, s0.frames_replayed), (0, 0), "{s0:?}");
    }

    #[test]
    fn store_off_reports_no_stats() {
        let trace = uniform_trace(8, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 500.0);
        assert!(result.site_store_stats.iter().all(Option::is_none));
    }

    #[test]
    fn telemetry_off_yields_no_snapshots() {
        let trace = uniform_trace(8, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 1000.0);
        assert!(result.site_telemetry.is_empty());
        assert!(result.engine_telemetry.is_none());
        assert!(result
            .metrics
            .samples()
            .iter()
            .all(|s| s.site_telemetry.is_empty()));
    }

    #[test]
    fn utilization_reported_in_unit_range() {
        let trace = uniform_trace(60, 2.0, 100.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 4000.0);
        for s in result.metrics.samples() {
            assert!((0.0..=1.0).contains(&s.utilization));
        }
        assert!(result.mean_utilization() > 0.0);
    }

    #[test]
    fn profiled_run_assembles_run_profile() {
        let trace = uniform_trace(40, 10.0, 30.0);
        let sc = small_scenario().with_profiling(ProfileMode::Counters);
        assert!(sc.telemetry, "profiling implies telemetry");
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        let profile = result.profile.expect("profile assembled");
        assert_eq!(profile.shards.len(), 2);
        for sp in &profile.shards {
            assert!(sp.stages["events.ticks"].calls > 0);
            assert!(sp.stages["gossip.wire"].bytes > 0, "wire bytes accounted");
            assert!(!sp.link_bytes.is_empty(), "per-link budget present");
            assert!(sp.queue_hwm > 0);
            assert!(sp.spans.is_empty(), "no span ring in Counters mode");
        }
        assert!(profile.services["uss.ingest"].calls > 0);
        assert!(profile.services["gossip.merge"].calls > 0);
        assert!(profile.mailbox_hwm > 0);
        // The hwm gauges ride the engine registry into both exporters.
        let engine = result.engine_telemetry.expect("telemetry on");
        assert!(engine.gauges["aequus_sim_event_queue_hwm"] > 0.0);
        assert!(engine.gauges["aequus_sim_mailbox_hwm"] > 0.0);
    }

    #[test]
    fn unprofiled_run_has_no_profile() {
        let trace = uniform_trace(8, 10.0, 30.0);
        let result = GridSimulation::new(small_scenario()).run(&trace, 500.0);
        assert!(result.profile.is_none());
    }

    #[test]
    fn health_monitoring_yields_report_and_quiet_alerts() {
        use aequus_telemetry::SloConfig;
        let trace = uniform_trace(40, 10.0, 30.0);
        // An 8-core grid needs a longer fairness warmup than the default:
        // with so few cores the first completions swing shares for ~10 min.
        let cfg = SloConfig {
            warmup_s: 600.0,
            ..SloConfig::default()
        };
        let sc = small_scenario().with_health(cfg.clone());
        let result = GridSimulation::new(sc).run(&trace, 2000.0);
        let report = result.health_report.expect("health report assembled");
        assert_eq!(report.links.len(), 2, "both directed links observed");
        assert_eq!(report.depths.len(), 1, "full mesh is one depth class");
        assert!(report.links.iter().all(|l| l.bytes > 0 && l.msgs > 0));
        // Fault-free: nothing fires (early pendings may clear, never fire).
        assert!(
            result.alerts.iter().all(|a| a.transition != "firing"),
            "{:?}",
            result.alerts
        );
        // The report and alert stream are worker-count invariant.
        let par = GridSimulation::new(small_scenario().with_health(cfg).with_threads(2))
            .run(&trace, 2000.0);
        assert_eq!(
            par.health_report.expect("report").to_json(),
            report.to_json()
        );
        assert_eq!(par.alerts, result.alerts);
        // Health off leaves both fields empty.
        let off = GridSimulation::new(small_scenario()).run(&trace, 2000.0);
        assert!(off.health_report.is_none() && off.alerts.is_empty());
    }

    #[test]
    fn mean_utilization_is_capacity_weighted() {
        // A big busy cluster and a tiny idle one: the plain mean would say
        // 50%; the capacity-weighted truth is ~99%.
        let result = SimResult {
            metrics: MetricsLog::default(),
            cluster_stats: vec![],
            cluster_utilization: vec![0.99, 0.0],
            cluster_capacities: vec![990, 10],
            end_s: 0.0,
            events_processed: 0,
            site_telemetry: vec![],
            engine_telemetry: None,
            site_usage_views: vec![],
            site_spans: vec![],
            site_provenance: vec![],
            flight_records: vec![],
            site_store_stats: vec![],
            profile: None,
            health_report: None,
            alerts: vec![],
        };
        assert!((result.mean_utilization() - 0.9801).abs() < 1e-12);
    }
}
