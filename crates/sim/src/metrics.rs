//! Time-series metrics: the quantities the paper's evaluation figures plot —
//! per-user priority (fairshare distance) and combined usage share over
//! time, system utilization, throughput, and convergence times.
//!
//! Since the sharded engine, one global [`Sample`] is assembled at each
//! sampling barrier from per-shard [`ShardSample`] fragments, merged
//! deterministically in site order — so an N-thread run logs bit-identical
//! metrics to the single-threaded run.

use aequus_core::GridUser;
use aequus_services::LinkObservation;
use std::collections::BTreeMap;

/// Per-user state at one sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserSample {
    /// Fairshare distance ("priority" in Figures 10/12/13b).
    pub priority: f64,
    /// Usage share as seen by the fairshare system (Figures 10a/12/13a).
    pub usage_share: f64,
    /// Projected `[0, 1]` priority factor served to the RMS.
    pub factor: f64,
}

/// One metrics sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Per-user state at the reference site (site 0).
    pub users: BTreeMap<String, UserSample>,
    /// Per-site per-user priority (for partial-participation comparisons).
    pub per_site_priority: Vec<BTreeMap<String, f64>>,
    /// Instantaneous total utilization across all clusters.
    pub utilization: f64,
    /// Total pending jobs across clusters.
    pub pending: usize,
    /// Total running jobs across clusters.
    pub running: usize,
    /// Cumulative completed jobs.
    pub completed: u64,
    /// Cumulative FCS refreshes across sites that rebuilt the fairshare
    /// tree from scratch.
    pub fcs_full_refreshes: u64,
    /// Cumulative FCS refreshes served by the incremental engine.
    pub fcs_incremental_refreshes: u64,
    /// Cumulative subtree-aggregate recomputations across all sites — the
    /// work metric the incremental engine minimizes.
    pub fcs_nodes_recomputed: u64,
    /// Maximum over users of the spread (max − min) of raw per-user grid
    /// usage across the global-reading, non-crashed sites' USS views — the
    /// fault-recovery metric: `0` means every site agrees on everyone's
    /// usage, and after faults clear the anti-entropy layer must drive it
    /// back toward `0`. `0` when fewer than two sites hold comparable views.
    pub usage_view_divergence: f64,
    /// Cumulative gossip bytes-on-wire across all sites at this sample —
    /// the codec-accurate encoded size of every exchange message sent so
    /// far (under the scenario's wire encoding).
    pub gossip_bytes: u64,
    /// Per-site telemetry registry snapshots, in cluster order. Empty when
    /// the scenario runs without telemetry.
    pub site_telemetry: Vec<aequus_telemetry::Snapshot>,
    /// Per-link gossip health observations across all sites, in site order
    /// (tx rows then rx rows per site). Empty unless the scenario runs
    /// health monitoring.
    pub link_health: Vec<LinkObservation>,
}

/// One shard's contribution to a metrics sample, gathered locally at a
/// sampling barrier. Fragments are pure data — no locks, no shared state —
/// so shards can produce them in parallel; the coordinator merges them in
/// site order with [`Sample::assemble`].
#[derive(Debug, Clone, Default)]
pub struct ShardSample {
    /// Per-user state from the reference site's fairshare tree. Only the
    /// shard hosting site 0 fills this; every other shard leaves it empty.
    pub users: BTreeMap<String, UserSample>,
    /// Tracked-user priorities from this shard's own fairshare tree.
    pub site_priority: BTreeMap<String, f64>,
    /// Cores busy on this shard's cluster right now.
    pub busy_cores: u32,
    /// Jobs pending on this shard's cluster.
    pub pending: usize,
    /// Jobs running on this shard's cluster.
    pub running: usize,
    /// Jobs completed by this shard's cluster so far.
    pub completed: u64,
    /// Cumulative from-scratch FCS refreshes on this shard's site.
    pub fcs_full_refreshes: u64,
    /// Cumulative incremental FCS refreshes on this shard's site.
    pub fcs_incremental_refreshes: u64,
    /// Cumulative FCS subtree-aggregate recomputations on this shard's site.
    pub fcs_nodes_recomputed: u64,
    /// This site's raw per-user grid-usage view, when it participates in the
    /// divergence metric (reads global data and is not crashed); `None`
    /// otherwise.
    pub usage_view: Option<BTreeMap<GridUser, f64>>,
    /// Cumulative gossip bytes this site has put on the wire.
    pub gossip_bytes: u64,
    /// This site's telemetry registry snapshot, when telemetry is on.
    pub telemetry: Option<aequus_telemetry::Snapshot>,
    /// This site's per-link gossip health observations (empty unless the
    /// scenario runs health monitoring).
    pub link_health: Vec<LinkObservation>,
}

impl Sample {
    /// Merge per-shard fragments (in site order) into one global sample —
    /// the same sums, divergence, and utilization the single-queue engine
    /// computed inline. Deterministic: the result depends only on the
    /// fragments and their order, never on which worker produced which.
    pub fn assemble(t_s: f64, fragments: Vec<ShardSample>, total_cores: u32) -> Self {
        let mut users = BTreeMap::new();
        let mut per_site_priority = Vec::with_capacity(fragments.len());
        let mut busy: u32 = 0;
        let mut pending = 0usize;
        let mut running = 0usize;
        let mut completed = 0u64;
        let mut fcs_full = 0u64;
        let mut fcs_inc = 0u64;
        let mut fcs_nodes = 0u64;
        let mut views: Vec<BTreeMap<GridUser, f64>> = Vec::new();
        let mut gossip_bytes = 0u64;
        let mut site_telemetry = Vec::new();
        let mut link_health = Vec::new();
        for frag in fragments {
            if !frag.users.is_empty() {
                users = frag.users;
            }
            per_site_priority.push(frag.site_priority);
            busy += frag.busy_cores;
            pending += frag.pending;
            running += frag.running;
            completed += frag.completed;
            fcs_full += frag.fcs_full_refreshes;
            fcs_inc += frag.fcs_incremental_refreshes;
            fcs_nodes += frag.fcs_nodes_recomputed;
            if let Some(view) = frag.usage_view {
                views.push(view);
            }
            gossip_bytes += frag.gossip_bytes;
            if let Some(snap) = frag.telemetry {
                site_telemetry.push(snap);
            }
            link_health.extend(frag.link_health);
        }
        Self {
            t_s,
            users,
            per_site_priority,
            utilization: busy as f64 / total_cores.max(1) as f64,
            pending,
            running,
            completed,
            fcs_full_refreshes: fcs_full,
            fcs_incremental_refreshes: fcs_inc,
            fcs_nodes_recomputed: fcs_nodes,
            usage_view_divergence: view_divergence(&views),
            gossip_bytes,
            site_telemetry,
            link_health,
        }
    }
}

/// Largest per-user spread (max − min) across the given usage views; `0`
/// when fewer than two views are comparable.
fn view_divergence(views: &[BTreeMap<GridUser, f64>]) -> f64 {
    if views.len() < 2 {
        return 0.0;
    }
    let mut divergence = 0.0f64;
    let users: std::collections::BTreeSet<&GridUser> =
        views.iter().flat_map(|v| v.keys()).collect();
    for user in users {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for view in views {
            let v = view.get(user).copied().unwrap_or(0.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        divergence = divergence.max(hi - lo);
    }
    divergence
}

/// The full metrics log of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct MetricsLog {
    samples: Vec<Sample>,
    /// Target policy shares the run was configured with.
    pub policy: BTreeMap<String, f64>,
    /// Jobs submitted per minute (bucketed), for throughput reporting.
    pub submissions_per_minute: Vec<u32>,
}

impl MetricsLog {
    /// Create a log for a run with the given policy targets.
    pub fn new(policy: BTreeMap<String, f64>) -> Self {
        Self {
            samples: Vec::new(),
            policy,
            submissions_per_minute: Vec::new(),
        }
    }

    /// Append a sample.
    pub fn record(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Count one submission at `t_s` into its minute bucket.
    pub fn count_submission(&mut self, t_s: f64) {
        let minute = (t_s / 60.0).floor().max(0.0) as usize;
        if self.submissions_per_minute.len() <= minute {
            self.submissions_per_minute.resize(minute + 1, 0);
        }
        self.submissions_per_minute[minute] += 1;
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Time series of one user's priority.
    pub fn priority_series(&self, user: &str) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| s.users.get(user).map(|u| (s.t_s, u.priority)))
            .collect()
    }

    /// Time series of one user's usage share.
    pub fn usage_share_series(&self, user: &str) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| s.users.get(user).map(|u| (s.t_s, u.usage_share)))
            .collect()
    }

    /// Maximum deviation of any user's usage share from its policy target
    /// at sample index `i`.
    fn deviation_at(&self, i: usize) -> f64 {
        let s = &self.samples[i];
        self.policy
            .iter()
            .map(|(user, target)| {
                let share = s.users.get(user).map(|u| u.usage_share).unwrap_or(0.0);
                (share - target).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Convergence time: the earliest sample time `t` such that the maximum
    /// policy deviation stays below `eps` throughout `[t, t + dwell_s]`.
    ///
    /// The paper reports balance as *windows*, not a permanent state ("the
    /// system converges towards a balanced state between minute 80 and
    /// minute 130", §IV-A-5; "close to balance in the 120 to 180 minute
    /// range", §IV-A-3) — workload non-stationarity moves the system out of
    /// balance again when a user's jobs dry up.
    pub fn convergence_time(&self, eps: f64, dwell_s: f64) -> Option<f64> {
        self.balance_windows(eps)
            .into_iter()
            .find(|(from, to)| to - from >= dwell_s)
            .map(|(from, _)| from)
    }

    /// All maximal time windows during which the maximum policy deviation
    /// stays below `eps`.
    pub fn balance_windows(&self, eps: f64) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let mut start: Option<f64> = None;
        for i in 0..self.samples.len() {
            let balanced = self.deviation_at(i) < eps;
            match (balanced, start) {
                (true, None) => start = Some(self.samples[i].t_s),
                (false, Some(s)) => {
                    windows.push((s, self.samples[i].t_s));
                    start = None;
                }
                _ => {}
            }
        }
        if let (Some(s), Some(last)) = (start, self.samples.last()) {
            windows.push((s, last.t_s));
        }
        windows
    }

    /// Like `deviation_at`, but users that are currently *idle* (usage share
    /// below `activity_eps`) are excluded and the remaining targets are
    /// renormalized — the paper's balance notion for the bursty test, where
    /// "the unused allocation of U3 is divided between the other users"
    /// while U3 is not submitting.
    fn renormalized_deviation_at(&self, i: usize, activity_eps: f64) -> f64 {
        let s = &self.samples[i];
        let active: Vec<(&String, f64)> = self
            .policy
            .iter()
            .filter_map(|(user, &target)| {
                let share = s.users.get(user).map(|u| u.usage_share).unwrap_or(0.0);
                (share >= activity_eps).then_some((user, target))
            })
            .collect();
        let target_total: f64 = active.iter().map(|(_, t)| t).sum();
        let share_total: f64 = active
            .iter()
            .map(|(u, _)| s.users.get(*u).map(|x| x.usage_share).unwrap_or(0.0))
            .sum();
        if target_total <= 0.0 || share_total <= 0.0 {
            return 1.0;
        }
        active
            .iter()
            .map(|(user, target)| {
                let share = s.users.get(*user).map(|u| u.usage_share).unwrap_or(0.0);
                (share / share_total - target / target_total).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Balance windows under the renormalized (idle-users-excluded)
    /// deviation — the §IV-A-5 notion of balance.
    pub fn active_balance_windows(&self, eps: f64) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let mut start: Option<f64> = None;
        for i in 0..self.samples.len() {
            let balanced = self.renormalized_deviation_at(i, 0.005) < eps;
            match (balanced, start) {
                (true, None) => start = Some(self.samples[i].t_s),
                (false, Some(s)) => {
                    windows.push((s, self.samples[i].t_s));
                    start = None;
                }
                _ => {}
            }
        }
        if let (Some(s), Some(last)) = (start, self.samples.last()) {
            windows.push((s, last.t_s));
        }
        windows
    }

    /// Convergence time under the renormalized deviation.
    pub fn active_convergence_time(&self, eps: f64, dwell_s: f64) -> Option<f64> {
        self.active_balance_windows(eps)
            .into_iter()
            .find(|(from, to)| to - from >= dwell_s)
            .map(|(from, _)| from)
    }

    /// Maximum policy deviation in the final sample.
    pub fn final_deviation(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.deviation_at(self.samples.len() - 1)
        }
    }

    /// Mean utilization over the sampled window.
    pub fn mean_utilization(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.utilization).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak jobs-per-minute submission rate.
    pub fn peak_submission_rate(&self) -> u32 {
        self.submissions_per_minute
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Sustained (mean over non-empty minutes) submission rate.
    pub fn sustained_submission_rate(&self) -> f64 {
        let busy: Vec<u32> = self
            .submissions_per_minute
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        if busy.is_empty() {
            0.0
        } else {
            busy.iter().map(|&c| c as f64).sum::<f64>() / busy.len() as f64
        }
    }

    /// Completed jobs at the end of the run.
    pub fn total_completed(&self) -> u64 {
        self.samples.last().map(|s| s.completed).unwrap_or(0)
    }

    /// Time series of the cross-site usage-view divergence.
    pub fn view_divergence_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.t_s, s.usage_view_divergence))
            .collect()
    }

    /// Time series of cumulative gossip bytes-on-wire.
    pub fn gossip_bytes_series(&self) -> Vec<(f64, u64)> {
        self.samples
            .iter()
            .map(|s| (s.t_s, s.gossip_bytes))
            .collect()
    }

    /// Total gossip bytes-on-wire at the end of the run.
    pub fn total_gossip_bytes(&self) -> u64 {
        self.samples.last().map(|s| s.gossip_bytes).unwrap_or(0)
    }

    /// Earliest sample time from which the cross-site usage views stay
    /// within `eps` of each other through the end of the run — the
    /// convergence-after-fault time the chaos suite and fault-sweep bench
    /// report. `None` if even the final sample diverges.
    pub fn view_convergence_time(&self, eps: f64) -> Option<f64> {
        let mut from = None;
        for s in self.samples.iter().rev() {
            if s.usage_view_divergence < eps {
                from = Some(s.t_s);
            } else {
                break;
            }
        }
        from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, share_a: f64) -> Sample {
        let mut users = BTreeMap::new();
        users.insert(
            "a".to_string(),
            UserSample {
                priority: 0.0,
                usage_share: share_a,
                factor: 0.5,
            },
        );
        Sample {
            t_s: t,
            users,
            per_site_priority: vec![],
            utilization: 0.95,
            pending: 0,
            running: 0,
            completed: 10,
            fcs_full_refreshes: 0,
            fcs_incremental_refreshes: 0,
            fcs_nodes_recomputed: 0,
            usage_view_divergence: 0.0,
            gossip_bytes: 0,
            site_telemetry: vec![],
            link_health: vec![],
        }
    }

    fn log_with_shares(shares: &[f64]) -> MetricsLog {
        let mut log = MetricsLog::new([("a".to_string(), 0.5)].into_iter().collect());
        for (i, &s) in shares.iter().enumerate() {
            log.record(sample(i as f64 * 60.0, s));
        }
        log
    }

    #[test]
    fn convergence_finds_first_long_enough_window() {
        // Deviations: .3 .2 .04 .15 .03 .02 — windows: [120,180), [240,300].
        let log = log_with_shares(&[0.8, 0.7, 0.54, 0.65, 0.53, 0.52]);
        assert_eq!(log.convergence_time(0.05, 60.0), Some(120.0));
        assert_eq!(log.convergence_time(0.05, 61.0), None);
        assert_eq!(
            log.balance_windows(0.05),
            vec![(120.0, 180.0), (240.0, 300.0)]
        );
    }

    #[test]
    fn no_convergence_when_always_deviant() {
        let log = log_with_shares(&[0.8, 0.7, 0.9]);
        assert_eq!(log.convergence_time(0.05, 0.0), None);
        assert!(log.balance_windows(0.05).is_empty());
        assert!((log.final_deviation() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn immediate_convergence() {
        let log = log_with_shares(&[0.5, 0.51, 0.49]);
        assert_eq!(log.convergence_time(0.05, 100.0), Some(0.0));
        assert_eq!(log.balance_windows(0.05), vec![(0.0, 120.0)]);
    }

    #[test]
    fn submission_rate_buckets() {
        let mut log = MetricsLog::new(BTreeMap::new());
        for i in 0..130 {
            log.count_submission(i as f64); // 60 in min 0, 60 in min 1, 10 in min 2
        }
        assert_eq!(log.peak_submission_rate(), 60);
        assert!((log.sustained_submission_rate() - 130.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn series_extraction() {
        let log = log_with_shares(&[0.6, 0.55]);
        let s = log.usage_share_series("a");
        assert_eq!(s, vec![(0.0, 0.6), (60.0, 0.55)]);
        assert!(log.usage_share_series("ghost").is_empty());
    }

    #[test]
    fn renormalized_deviation_excludes_idle_users() {
        // Two users, targets 0.5/0.5; "b" idle (share 0), "a" takes all.
        // Plain deviation = 0.5; renormalized over active users = 0.
        let mut log = MetricsLog::new(
            [("a".to_string(), 0.5), ("b".to_string(), 0.5)]
                .into_iter()
                .collect(),
        );
        let mut users = BTreeMap::new();
        users.insert(
            "a".to_string(),
            UserSample {
                priority: 0.0,
                usage_share: 1.0,
                factor: 0.5,
            },
        );
        users.insert(
            "b".to_string(),
            UserSample {
                priority: 0.5,
                usage_share: 0.0,
                factor: 0.9,
            },
        );
        log.record(Sample {
            t_s: 0.0,
            users,
            per_site_priority: vec![],
            utilization: 1.0,
            pending: 0,
            running: 1,
            completed: 0,
            fcs_full_refreshes: 0,
            fcs_incremental_refreshes: 0,
            fcs_nodes_recomputed: 0,
            usage_view_divergence: 0.0,
            gossip_bytes: 0,
            site_telemetry: vec![],
            link_health: vec![],
        });
        assert!(log.balance_windows(0.1).is_empty());
        assert_eq!(log.active_balance_windows(0.1), vec![(0.0, 0.0)]);
        assert_eq!(log.active_convergence_time(0.1, 0.0), Some(0.0));
    }

    #[test]
    fn assemble_merges_fragments_in_site_order() {
        let mut ref_users = BTreeMap::new();
        ref_users.insert(
            "a".to_string(),
            UserSample {
                priority: 0.1,
                usage_share: 0.6,
                factor: 0.4,
            },
        );
        let f0 = ShardSample {
            users: ref_users.clone(),
            site_priority: [("a".to_string(), 0.1)].into_iter().collect(),
            busy_cores: 3,
            pending: 1,
            running: 3,
            completed: 10,
            fcs_full_refreshes: 2,
            fcs_incremental_refreshes: 5,
            fcs_nodes_recomputed: 9,
            usage_view: Some([(GridUser::new("a"), 100.0)].into_iter().collect()),
            gossip_bytes: 70,
            telemetry: None,
            link_health: vec![],
        };
        let f1 = ShardSample {
            site_priority: [("a".to_string(), -0.2)].into_iter().collect(),
            busy_cores: 1,
            pending: 2,
            running: 1,
            completed: 4,
            fcs_full_refreshes: 1,
            fcs_incremental_refreshes: 3,
            fcs_nodes_recomputed: 4,
            usage_view: Some([(GridUser::new("a"), 94.0)].into_iter().collect()),
            gossip_bytes: 30,
            ..ShardSample::default()
        };
        let s = Sample::assemble(120.0, vec![f0, f1], 8);
        assert_eq!(s.t_s, 120.0);
        assert_eq!(s.users, ref_users, "reference-site users survive merge");
        assert_eq!(s.per_site_priority.len(), 2);
        assert_eq!(s.per_site_priority[1]["a"], -0.2);
        assert!((s.utilization - 0.5).abs() < 1e-12);
        assert_eq!((s.pending, s.running, s.completed), (3, 4, 14));
        assert_eq!(s.fcs_full_refreshes, 3);
        assert_eq!(s.fcs_incremental_refreshes, 8);
        assert_eq!(s.fcs_nodes_recomputed, 13);
        assert!((s.usage_view_divergence - 6.0).abs() < 1e-12);
        assert_eq!(s.gossip_bytes, 100);
    }

    #[test]
    fn assemble_divergence_zero_with_single_view() {
        let f = ShardSample {
            usage_view: Some([(GridUser::new("a"), 50.0)].into_iter().collect()),
            ..ShardSample::default()
        };
        let s = Sample::assemble(0.0, vec![f, ShardSample::default()], 4);
        assert_eq!(s.usage_view_divergence, 0.0);
    }

    #[test]
    fn empty_log_safe() {
        let log = MetricsLog::new(BTreeMap::new());
        assert_eq!(log.convergence_time(0.1, 60.0), None);
        assert_eq!(log.mean_utilization(), 0.0);
        assert_eq!(log.total_completed(), 0);
    }
}
