//! Grid-level job dispatch from the submission host to the clusters.
//!
//! §IV-A: "Both stochastic and round-robin scheduling of jobs from the
//! submitting node to the clusters have been evaluated without any
//! noticeable difference, and the stochastic approach is used during the
//! testing."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the submission host routes jobs to clusters (grid-level routing —
/// distinct from the per-cluster queue dispatch order in
/// [`aequus_rms::dispatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Pick a cluster uniformly at random (capacity-weighted).
    Stochastic,
    /// Cycle through clusters in order (capacity-weighted by repetition).
    RoundRobin,
}

/// Stateful dispatcher choosing a cluster index per job.
#[derive(Debug)]
pub struct Dispatcher {
    policy: RoutingPolicy,
    /// Per-cluster capacity weights (core counts).
    weights: Vec<u32>,
    total_weight: u64,
    rng: StdRng,
    rr_cursor: u64,
}

impl Dispatcher {
    /// Create a dispatcher over clusters with the given capacities.
    pub fn new(policy: RoutingPolicy, capacities: &[u32], seed: u64) -> Self {
        assert!(!capacities.is_empty(), "need at least one cluster");
        assert!(
            capacities.iter().any(|&c| c > 0),
            "at least one cluster must have capacity"
        );
        Self {
            policy,
            weights: capacities.to_vec(),
            total_weight: capacities.iter().map(|&c| c as u64).sum(),
            rng: StdRng::seed_from_u64(seed),
            rr_cursor: 0,
        }
    }

    /// Choose the cluster index for the next job.
    pub fn pick(&mut self) -> usize {
        match self.policy {
            RoutingPolicy::Stochastic => {
                let mut x = self.rng.gen_range(0..self.total_weight);
                for (i, &w) in self.weights.iter().enumerate() {
                    if x < w as u64 {
                        return i;
                    }
                    x -= w as u64;
                }
                self.weights.len() - 1
            }
            RoutingPolicy::RoundRobin => {
                // Capacity-weighted round robin: cluster i gets weight_i of
                // every total_weight consecutive jobs.
                let mut x = self.rr_cursor % self.total_weight;
                self.rr_cursor += 1;
                for (i, &w) in self.weights.iter().enumerate() {
                    if x < w as u64 {
                        return i;
                    }
                    x -= w as u64;
                }
                self.weights.len() - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stochastic_roughly_capacity_weighted() {
        let mut d = Dispatcher::new(RoutingPolicy::Stochastic, &[30, 10], 1);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[d.pick()] += 1;
        }
        let frac = counts[0] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "{frac}");
    }

    #[test]
    fn round_robin_exactly_weighted_per_cycle() {
        let mut d = Dispatcher::new(RoutingPolicy::RoundRobin, &[3, 1], 1);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            counts[d.pick()] += 1;
        }
        assert_eq!(counts, [300, 100]);
    }

    #[test]
    fn deterministic_given_seed() {
        let picks = |seed| {
            let mut d = Dispatcher::new(RoutingPolicy::Stochastic, &[1, 1, 1], seed);
            (0..50).map(|_| d.pick()).collect::<Vec<_>>()
        };
        assert_eq!(picks(9), picks(9));
        assert_ne!(picks(9), picks(10));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_clusters_rejected() {
        Dispatcher::new(RoutingPolicy::Stochastic, &[], 0);
    }
}
