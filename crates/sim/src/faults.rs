//! Failure injection: dropped usage-summary exchanges and site network
//! outages. The paper's partial-participation test (§IV-A-4) motivates these
//! — real deployments lose messages and sites "due to misconfiguration,
//! local policies, or legislation"; here we also inject transport faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A window during which one cluster is cut off from the exchange network
/// (its RMS keeps scheduling on stale data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Cluster index.
    pub cluster: usize,
    /// Outage start, seconds.
    pub from_s: f64,
    /// Outage end, seconds.
    pub to_s: f64,
}

/// Transport fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability of dropping any single summary delivery.
    pub drop_probability: f64,
    /// Site network outage windows.
    pub outages: Vec<Outage>,
    /// Site crash windows: while active, the site's volatile Aequus state
    /// (USS exchange state and remote view, UMS cache, FCS tree) is wiped
    /// and its services stop ticking; the RMS keeps running on degraded
    /// (stale-cache) priorities. Leaving the window triggers recovery:
    /// snapshot catch-up from peers and republication of local history.
    pub crashes: Vec<Outage>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self {
            drop_probability: 0.0,
            outages: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Whether `cluster` is partitioned from the exchange at `now_s`.
    pub fn is_partitioned(&self, cluster: usize, now_s: f64) -> bool {
        self.outages
            .iter()
            .any(|o| o.cluster == cluster && now_s >= o.from_s && now_s < o.to_s)
    }

    /// Whether `cluster` is crashed at `now_s`.
    pub fn is_crashed(&self, cluster: usize, now_s: f64) -> bool {
        self.crashes
            .iter()
            .any(|o| o.cluster == cluster && now_s >= o.from_s && now_s < o.to_s)
    }
}

/// Deterministic coin for message drops.
#[derive(Debug)]
pub struct FaultRng {
    rng: StdRng,
}

impl FaultRng {
    /// Seeded fault source.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive the fault stream of one shard: the scenario seed xor-mixed
    /// with the shard id through a splitmix64 finalizer, so (a) streams of
    /// different shards are decorrelated and (b) a shard's stream depends
    /// only on `(seed, shard)` — never on how many worker threads the run
    /// uses — which is what makes N-thread runs seed-for-seed identical to
    /// the single-threaded run.
    pub fn for_shard(seed: u64, shard: u64) -> Self {
        Self::new(splitmix64(
            seed ^ 0x5EED_u64 ^ (shard.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Whether to drop a delivery under the plan.
    pub fn should_drop(&mut self, plan: &FaultPlan) -> bool {
        plan.drop_probability > 0.0 && self.rng.gen::<f64>() < plan.drop_probability
    }
}

/// splitmix64 finalizer: cheap, well-mixed u64 → u64 hash (public-domain
/// constants from Vigna's reference implementation).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops_or_partitions() {
        let plan = FaultPlan::none();
        let mut rng = FaultRng::new(1);
        assert!(!(0..1000).any(|_| rng.should_drop(&plan)));
        assert!(!plan.is_partitioned(0, 100.0));
    }

    #[test]
    fn outage_window_boundaries() {
        let plan = FaultPlan {
            drop_probability: 0.0,
            outages: vec![Outage {
                cluster: 2,
                from_s: 100.0,
                to_s: 200.0,
            }],
            crashes: vec![],
        };
        assert!(!plan.is_partitioned(2, 99.9));
        assert!(plan.is_partitioned(2, 100.0));
        assert!(plan.is_partitioned(2, 199.9));
        assert!(!plan.is_partitioned(2, 200.0));
        assert!(!plan.is_partitioned(1, 150.0));
    }

    #[test]
    fn crash_windows_are_independent_of_outages() {
        let plan = FaultPlan {
            drop_probability: 0.0,
            outages: vec![Outage {
                cluster: 0,
                from_s: 0.0,
                to_s: 50.0,
            }],
            crashes: vec![Outage {
                cluster: 1,
                from_s: 100.0,
                to_s: 200.0,
            }],
        };
        assert!(plan.is_partitioned(0, 10.0) && !plan.is_crashed(0, 10.0));
        assert!(plan.is_crashed(1, 150.0) && !plan.is_partitioned(1, 150.0));
        assert!(!plan.is_crashed(1, 200.0), "end exclusive");
    }

    #[test]
    fn shard_streams_are_stable_and_decorrelated() {
        let plan = FaultPlan {
            drop_probability: 0.5,
            outages: vec![],
            crashes: vec![],
        };
        let draws = |seed, shard| {
            let mut rng = FaultRng::for_shard(seed, shard);
            (0..64).map(|_| rng.should_drop(&plan)).collect::<Vec<_>>()
        };
        // Same (seed, shard) → same stream; different shard or seed → different.
        assert_eq!(draws(7, 3), draws(7, 3));
        assert_ne!(draws(7, 3), draws(7, 4));
        assert_ne!(draws(7, 3), draws(8, 3));
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let plan = FaultPlan {
            drop_probability: 0.3,
            outages: vec![],
            crashes: vec![],
        };
        let mut rng = FaultRng::new(7);
        let drops = (0..10_000).filter(|_| rng.should_drop(&plan)).count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "{rate}");
    }
}
