//! One simulated cluster: a local RMS (SLURM- or Maui-like) wired to its own
//! Aequus installation, exactly the per-site stack of Figure 2.

use crate::scenario::{ClusterSpec, GridScenario, RmsKind};
use aequus_core::usage::UsageSummary;
use aequus_core::{JobId, SiteId, SystemUser};
use aequus_rms::{
    FactorConfig, FairshareSource, Job, MauiConfig, MauiScheduler, NodePool, SchedulerStats,
    SlurmConfig, SlurmScheduler,
};
use aequus_services::{AequusSite, UssMessage};
use aequus_telemetry::tracer::TracerConfig;
use aequus_telemetry::{SpanConfig, Telemetry};
use aequus_workload::TraceJob;

/// The RMS front end of a cluster.
#[derive(Debug)]
pub enum Rms {
    /// SLURM-like scheduler.
    Slurm(SlurmScheduler),
    /// Maui-like scheduler.
    Maui(MauiScheduler),
}

impl Rms {
    fn submit(&mut self, job: Job, source: &mut dyn FairshareSource, now_s: f64) {
        match self {
            Rms::Slurm(s) => s.submit(job, source, now_s),
            Rms::Maui(m) => m.submit(job, source, now_s),
        }
    }

    fn advance(&mut self, source: &mut dyn FairshareSource, now_s: f64) {
        match self {
            Rms::Slurm(s) => s.advance(source, now_s),
            Rms::Maui(m) => m.advance(source, now_s),
        }
    }

    /// Scheduler statistics.
    pub fn stats(&self) -> &SchedulerStats {
        match self {
            Rms::Slurm(s) => s.stats(),
            Rms::Maui(m) => m.stats(),
        }
    }

    /// Pending queue length.
    pub fn pending(&self) -> usize {
        match self {
            Rms::Slurm(s) => s.core().pending_count(),
            Rms::Maui(m) => m.core().pending_count(),
        }
    }

    /// Running job count.
    pub fn running(&self) -> usize {
        match self {
            Rms::Slurm(s) => s.core().running_count(),
            Rms::Maui(m) => m.core().running_count(),
        }
    }

    /// Mean utilization over `[0, now_s]`.
    pub fn utilization(&mut self, now_s: f64) -> f64 {
        match self {
            Rms::Slurm(s) => s.core_mut().nodes.utilization(now_s),
            Rms::Maui(m) => m.core_mut().nodes.utilization(now_s),
        }
    }
}

/// A cluster of the simulated grid: RMS + Aequus site.
#[derive(Debug)]
pub struct SimCluster {
    /// The local resource manager.
    pub rms: Rms,
    /// The local Aequus installation.
    pub site: AequusSite,
    /// Per-site telemetry domain: every service of this cluster's stack
    /// plus its RMS report into it (disabled unless the scenario opts in).
    pub telemetry: Telemetry,
    next_job: u64,
    /// Walltime-request padding factor applied to trace jobs (scenario
    /// [`GridScenario::request_factor`]).
    request_factor: f64,
}

impl SimCluster {
    /// Build a cluster from its spec within a scenario. Identity mappings
    /// for every policy user are installed in the site's IRS (the unified
    /// name-resolution service of the test bed).
    pub fn new(index: usize, spec: &ClusterSpec, scenario: &GridScenario) -> Self {
        let policy = spec
            .policy_override
            .clone()
            .unwrap_or_else(|| scenario.policy.clone());
        let mut site = AequusSite::new(
            SiteId(index as u32),
            policy.clone(),
            scenario.fairshare,
            scenario.projection,
            scenario.timings,
            spec.participation,
            scenario.usage_slot_s,
        );
        // The test bed's unified name-resolution endpoint: system user
        // "sys-<grid user>" maps back to the grid identity. Register both
        // the grid-wide and any site-local identities.
        for (_, user) in policy.users().into_iter().chain(scenario.policy.users()) {
            site.irs
                .store_mapping(SystemUser::new(format!("sys-{}", user.as_str())), user);
        }
        let nodes = NodePool::new(spec.nodes, spec.cores_per_node);
        let site_id = SiteId(index as u32);
        let telemetry = if !scenario.telemetry {
            Telemetry::disabled()
        } else if scenario.span_sample_every > 0 || scenario.capture_provenance {
            Telemetry::with_full_config(
                TracerConfig::default(),
                256,
                SpanConfig {
                    sample_every: scenario.span_sample_every,
                    site: index as u32,
                    capture_provenance: scenario.capture_provenance,
                    ..SpanConfig::default()
                },
            )
        } else {
            Telemetry::enabled()
        };
        site.set_telemetry(&telemetry);
        if let Some(cfg) = scenario.store {
            // Seed the torn-write junk stream per scenario; the site mixes
            // its id in, so sites stay decorrelated within a run.
            site.enable_store(cfg, scenario.seed);
        }
        let mut rms = match spec.rms {
            RmsKind::Slurm => Rms::Slurm(SlurmScheduler::new(
                site_id,
                nodes,
                SlurmConfig {
                    weights: scenario.weights,
                    factors: FactorConfig::default(),
                    priority_calc_period_s: scenario.tick_interval_s.max(5.0),
                    dispatch: scenario.dispatch,
                },
            )),
            RmsKind::Maui => Rms::Maui(MauiScheduler::new(
                site_id,
                nodes,
                MauiConfig {
                    weights: scenario.weights,
                    factors: FactorConfig::default(),
                    dispatch: scenario.dispatch,
                },
            )),
        };
        match &mut rms {
            Rms::Slurm(s) => s.core_mut().set_telemetry(&telemetry),
            Rms::Maui(m) => m.core_mut().set_telemetry(&telemetry),
        }
        Self {
            rms,
            site,
            telemetry,
            next_job: (index as u64) << 40, // disjoint id spaces per cluster
            request_factor: scenario.request_factor,
        }
    }

    /// Submit a trace job to this cluster at `now_s`. The walltime request
    /// is the true duration scaled by the scenario's `request_factor`.
    pub fn submit(&mut self, job: &TraceJob, now_s: f64) {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let rms_job = Job::new(
            id,
            SystemUser::new(format!("sys-{}", job.user)),
            job.cores,
            now_s,
            job.duration_s,
        )
        .with_request(job.duration_s * self.request_factor);
        self.rms.submit(rms_job, &mut self.site, now_s);
    }

    /// Advance the cluster: Aequus services first (so freshly expired caches
    /// recompute), then the RMS iteration.
    pub fn step(&mut self, now_s: f64) {
        self.site.tick(now_s);
        self.rms.advance(&mut self.site, now_s);
    }

    /// Advance only the RMS while the Aequus stack is crashed: jobs keep
    /// running and completing (their usage reports spool in the site's
    /// pending queue), scheduling continues on the library's degraded
    /// stale-cache priorities.
    pub fn step_rms_only(&mut self, now_s: f64) {
        self.rms.advance(&mut self.site, now_s);
    }

    /// Drain summaries the site produced for its peers.
    pub fn take_outbox(&mut self) -> Vec<UsageSummary> {
        self.site.take_outbox()
    }

    /// Deliver a peer summary at `now_s` (the gossip-merge telemetry event
    /// carries the delivery time).
    pub fn deliver(&mut self, summary: &UsageSummary, now_s: f64) {
        self.site.receive_summary_at(summary, now_s);
    }

    /// Drain every reliable-exchange message the site owes its peers.
    pub fn poll_messages(&mut self, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        self.site.poll_messages(now_s)
    }

    /// Deliver one reliable-exchange message; returns response messages.
    pub fn deliver_msg(&mut self, msg: &UssMessage, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        self.site.deliver_message(msg, now_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::GridUser;
    use aequus_services::ParticipationMode;

    fn scenario() -> GridScenario {
        GridScenario::national_testbed(
            &[
                ("U65", 0.6525),
                ("U30", 0.3049),
                ("U3", 0.0286),
                ("Uoth", 0.0140),
            ],
            1,
        )
    }

    #[test]
    fn cluster_runs_a_job_end_to_end() {
        let sc = scenario();
        let spec = ClusterSpec {
            nodes: 2,
            cores_per_node: 1,
            participation: ParticipationMode::Full,
            rms: RmsKind::Slurm,
            policy_override: None,
        };
        let mut c = SimCluster::new(0, &spec, &sc);
        c.submit(
            &TraceJob {
                user: "U65".to_string(),
                submit_s: 0.0,
                duration_s: 30.0,
                cores: 1,
            },
            0.0,
        );
        c.step(0.0);
        assert_eq!(c.rms.running(), 1);
        // Identity was resolved through the IRS.
        c.step(30.0);
        assert_eq!(c.rms.stats().completed, 1);
        let usage = c.rms.stats().usage_by_user.clone();
        assert!((usage[&GridUser::new("U65")] - 30.0).abs() < 1e-9);
        // After reporting delay + publish interval, a summary goes out.
        for t in [40.0, 80.0, 140.0, 200.0] {
            c.step(t);
        }
        assert!(!c.take_outbox().is_empty(), "usage summary published");
    }

    #[test]
    fn job_ids_disjoint_between_clusters() {
        let sc = scenario();
        let spec = &sc.clusters[0];
        let mut a = SimCluster::new(0, spec, &sc);
        let mut b = SimCluster::new(1, spec, &sc);
        let job = TraceJob {
            user: "U65".to_string(),
            submit_s: 0.0,
            duration_s: 10.0,
            cores: 1,
        };
        a.submit(&job, 0.0);
        b.submit(&job, 0.0);
        a.step(0.0);
        b.step(0.0);
        let ida = a.rms.stats().submitted;
        let idb = b.rms.stats().submitted;
        assert_eq!((ida, idb), (1, 1));
    }
}

#[cfg(test)]
mod policy_override_tests {
    use super::*;
    use crate::scenario::GridScenario;
    use aequus_core::policy::{PolicyNode, PolicyTree};
    use aequus_core::EntityPath;

    #[test]
    fn site_policy_override_is_enforced_locally() {
        // The grid default splits 50/50 between U65 and U30; one site's
        // local administration instead reserves 80% for a local user and
        // mounts the grid users under the remaining 20%.
        let sc = GridScenario::national_testbed(&[("U65", 0.5), ("U30", 0.5)], 1);
        let local_policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::user("local-hpc", 0.8),
                PolicyNode::group(
                    "grid",
                    0.2,
                    vec![PolicyNode::user("U65", 0.5), PolicyNode::user("U30", 0.5)],
                ),
            ],
        ))
        .unwrap();
        let mut spec = sc.clusters[0].clone();
        spec.policy_override = Some(local_policy);
        let c = SimCluster::new(0, &spec, &sc);
        let site_policy = c.site.pds.policy();
        assert!(
            (site_policy
                .absolute_share(&EntityPath::parse("/local-hpc"))
                .unwrap()
                - 0.8)
                .abs()
                < 1e-12
        );
        assert!(
            (site_policy
                .absolute_share(&EntityPath::parse("/grid/U65"))
                .unwrap()
                - 0.1)
                .abs()
                < 1e-12
        );
        // The default-policy site keeps the grid-wide 50/50.
        let default_site = SimCluster::new(1, &sc.clusters[1], &sc);
        assert!(
            (default_site
                .site
                .pds
                .policy()
                .absolute_share(&EntityPath::parse("/U65"))
                .unwrap()
                - 0.5)
                .abs()
                < 1e-12
        );
    }
}
