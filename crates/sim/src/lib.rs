//! # aequus-sim
//!
//! Discrete-event simulation of the fully integrated Aequus deployment —
//! the in-silico counterpart of the paper's test bed (§IV-A): a submission
//! host dispatching synthetic workloads (stochastically or round-robin)
//! onto a fleet of simulated clusters, each running a SLURM- or Maui-like
//! RMS wired to its own Aequus installation, with USS↔USS usage exchange as
//! the only cross-site channel.
//!
//! * [`event`] — deterministic time-ordered event queues (per-shard, plus
//!   the cross-shard mailbox/order contract).
//! * [`dispatch`] — stochastic / round-robin grid-level routing.
//! * [`cluster`] — one cluster: RMS + per-site Aequus stack.
//! * [`scenario`] — fleet/policy/delay configuration, including the paper's
//!   six-cluster national test bed and the HPC2N production shape.
//! * [`metrics`] — the figures' time series (per-user priority and usage
//!   share), utilization, throughput, and convergence detection.
//! * [`faults`] — message drops, site partitions, per-shard fault streams.
//! * [`shard`] — one independently steppable site (queue + stack + RNG).
//! * [`barrier`] — the epoch schedule and the scoped-thread worker pool.
//! * [`engine`] — the thin coordinator tying it together.

#![warn(missing_docs)]

pub mod barrier;
pub mod cluster;
pub mod dispatch;
pub mod engine;
pub mod event;
pub mod faults;
pub mod metrics;
pub mod scenario;
pub mod shard;

pub use dispatch::RoutingPolicy;
pub use engine::{GridSimulation, SimResult};
pub use event::{Event, EventQueue, Mailbox, ShardedQueues};
pub use faults::{FaultPlan, Outage};
pub use metrics::{MetricsLog, Sample, ShardSample, UserSample};
pub use scenario::{ClusterSpec, GridScenario, RmsKind, ShardPlacement};
pub use shard::{Shard, ShardStats};
