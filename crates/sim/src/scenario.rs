//! Scenario definitions: cluster fleets, policies, and all tunables of a
//! simulated grid deployment.

use aequus_core::codec::Encoding;
use aequus_core::fairshare::FairshareConfig;
use aequus_core::policy::{flat_policy, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_rms::{DispatchConfig, PriorityWeights};
use aequus_services::{
    OverlayTopology, ParticipationMode, RetryPolicy, ServiceTimings, StalePolicy, StoreConfig,
};

use crate::dispatch::RoutingPolicy;
use crate::faults::FaultPlan;

/// Which RMS front end a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmsKind {
    /// SLURM-like (plugin integration, periodic re-prioritization).
    Slurm,
    /// Maui-like (patched call-outs, per-iteration re-prioritization).
    Maui,
}

/// One cluster of the simulated grid.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Virtual hosts.
    pub nodes: u32,
    /// Cores per host (the paper's virtual hosts run one job each).
    pub cores_per_node: u32,
    /// Participation in the global usage exchange.
    pub participation: ParticipationMode,
    /// RMS front end.
    pub rms: RmsKind,
    /// Site-local policy override — "local administrations retain control
    /// over their clusters" (§II-A): a site may enforce its own tree (e.g.
    /// local users plus a mounted grid share) instead of the grid-wide
    /// default. Leaves absent from a site's policy get the neutral factor
    /// there.
    pub policy_override: Option<PolicyTree>,
}

impl ClusterSpec {
    /// Total cores.
    pub fn cores(&self) -> u32 {
        self.nodes * self.cores_per_node
    }
}

/// How sites map onto shard-worker threads in the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlacement {
    /// Site `i` goes to worker `i % num_threads` — spreads neighboring
    /// (similarly loaded) sites across workers. The default.
    #[default]
    RoundRobin,
    /// Contiguous blocks of sites per worker — better cache locality when
    /// site state is large and sites are homogeneous.
    Blocked,
}

impl ShardPlacement {
    /// Worker index for `site` among `n_sites` split over `n_workers`.
    /// Placement affects only which thread executes a shard — never the
    /// result: shards carry their own seed streams and queues, so any
    /// placement of any worker count replays identically.
    pub fn worker_for(&self, site: usize, n_sites: usize, n_workers: usize) -> usize {
        let n_workers = n_workers.max(1);
        match self {
            Self::RoundRobin => site % n_workers,
            Self::Blocked => {
                let per = n_sites.div_ceil(n_workers).max(1);
                (site / per).min(n_workers - 1)
            }
        }
    }
}

/// A complete grid scenario.
#[derive(Debug, Clone)]
pub struct GridScenario {
    /// The clusters.
    pub clusters: Vec<ClusterSpec>,
    /// The share policy every site enforces. Usually flat (the paper's
    /// evaluation uses the four model users directly under the root), but
    /// arbitrary hierarchies — including mounted VO subtrees — are
    /// supported end-to-end.
    pub policy: PolicyTree,
    /// Fairshare algorithm configuration (k weight, decay, resolution).
    pub fairshare: FairshareConfig,
    /// Vector→scalar projection ("the percental projection approach is used
    /// during testing").
    pub projection: ProjectionKind,
    /// The §IV-A-2 delay chain.
    pub timings: ServiceTimings,
    /// RMS priority factor weights ("fairshare is the only scheduling
    /// factor used during these tests").
    pub weights: PriorityWeights,
    /// Submission-host routing policy (which cluster gets each job).
    pub routing: RoutingPolicy,
    /// Per-cluster queue dispatch: order (FIFO / EASY / Conservative /
    /// SAF), runtime predictor, and walltime-overrun policy, applied to
    /// every site's RMS.
    pub dispatch: DispatchConfig,
    /// Walltime-request padding: each trace job's request is its true
    /// duration times this factor (1.0 = perfectly honest requests, the
    /// paper's idle-wait test bed; > 1 models the padded requests real
    /// users submit, < 1 models under-requesting).
    pub request_factor: f64,
    /// Cluster advance interval, seconds of simulated time.
    pub tick_interval_s: f64,
    /// Metrics sampling interval, seconds.
    pub sample_interval_s: f64,
    /// USS histogram slot duration, seconds.
    pub usage_slot_s: f64,
    /// RNG seed (dispatch and faults).
    pub seed: u64,
    /// Failure injection.
    pub faults: FaultPlan,
    /// Reliable-exchange retry/backoff/retention configuration.
    pub retry: RetryPolicy,
    /// What sites serve while peer data goes stale (outages, crashes).
    pub stale_policy: StalePolicy,
    /// Enable telemetry: per-site metric registries, stage spans, structured
    /// events, and the end-to-end pipeline-delay tracer. Off by default —
    /// disabled telemetry compiles to no-op handles on every hot path.
    pub telemetry: bool,
    /// Causal-tracing sample rate layered on telemetry: every Nth usage
    /// report roots a cross-site span tree (`0` leaves the span layer wired
    /// but unsampled). Requires `telemetry`.
    pub span_sample_every: u64,
    /// Capture decision provenance (a replayable `Explanation` per traced
    /// served query). Requires `telemetry`.
    pub capture_provenance: bool,
    /// Run a flight recorder over the metrics samples: anomalies (starvation,
    /// stale-policy degradation, view divergence) dump the reference site's
    /// events + spans + explanations as JSONL into the result.
    pub flight: Option<aequus_telemetry::flight::AnomalyConfig>,
    /// Attach a durable per-site store (CRC-framed WAL + checkpoints).
    /// Crashed sites then recover by replaying their own store first and
    /// fall back to anti-entropy catch-up only for the delta; without a
    /// store, recovery relies entirely on peer snapshots.
    pub store: Option<StoreConfig>,
    /// Extra delivery latency for `Snapshot` catch-up messages, seconds —
    /// models hauling a full cumulative snapshot over the wire versus the
    /// compact incremental summaries. `0.0` keeps the legacy behavior
    /// (snapshots as fast as summaries).
    pub snapshot_transfer_s: f64,
    /// Shard-worker threads for the parallel engine. `1` (the default) runs
    /// the epoch loop inline without spawning; any value yields results
    /// seed-for-seed identical to `1` — threads only change wall-clock time.
    pub num_threads: usize,
    /// How sites map onto workers when `num_threads > 1`. Placement never
    /// affects results, only locality.
    pub placement: ShardPlacement,
    /// Cap on how many policy users the per-sample fairshare readout walks
    /// (`None` = all). Nation-scale runs with 100k+ users would otherwise
    /// spend the whole run inside metrics sampling; the first `cap` users in
    /// policy order still give the figures their tracked series.
    pub metrics_user_cap: Option<usize>,
    /// Continuous-profiling mode: per-shard stage accounting, barrier-wait
    /// attribution, gossip bytes-on-wire, and the Chrome-trace / folded
    /// export in [`crate::SimResult::profile`]. `Counters` keeps only the
    /// deterministic half (no clock reads); `Full` adds wall timing and the
    /// per-epoch span ring. Implies telemetry when not `Off` (the service
    /// stages are read from the per-site registries).
    pub profile: aequus_telemetry::ProfileMode,
    /// Debug-only: sleep this many wall nanoseconds at every epoch barrier.
    /// Exists so `bench_diff --selftest` can inject a known slowdown and
    /// assert the differ attributes it to `barrier.wait`. Never set in real
    /// scenarios.
    pub debug_barrier_sleep_ns: u64,
    /// Gossip overlay topology: which sites exchange summaries directly.
    /// Interior nodes of non-mesh overlays relay merged cells onward
    /// (per-hop aggregation), so every site still converges to the full
    /// grid view.
    pub overlay: OverlayTopology,
    /// Wire encoding used to account gossip bytes-on-wire (`wire_size` of
    /// every delivered message — the sim never ships real buffers, but the
    /// byte accounting is the codec's real encoded size).
    pub encoding: Encoding,
    /// Fairness-health monitoring: streaming SLO rules with multi-window
    /// burn-rate alerting plus the per-link gossip health map. `None` (the
    /// default) skips all health collection; `Some` fills
    /// [`crate::SimResult::health_report`] and [`crate::SimResult::alerts`].
    /// Thresholds left at `0.0` are auto-derived from the scenario timings.
    pub health: Option<aequus_telemetry::SloConfig>,
}

impl GridScenario {
    /// The paper's national test bed: six clusters of 40 virtual hosts
    /// ("for a total of 240 hosts, corresponding roughly to 10% of the
    /// national grid capacity"), SLURM on every site, percental projection,
    /// fairshare-only priority, k = 0.5.
    pub fn national_testbed(policy_shares: &[(&str, f64)], seed: u64) -> Self {
        let timings = ServiceTimings::default();
        Self {
            clusters: (0..6)
                .map(|_| ClusterSpec {
                    nodes: 40,
                    cores_per_node: 1,
                    participation: ParticipationMode::Full,
                    rms: RmsKind::Slurm,
                    policy_override: None,
                })
                .collect(),
            policy: flat_policy(policy_shares).expect("valid flat policy"),
            fairshare: FairshareConfig {
                // Decay tuned to the compressed 6-hour test horizon.
                decay: aequus_core::DecayPolicy::Exponential {
                    half_life_s: 1800.0,
                },
                ..FairshareConfig::default()
            },
            projection: ProjectionKind::Percental,
            timings,
            weights: PriorityWeights::fairshare_only(),
            routing: RoutingPolicy::Stochastic,
            dispatch: DispatchConfig::default(),
            request_factor: 1.0,
            tick_interval_s: 5.0,
            sample_interval_s: 60.0,
            usage_slot_s: 60.0,
            seed,
            faults: FaultPlan::none(),
            retry: RetryPolicy::from_timings(&timings),
            stale_policy: StalePolicy::ServeStale,
            telemetry: false,
            span_sample_every: 0,
            capture_provenance: false,
            flight: None,
            store: None,
            snapshot_transfer_s: 0.0,
            num_threads: 1,
            placement: ShardPlacement::RoundRobin,
            metrics_user_cap: None,
            profile: aequus_telemetry::ProfileMode::Off,
            debug_barrier_sleep_ns: 0,
            overlay: OverlayTopology::FullMesh,
            encoding: Encoding::default(),
            health: None,
        }
    }

    /// A single production-like cluster (the HPC2N deployment: 544 cores,
    /// SLURM 2.4.3, one Aequus installation).
    pub fn production_cluster(policy_shares: &[(&str, f64)], seed: u64) -> Self {
        let mut s = Self::national_testbed(policy_shares, seed);
        s.clusters = vec![ClusterSpec {
            nodes: 68,
            cores_per_node: 8,
            participation: ParticipationMode::Full,
            rms: RmsKind::Slurm,
            policy_override: None,
        }];
        s
    }

    /// Total cores across all clusters.
    pub fn total_cores(&self) -> u32 {
        self.clusters.iter().map(ClusterSpec::cores).sum()
    }

    /// Per-cluster core capacities (dispatch weights).
    pub fn capacities(&self) -> Vec<u32> {
        self.clusters.iter().map(ClusterSpec::cores).collect()
    }

    /// Replace the (flat) policy with an arbitrary hierarchy — e.g. a site
    /// tree with a mounted grid sub-policy.
    pub fn with_policy(mut self, policy: PolicyTree) -> Self {
        self.policy = policy;
        self
    }

    /// Enable per-site telemetry (metric registries, spans, events, and the
    /// pipeline-delay tracer).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enable causal tracing: every `sample_every`-th usage report roots a
    /// span tree followed across sites. Implies telemetry.
    pub fn with_tracing(mut self, sample_every: u64) -> Self {
        self.telemetry = true;
        self.span_sample_every = sample_every;
        self
    }

    /// Full causal capture: every report traced and every traced served
    /// query's decision provenance recorded. Implies telemetry.
    pub fn with_full_tracing(mut self) -> Self {
        self.telemetry = true;
        self.span_sample_every = 1;
        self.capture_provenance = true;
        self
    }

    /// Attach a flight recorder with the given anomaly thresholds.
    pub fn with_flight_recorder(mut self, cfg: aequus_telemetry::flight::AnomalyConfig) -> Self {
        self.flight = Some(cfg);
        self
    }

    /// Attach a durable store (default configuration) to every site.
    pub fn with_durable_store(mut self) -> Self {
        self.store = Some(StoreConfig::default());
        self
    }

    /// Attach a durable store with explicit tuning.
    pub fn with_store_config(mut self, cfg: StoreConfig) -> Self {
        self.store = Some(cfg);
        self
    }

    /// Set the extra delivery latency for snapshot catch-up transfers.
    pub fn with_snapshot_transfer(mut self, seconds: f64) -> Self {
        self.snapshot_transfer_s = seconds;
        self
    }

    /// Run the epoch loop on `n` shard-worker threads (1 = inline/serial).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n.max(1);
        self
    }

    /// Choose the site→worker placement strategy.
    pub fn with_placement(mut self, placement: ShardPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Choose the gossip overlay topology (default: full mesh).
    pub fn with_overlay(mut self, overlay: OverlayTopology) -> Self {
        self.overlay = overlay;
        self
    }

    /// Choose the wire encoding for gossip byte accounting.
    pub fn with_encoding(mut self, encoding: Encoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Enable fairness-health monitoring (SLO burn-rate alerting + per-link
    /// gossip health map) with the given configuration.
    pub fn with_health(mut self, cfg: aequus_telemetry::SloConfig) -> Self {
        self.health = Some(cfg);
        self
    }

    /// Cap the per-sample fairshare readout to the first `cap` policy users.
    pub fn with_metrics_user_cap(mut self, cap: usize) -> Self {
        self.metrics_user_cap = Some(cap);
        self
    }

    /// Choose the submission-host routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Configure every site's queue dispatch (order, predictor, overrun
    /// policy).
    pub fn with_dispatch(mut self, dispatch: DispatchConfig) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Set the walltime-request padding factor applied to trace jobs.
    pub fn with_request_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "request factor must be positive");
        self.request_factor = factor;
        self
    }

    /// Enable continuous profiling. Any mode other than `Off` implies
    /// telemetry — the profiler folds the per-site service histograms
    /// (USS ingest/publish, gossip merge, UMS/FCS refresh, WAL
    /// append/replay) into the run profile.
    pub fn with_profiling(mut self, mode: aequus_telemetry::ProfileMode) -> Self {
        self.profile = mode;
        if mode != aequus_telemetry::ProfileMode::Off {
            self.telemetry = true;
        }
        self
    }

    /// Inject an artificial sleep at every epoch barrier (debug/selftest
    /// only — see [`GridScenario::debug_barrier_sleep_ns`]).
    pub fn with_debug_barrier_sleep(mut self, ns: u64) -> Self {
        self.debug_barrier_sleep_ns = ns;
        self
    }

    /// The users the metrics track: every policy leaf with its *absolute*
    /// target share (product of normalized shares along the path).
    pub fn tracked_users(&self) -> Vec<(String, f64)> {
        self.policy
            .users()
            .into_iter()
            .map(|(path, user)| {
                let share = self.policy.absolute_share(&path).unwrap_or(0.0);
                (user.as_str().to_string(), share)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn national_testbed_matches_paper() {
        let s = GridScenario::national_testbed(&[("U65", 0.65)], 1);
        assert_eq!(s.clusters.len(), 6);
        assert_eq!(s.total_cores(), 240);
        assert_eq!(s.projection, ProjectionKind::Percental);
        assert_eq!(s.fairshare.k_weight, 0.5);
        assert_eq!(s.weights, PriorityWeights::fairshare_only());
        assert_eq!(s.routing, RoutingPolicy::Stochastic);
        assert_eq!(s.dispatch, DispatchConfig::default());
        assert_eq!(s.request_factor, 1.0);
    }

    #[test]
    fn production_cluster_is_hpc2n_sized() {
        let s = GridScenario::production_cluster(&[("a", 1.0)], 1);
        assert_eq!(s.total_cores(), 544);
    }

    #[test]
    fn placement_covers_all_workers_and_sites() {
        for placement in [ShardPlacement::RoundRobin, ShardPlacement::Blocked] {
            for n_workers in [1, 2, 3, 8] {
                let assigned: Vec<usize> = (0..10)
                    .map(|site| placement.worker_for(site, 10, n_workers))
                    .collect();
                assert!(assigned.iter().all(|&w| w < n_workers), "{assigned:?}");
                // Round-robin keeps every worker busy whenever workers ≤
                // sites; blocked may idle trailing workers (ceil division)
                // but must still use more than one when several exist.
                if placement == ShardPlacement::RoundRobin {
                    for w in 0..n_workers.min(10) {
                        assert!(assigned.contains(&w), "{n_workers}: {assigned:?}");
                    }
                } else if n_workers > 1 {
                    assert!(assigned.iter().any(|&w| w > 0), "{assigned:?}");
                }
            }
        }
    }

    #[test]
    fn blocked_placement_is_contiguous() {
        let p = ShardPlacement::Blocked;
        let assigned: Vec<usize> = (0..10).map(|s| p.worker_for(s, 10, 4)).collect();
        let mut sorted = assigned.clone();
        sorted.sort_unstable();
        assert_eq!(assigned, sorted, "blocks are monotone: {assigned:?}");
    }
}
