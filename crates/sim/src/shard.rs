//! One shard of the parallel simulation: a site's full stack (RMS + Aequus
//! services), its local event queue, and its own fault-RNG stream — an
//! independently steppable unit that burns through a whole epoch of local
//! events without touching any other shard.
//!
//! Cross-shard traffic never leaves a shard directly: sends are staged as
//! [`Outgoing`] records and handed to the coordinator at the next epoch
//! barrier, which routes them into the destination shards' queues in a
//! deterministic (source-site, staging) order. Because the fault stream, the
//! event queue, and the local clock are all shard-owned, the shard's
//! execution depends only on `(scenario, seed, delivered events)` — never on
//! which worker thread runs it or how many workers exist.

use crate::cluster::{Rms, SimCluster};
use crate::event::{Event, EventQueue};
use crate::faults::FaultRng;
use crate::metrics::{ShardSample, UserSample};
use crate::scenario::GridScenario;
use aequus_core::policy::PolicyTree;
use aequus_core::{EntityPath, GridUser};
use aequus_services::UssMessage;
use aequus_telemetry::ShardProfiler;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cross-shard message staged during an epoch, delivered at the barrier.
#[derive(Debug)]
pub struct Outgoing {
    /// Source site (barrier delivery sorts by this, so destination queues
    /// see messages in the same order the serial engine would push them).
    pub source: usize,
    /// Destination site.
    pub dest: usize,
    /// Absolute delivery time, seconds (already includes exchange latency
    /// and any snapshot transfer surcharge, clamped to the epoch barrier).
    pub arrival_s: f64,
    /// The message.
    pub msg: UssMessage,
}

/// Plain per-shard event counters, merged into the engine telemetry at the
/// end of the run. Kept as raw integers so the hot loop never touches an
/// atomic and the totals are exactly reproducible.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardStats {
    /// Events this shard processed.
    pub events: u64,
    /// Job arrivals submitted.
    pub arrivals: u64,
    /// Cluster ticks executed.
    pub ticks: u64,
    /// Data (summary) messages delivered to this site.
    pub gossip_deliveries: u64,
    /// Total encoded bytes this site put on the wire (codec-accurate:
    /// `UssMessage::wire_size` under the scenario's encoding).
    pub gossip_bytes: u64,
    /// Deliveries refused because the site was partitioned or crashed.
    pub partitioned: u64,
    /// Sends lost to the random-drop fault.
    pub dropped: u64,
    /// Crash-window entries.
    pub crashes: u64,
}

impl ShardStats {
    /// Accumulate another shard's counters.
    pub fn merge(&mut self, other: &ShardStats) {
        self.events += other.events;
        self.arrivals += other.arrivals;
        self.ticks += other.ticks;
        self.gossip_deliveries += other.gossip_deliveries;
        self.gossip_bytes += other.gossip_bytes;
        self.partitioned += other.partitioned;
        self.dropped += other.dropped;
        self.crashes += other.crashes;
    }
}

/// What the per-sample fairshare readout walks, shared read-only by every
/// shard: the tracked users (per-site priorities) and the reference site's
/// policy leaves (absolute usage shares). Both lists respect the scenario's
/// `metrics_user_cap`.
#[derive(Debug)]
pub struct SampleSpec {
    /// Tracked user names (policy leaves), capped.
    pub tracked: Vec<String>,
    /// Reference-site readout: `(path, user)` per policy leaf, capped.
    pub user_paths: Vec<(EntityPath, GridUser)>,
}

impl SampleSpec {
    /// Build from a scenario's policy and cap.
    pub fn from_scenario(scenario: &GridScenario) -> Self {
        let mut user_paths: Vec<(EntityPath, GridUser)> = scenario.policy.users();
        if let Some(cap) = scenario.metrics_user_cap {
            user_paths.truncate(cap);
        }
        let tracked = user_paths
            .iter()
            .map(|(_, u)| u.as_str().to_string())
            .collect();
        Self {
            tracked,
            user_paths,
        }
    }
}

/// One independently steppable shard: site stack + queue + fault stream.
#[derive(Debug)]
pub struct Shard {
    /// Site index (also the cluster index in the scenario).
    pub index: usize,
    /// The site's full stack.
    pub cluster: SimCluster,
    /// Shard-local event queue.
    pub queue: EventQueue,
    /// Shard-local fault stream (`FaultRng::for_shard`).
    pub faults: FaultRng,
    /// Crash-window edge state.
    pub crashed: bool,
    /// Event counters.
    pub stats: ShardStats,
    /// Continuous-profiling accumulator (disabled outside profiled runs).
    /// Shard-owned like `stats`, so the hot loop records without locks.
    pub prof: ShardProfiler,
    /// Cumulative per-destination wire counters `(bytes, msgs)`, indexed by
    /// destination site and kept only when the scenario runs health
    /// monitoring — they feed the per-link health map, which wants link
    /// budgets, not the site total in `stats`. A flat vector keeps the
    /// per-send accounting to two adds.
    link_wire: Vec<(u64, u64)>,
    scenario: Arc<GridScenario>,
    spec: Arc<SampleSpec>,
}

impl Shard {
    /// Wrap a built cluster as a shard.
    pub fn new(
        index: usize,
        cluster: SimCluster,
        scenario: Arc<GridScenario>,
        spec: Arc<SampleSpec>,
        prof: ShardProfiler,
    ) -> Self {
        let faults = FaultRng::for_shard(scenario.seed, index as u64);
        let link_wire = if scenario.health.is_some() {
            vec![(0, 0); scenario.clusters.len()]
        } else {
            Vec::new()
        };
        Self {
            index,
            cluster,
            queue: EventQueue::new(),
            faults,
            crashed: false,
            stats: ShardStats::default(),
            prof,
            link_wire,
            scenario,
            spec,
        }
    }

    /// Process every queued event with `time < limit_s` (or `<= limit_s`
    /// when `inclusive`), staging cross-shard sends into `out`. Events past
    /// `end_s` stay queued forever (the run horizon).
    pub fn advance(&mut self, limit_s: f64, inclusive: bool, end_s: f64, out: &mut Vec<Outgoing>) {
        while let Some(t) = self.queue.peek_time() {
            let due = if inclusive { t <= limit_s } else { t < limit_s };
            if !due || t > end_s {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event");
            self.stats.events += 1;
            match event {
                Event::JobArrival(job) => {
                    self.stats.arrivals += 1;
                    self.cluster.submit(&job, now);
                }
                Event::ClusterTick => {
                    self.stats.ticks += 1;
                    self.tick(now, limit_s, out);
                    let next = now + self.scenario.tick_interval_s;
                    if next <= end_s {
                        self.queue.push(next, Event::ClusterTick);
                    }
                }
                Event::UssDeliver(msg) => {
                    if self.crashed || self.scenario.faults.is_partitioned(self.index, now) {
                        // Undeliverable: the publisher's outbox keeps the
                        // data and the retry/anti-entropy layer re-syncs it
                        // once the site is back.
                        self.stats.partitioned += 1;
                    } else {
                        if msg.is_data() {
                            self.stats.gossip_deliveries += 1;
                        }
                        let responses = self.cluster.deliver_msg(&msg, now);
                        for (dest, response) in responses {
                            self.send(dest.0 as usize, response, now, limit_s, out);
                        }
                    }
                }
            }
        }
    }

    /// One cluster tick: crash-window edge detection, then either the
    /// degraded RMS-only step (crashed) or the full step plus exchange
    /// traffic.
    fn tick(&mut self, now: f64, limit_s: f64, out: &mut Vec<Outgoing>) {
        let crashed_now = self.scenario.faults.is_crashed(self.index, now);
        if crashed_now != self.crashed {
            if crashed_now {
                self.cluster.site.crash(now);
                self.stats.crashes += 1;
            } else {
                self.cluster.site.recover(now);
            }
            self.crashed = crashed_now;
        }
        if crashed_now {
            // The RMS keeps scheduling (degraded, stale-cache priorities)
            // and completed jobs spool their usage reports for replay, but
            // the Aequus services are down.
            self.cluster.step_rms_only(now);
            return;
        }
        self.cluster.step(now);
        // With peers registered the legacy broadcast outbox stays empty and
        // the reliable exchange drains through poll_messages. A peerless
        // site (single-cluster scenario) still fills it — and has nowhere
        // to send, so discard.
        let _ = self.cluster.take_outbox();
        let msgs = self.cluster.poll_messages(now);
        if self.scenario.faults.is_partitioned(self.index, now) {
            // Transport cut at the source. The retry state has already
            // advanced, so the lost sends retry after their backoff.
            return;
        }
        for (dest, msg) in msgs {
            self.send(dest.0 as usize, msg, now, limit_s, out);
        }
    }

    /// Stage one exchange message toward `dest` with network latency,
    /// subject to this shard's random-drop stream (control messages are as
    /// droppable as data — the protocol tolerates either).
    fn send(
        &mut self,
        dest: usize,
        msg: UssMessage,
        now: f64,
        limit_s: f64,
        out: &mut Vec<Outgoing>,
    ) {
        if self.faults.should_drop(&self.scenario.faults) {
            self.stats.dropped += 1;
            return;
        }
        // Bulk snapshot catch-ups haul a full cumulative view over the
        // wire; the scenario may charge them extra transfer time on top of
        // the per-hop exchange latency (incremental summaries stay cheap).
        let transfer = match msg {
            UssMessage::Snapshot { .. } => self.scenario.snapshot_transfer_s,
            _ => 0.0,
        };
        // With lookahead ≤ exchange latency the clamp is a no-op; it only
        // bites when the scenario's latency is shorter than the epoch window
        // (e.g. zero-latency configs), where deliveries quantize to the
        // barrier instead of time-travelling into an already-executed epoch.
        let arrival = (now + self.scenario.timings.exchange_latency_s + transfer).max(limit_s);
        // Bytes-on-wire: only messages that actually leave the site count
        // (drops above never hit the wire). Staging order is deterministic,
        // so these link budgets are too. The size is the codec's real
        // encoded length under the scenario's wire encoding.
        let bytes = msg.wire_size(self.scenario.encoding);
        self.prof.add_wire(dest, bytes);
        self.stats.gossip_bytes += bytes;
        if let Some(slot) = self.link_wire.get_mut(dest) {
            slot.0 += bytes;
            slot.1 += 1;
        }
        out.push(Outgoing {
            source: self.index,
            dest,
            arrival_s: arrival,
            msg,
        });
    }

    /// Whether this site's remote data is currently suppressed (staleness
    /// degradation) — feeds the coordinator's flight recorder.
    pub fn remote_suppressed(&self) -> bool {
        self.cluster.site.uss.remote_suppressed()
    }

    /// This shard's contribution to the metrics sample at `now`: local
    /// queue/usage/FCS readouts, plus the reference-site per-user readout
    /// when this shard hosts site 0.
    pub fn sample_fragment(&mut self, now: f64) -> ShardSample {
        let mut users: BTreeMap<String, UserSample> = BTreeMap::new();
        if self.index == 0 {
            if let Some(tree) = self.cluster.site.fairshare_tree() {
                for (path, grid_user) in &self.spec.user_paths {
                    let name = grid_user.as_str().to_string();
                    let factor = self.cluster.site.fcs.query(grid_user).unwrap_or(0.5);
                    // Absolute usage share: product of per-level usage shares
                    // — identical to the per-node share for flat hierarchies.
                    let shares = aequus_core::projection::Percental::total_shares(tree, path);
                    let priority = tree.user_priority(grid_user);
                    if let (Some((_, usage_share)), Some(priority)) = (shares, priority) {
                        users.insert(
                            name,
                            UserSample {
                                priority,
                                usage_share,
                                factor,
                            },
                        );
                    }
                }
            }
        }
        let site_priority: BTreeMap<String, f64> = self
            .cluster
            .site
            .fairshare_tree()
            .map(|tree| {
                self.spec
                    .tracked
                    .iter()
                    .filter_map(|name| {
                        tree.user_priority(&GridUser::new(name.clone()))
                            .map(|p| (name.clone(), p))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let busy_cores = match &self.cluster.rms {
            Rms::Slurm(s) => s.core().nodes.busy_cores(),
            Rms::Maui(m) => m.core().nodes.busy_cores(),
        };
        let usage_view = (!self.crashed
            && self.scenario.clusters[self.index]
                .participation
                .reads_global())
        .then(|| self.cluster.site.uss.grid_view());
        let link_health = if self.scenario.health.is_some() {
            let n = self.scenario.clusters.len();
            let mut rows = self.cluster.site.uss.link_stats(now);
            for row in &mut rows {
                row.depth = self
                    .scenario
                    .overlay
                    .link_depth(row.from as usize, row.to as usize, n);
                // Tx rows additionally carry this site's cumulative wire
                // budget toward the peer (the rx side never sees drops).
                if row.heard_age_s < 0.0 {
                    if let Some(&(bytes, msgs)) = self.link_wire.get(row.to as usize) {
                        row.bytes = bytes;
                        row.msgs = msgs;
                    }
                }
            }
            rows
        } else {
            Vec::new()
        };
        ShardSample {
            users,
            site_priority,
            busy_cores,
            pending: self.cluster.rms.pending(),
            running: self.cluster.rms.running(),
            completed: self.cluster.rms.stats().completed,
            fcs_full_refreshes: self.cluster.site.fcs.full_refreshes(),
            fcs_incremental_refreshes: self.cluster.site.fcs.incremental_refreshes(),
            fcs_nodes_recomputed: self.cluster.site.fcs.nodes_recomputed(),
            usage_view,
            gossip_bytes: self.stats.gossip_bytes,
            telemetry: self.cluster.telemetry.snapshot(),
            link_health,
        }
    }

    /// The policy this shard's site enforces (override-aware).
    pub fn policy(&self) -> &PolicyTree {
        self.cluster.site.pds.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridScenario;
    use aequus_workload::TraceJob;

    fn two_site_scenario() -> Arc<GridScenario> {
        let mut s = GridScenario::national_testbed(&[("U65", 0.7), ("U30", 0.3)], 11);
        s.clusters.truncate(2);
        for c in &mut s.clusters {
            c.nodes = 4;
        }
        Arc::new(s)
    }

    fn build_shard(index: usize, scenario: &Arc<GridScenario>) -> Shard {
        let mut cluster = SimCluster::new(index, &scenario.clusters[index], scenario);
        // Register the peer so the reliable exchange produces traffic (the
        // engine does this for the whole fleet; shard tests wire it by hand).
        let peer = aequus_core::SiteId(if index == 0 { 1 } else { 0 });
        cluster.site.configure_exchange(
            &[peer],
            &[peer],
            scenario.retry,
            scenario.stale_policy,
            scenario.seed,
        );
        let spec = Arc::new(SampleSpec::from_scenario(scenario));
        Shard::new(
            index,
            cluster,
            Arc::clone(scenario),
            spec,
            ShardProfiler::disabled(),
        )
    }

    #[test]
    fn advance_respects_epoch_limit() {
        let sc = two_site_scenario();
        let mut shard = build_shard(0, &sc);
        shard.queue.push(0.0, Event::ClusterTick);
        shard.queue.push(
            3.0,
            Event::JobArrival(TraceJob {
                user: "U65".to_string(),
                submit_s: 3.0,
                duration_s: 10.0,
                cores: 1,
            }),
        );
        let mut out = Vec::new();
        // Exclusive limit at 3.0: only the t=0 tick runs (which re-queues
        // ticks every 5 s — also past the limit).
        shard.advance(3.0, false, 1_000.0, &mut out);
        assert_eq!(shard.stats.ticks, 1);
        assert_eq!(shard.stats.arrivals, 0);
        // Inclusive limit at 3.0 picks up the arrival.
        shard.advance(3.0, true, 1_000.0, &mut out);
        assert_eq!(shard.stats.arrivals, 1);
        assert_eq!(shard.stats.events, 2);
    }

    #[test]
    fn events_past_horizon_stay_queued() {
        let sc = two_site_scenario();
        let mut shard = build_shard(0, &sc);
        shard.queue.push(50.0, Event::ClusterTick);
        let mut out = Vec::new();
        shard.advance(100.0, true, 20.0, &mut out);
        assert_eq!(shard.stats.events, 0);
        assert_eq!(shard.queue.len(), 1);
    }

    #[test]
    fn outgoing_arrivals_never_precede_barrier() {
        let sc = two_site_scenario();
        let mut shard = build_shard(0, &sc);
        shard.queue.push(0.0, Event::ClusterTick);
        // Real usage so the publish pipeline has something to summarize.
        shard.queue.push(
            0.0,
            Event::JobArrival(TraceJob {
                user: "U65".to_string(),
                submit_s: 0.0,
                duration_s: 20.0,
                cores: 1,
            }),
        );
        let mut out = Vec::new();
        // Run long enough for the publish pipeline to emit summaries.
        for k in 1..200u32 {
            let limit = f64::from(k) * 5.0;
            shard.advance(limit, false, 10_000.0, &mut out);
        }
        assert!(!out.is_empty(), "site published exchange traffic");
        for o in &out {
            assert_eq!(o.source, 0);
            assert_eq!(o.dest, 1);
            assert!(
                o.arrival_s >= sc.timings.exchange_latency_s,
                "arrival {} under latency floor",
                o.arrival_s
            );
        }
    }

    #[test]
    fn reference_shard_fills_user_readout() {
        let sc = two_site_scenario();
        let mut s0 = build_shard(0, &sc);
        let mut s1 = build_shard(1, &sc);
        let mut out = Vec::new();
        s0.queue.push(0.0, Event::ClusterTick);
        s1.queue.push(0.0, Event::ClusterTick);
        s0.advance(0.0, true, 100.0, &mut out);
        s1.advance(0.0, true, 100.0, &mut out);
        let f0 = s0.sample_fragment(0.0);
        let f1 = s1.sample_fragment(0.0);
        assert!(!f0.users.is_empty(), "site 0 carries the reference readout");
        assert!(f1.users.is_empty(), "other sites leave it empty");
        assert!(f0.usage_view.is_some() && f1.usage_view.is_some());
    }

    #[test]
    fn sample_spec_honors_user_cap() {
        let mut s = GridScenario::national_testbed(&[("a", 0.4), ("b", 0.4), ("c", 0.2)], 1);
        s.metrics_user_cap = Some(2);
        let spec = SampleSpec::from_scenario(&s);
        assert_eq!(spec.user_paths.len(), 2);
        assert_eq!(spec.tracked.len(), 2);
    }
}
