//! Epoch barriers: the conservative-synchronization core of the parallel
//! engine.
//!
//! The coordinator advances simulated time in *epochs*. Within an epoch
//! every shard processes only its own local events; all cross-shard traffic
//! produced during the epoch is staged and delivered at the barrier. This is
//! safe because the epoch window never exceeds the exchange latency — the
//! *lookahead* in conservative parallel discrete-event simulation: a message
//! sent at time `t` inside epoch `[S, E)` arrives at `t + latency ≥ S +
//! lookahead ≥ E`, i.e. always in a later epoch, so no shard can ever
//! receive an event "from the past".
//!
//! Determinism does not depend on thread count anywhere in this file: the
//! epoch schedule is a pure function of the scenario, barrier deliveries are
//! sorted by source site before they enter destination queues, and sample
//! fragments are merged in site order. Workers only decide *where* a shard
//! executes, never *what* it observes.

use crate::event::Event;
use crate::metrics::ShardSample;
use crate::scenario::ShardPlacement;
use crate::shard::{Outgoing, Shard};
use aequus_services::UssMessage;
use aequus_telemetry::Histogram;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One epoch: advance every shard to `limit_s`, then (optionally) assemble
/// a metrics sample at the barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Epoch {
    /// Time bound for this epoch's event processing.
    pub limit_s: f64,
    /// Whether events at exactly `limit_s` are processed (`true` only for
    /// the t = 0 warm-up and the final flush at the horizon).
    pub inclusive: bool,
    /// Whether the coordinator samples metrics at this barrier.
    pub sample: bool,
}

/// The barrier schedule: epoch windows of at most `lookahead_s`, cut at
/// every metrics-sample instant, ending with an inclusive flush at the
/// horizon. A pure function of `(end, lookahead, sample interval)` — the
/// same for any worker count, which is half the determinism argument.
#[derive(Debug)]
pub struct EpochSchedule {
    end_s: f64,
    lookahead_s: f64,
    sample_interval_s: f64,
    now_s: f64,
    next_sample_s: f64,
    stage: Stage,
}

#[derive(Debug, PartialEq, Eq)]
enum Stage {
    Warmup,
    Windows,
    Flush,
    Done,
}

impl EpochSchedule {
    /// Build the schedule for a run to `end_s`. `lookahead_s` must be
    /// positive (the engine falls back to the tick interval for zero-latency
    /// scenarios; deliveries then quantize to barriers, see `Shard::send`).
    pub fn new(end_s: f64, lookahead_s: f64, sample_interval_s: f64) -> Self {
        assert!(lookahead_s > 0.0, "lookahead must be positive");
        assert!(sample_interval_s > 0.0, "sample interval must be positive");
        Self {
            end_s,
            lookahead_s,
            sample_interval_s,
            now_s: 0.0,
            // Accumulated exactly like the serial engine re-armed its sample
            // event (now + interval), so sample instants are bit-identical.
            next_sample_s: sample_interval_s,
            stage: Stage::Warmup,
        }
    }

    /// Next epoch, or `None` when the run is over.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Epoch> {
        match self.stage {
            Stage::Warmup => {
                // Process everything at t = 0 (arrivals, first tick), then
                // sample — the serial engine's t = 0 pop order.
                self.stage = if self.end_s > 0.0 {
                    Stage::Windows
                } else {
                    Stage::Done
                };
                Some(Epoch {
                    limit_s: 0.0,
                    inclusive: true,
                    sample: true,
                })
            }
            Stage::Windows => {
                let limit = (self.now_s + self.lookahead_s)
                    .min(self.next_sample_s)
                    .min(self.end_s);
                let sample = limit == self.next_sample_s && limit <= self.end_s;
                if sample {
                    self.next_sample_s += self.sample_interval_s;
                }
                self.now_s = limit;
                if self.now_s >= self.end_s {
                    self.stage = Stage::Flush;
                }
                Some(Epoch {
                    limit_s: limit,
                    inclusive: false,
                    sample,
                })
            }
            Stage::Flush => {
                self.stage = Stage::Done;
                Some(Epoch {
                    limit_s: self.end_s,
                    inclusive: true,
                    sample: false,
                })
            }
            Stage::Done => None,
        }
    }
}

/// Per-site fragments gathered at a sampling barrier: `(shard sample,
/// remote-data-suppressed flag)`, in site order.
pub type BarrierFragments = Vec<(ShardSample, bool)>;

enum Cmd {
    Epoch {
        /// Epoch index in the schedule (profiler span tagging).
        epoch: u64,
        limit_s: f64,
        inclusive: bool,
        sample: bool,
        /// Barrier deliveries for this worker's shards, already in global
        /// (source site, staging) order.
        deliveries: Vec<(usize, f64, UssMessage)>,
    },
    Finish,
}

struct WorkerOut {
    outgoing: Vec<Outgoing>,
    fragments: Vec<(usize, ShardSample, bool)>,
}

/// Drive `shards` through `schedule`, calling `at_barrier(now, fragments)`
/// at every sampling barrier. Returns the shards in site order plus the
/// peak number of cross-shard deliveries pending at any single barrier —
/// the engine's mailbox high-water mark (deterministic: both paths stage
/// the same sends per epoch).
///
/// `num_threads <= 1` runs the identical epoch loop inline; more threads run
/// persistent `std::thread::scope` workers fed per-epoch commands over
/// channels. Both paths perform the same pushes in the same per-shard order,
/// so they produce bit-identical shard states.
///
/// `barrier_sleep_ns` injects an artificial stall at every barrier (debug /
/// `bench_diff --selftest` only): the serial path sleeps and charges the
/// stall to every shard's `barrier.wait` stage; the parallel path sleeps on
/// the coordinator, where the workers' own wait measurement picks it up.
#[allow(clippy::too_many_arguments)] // single internal caller (engine::run)
pub fn drive(
    mut shards: Vec<Shard>,
    num_threads: usize,
    placement: ShardPlacement,
    mut schedule: EpochSchedule,
    end_s: f64,
    epoch_hist: &Histogram,
    barrier_sleep_ns: u64,
    mut at_barrier: impl FnMut(f64, BarrierFragments),
) -> (Vec<Shard>, u64) {
    let n_workers = num_threads.min(shards.len()).max(1);
    let mut mailbox_hwm: u64 = 0;
    if n_workers <= 1 {
        let mut outgoing: Vec<Outgoing> = Vec::new();
        let mut epoch_idx: u64 = 0;
        while let Some(epoch) = schedule.next() {
            let timer = epoch_hist.start_timer();
            for shard in &mut shards {
                let before = shard.stats.events;
                shard.prof.begin_epoch(epoch_idx, epoch.limit_s, before);
                shard.advance(epoch.limit_s, epoch.inclusive, end_s, &mut outgoing);
                let after = shard.stats.events;
                shard.prof.end_epoch(after);
            }
            if epoch.sample {
                let frags: BarrierFragments = shards
                    .iter_mut()
                    .map(|s| (s.sample_fragment(epoch.limit_s), s.remote_suppressed()))
                    .collect();
                at_barrier(epoch.limit_s, frags);
            }
            mailbox_hwm = mailbox_hwm.max(outgoing.len() as u64);
            // Shards were advanced in site order, so `outgoing` is already
            // sorted by (source, staging order) — deliver directly.
            for o in outgoing.drain(..) {
                shards[o.dest]
                    .queue
                    .push(o.arrival_s, Event::UssDeliver(o.msg));
            }
            if barrier_sleep_ns > 0 {
                std::thread::sleep(Duration::from_nanos(barrier_sleep_ns));
                for shard in &mut shards {
                    shard
                        .prof
                        .record_wait_ns(barrier_sleep_ns, epoch_idx, epoch.limit_s);
                }
            }
            timer.observe();
            epoch_idx += 1;
        }
        return (shards, mailbox_hwm);
    }

    let n_sites = shards.len();
    let worker_of: Vec<usize> = (0..n_sites)
        .map(|site| placement.worker_for(site, n_sites, n_workers))
        .collect();
    // Partition shards per worker, preserving site order within each.
    let mut per_worker: Vec<Vec<Shard>> = (0..n_workers).map(|_| Vec::new()).collect();
    for shard in shards.drain(..) {
        per_worker[worker_of[shard.index]].push(shard);
    }

    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel::<(usize, WorkerOut)>();
        let mut cmd_txs = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for (w, worker_shards) in per_worker.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Cmd>();
            cmd_txs.push(tx);
            let res_tx = res_tx.clone();
            handles.push(scope.spawn(move || worker_loop(w, worker_shards, rx, res_tx, end_s)));
        }
        drop(res_tx);

        let mut pending: Vec<Outgoing> = Vec::new();
        let mut epoch_idx: u64 = 0;
        while let Some(epoch) = schedule.next() {
            let timer = epoch_hist.start_timer();
            let mut deliveries: Vec<Vec<(usize, f64, UssMessage)>> =
                (0..n_workers).map(|_| Vec::new()).collect();
            for o in pending.drain(..) {
                deliveries[worker_of[o.dest]].push((o.dest, o.arrival_s, o.msg));
            }
            for (tx, batch) in cmd_txs.iter().zip(deliveries) {
                tx.send(Cmd::Epoch {
                    epoch: epoch_idx,
                    limit_s: epoch.limit_s,
                    inclusive: epoch.inclusive,
                    sample: epoch.sample,
                    deliveries: batch,
                })
                .expect("worker alive");
            }
            let mut outs: Vec<WorkerOut> = (0..n_workers)
                .map(|_| res_rx.recv().expect("worker epoch result").1)
                .collect();
            if barrier_sleep_ns > 0 {
                // Stall the coordinator while every worker sits at the
                // barrier; the workers' own wait measurement attributes it.
                std::thread::sleep(Duration::from_nanos(barrier_sleep_ns));
            }
            // Each source site lives on exactly one worker and its sends
            // arrive in one contiguous in-order run, so a stable sort by
            // source reconstructs the exact serial delivery order no matter
            // which worker reported first.
            let mut all_out: Vec<Outgoing> =
                outs.iter_mut().flat_map(|o| o.outgoing.drain(..)).collect();
            all_out.sort_by_key(|o| o.source);
            pending = all_out;
            mailbox_hwm = mailbox_hwm.max(pending.len() as u64);
            if epoch.sample {
                let mut frags: Vec<(usize, ShardSample, bool)> = outs
                    .iter_mut()
                    .flat_map(|o| o.fragments.drain(..))
                    .collect();
                frags.sort_by_key(|f| f.0);
                at_barrier(
                    epoch.limit_s,
                    frags.into_iter().map(|(_, s, b)| (s, b)).collect(),
                );
            }
            timer.observe();
            epoch_idx += 1;
        }
        for tx in &cmd_txs {
            tx.send(Cmd::Finish).expect("worker alive");
        }
        let mut shards: Vec<Shard> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker exits cleanly"))
            .collect();
        shards.sort_by_key(|s| s.index);
        (shards, mailbox_hwm)
    })
}

fn worker_loop(
    worker: usize,
    mut shards: Vec<Shard>,
    rx: mpsc::Receiver<Cmd>,
    res_tx: mpsc::Sender<(usize, WorkerOut)>,
    end_s: f64,
) -> Vec<Shard> {
    // Barrier-wait measurement: elapsed between finishing an epoch and the
    // next command's arrival is exactly how long this worker's shards sat
    // idle at the barrier. Charged to every local shard — the *waiting*
    // shards pay, the busy shard on some other worker shows up as compute.
    // Only taken in Full mode (Counters promises zero clock reads).
    let measure_wait = shards.iter().any(|s| s.prof.is_full());
    let mut last_done: Option<Instant> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Epoch {
                epoch,
                limit_s,
                inclusive,
                sample,
                deliveries,
            } => {
                if let Some(done) = last_done.take() {
                    let wait_ns = done.elapsed().as_nanos() as u64;
                    for shard in &mut shards {
                        shard.prof.record_wait_ns(wait_ns, epoch, limit_s);
                    }
                }
                // Barrier deliveries first, in the coordinator's global
                // order — the serial engine pushes them at the same point
                // (after the previous epoch, before this one advances).
                for (dest, arrival_s, msg) in deliveries {
                    let shard = shards
                        .iter_mut()
                        .find(|s| s.index == dest)
                        .expect("delivery routed to owning worker");
                    shard.queue.push(arrival_s, Event::UssDeliver(msg));
                }
                let mut outgoing = Vec::new();
                for shard in &mut shards {
                    let before = shard.stats.events;
                    shard.prof.begin_epoch(epoch, limit_s, before);
                    shard.advance(limit_s, inclusive, end_s, &mut outgoing);
                    let after = shard.stats.events;
                    shard.prof.end_epoch(after);
                }
                let fragments = if sample {
                    shards
                        .iter_mut()
                        .map(|s| (s.index, s.sample_fragment(limit_s), s.remote_suppressed()))
                        .collect()
                } else {
                    Vec::new()
                };
                if res_tx
                    .send((
                        worker,
                        WorkerOut {
                            outgoing,
                            fragments,
                        },
                    ))
                    .is_err()
                {
                    break; // coordinator gone — unwind quietly
                }
                if measure_wait {
                    last_done = Some(Instant::now());
                }
            }
            Cmd::Finish => break,
        }
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut s: EpochSchedule) -> Vec<Epoch> {
        std::iter::from_fn(|| s.next()).collect()
    }

    #[test]
    fn schedule_starts_inclusive_with_sample_and_ends_with_flush() {
        let epochs = collect(EpochSchedule::new(10.0, 5.0, 60.0));
        assert_eq!(
            epochs.first(),
            Some(&Epoch {
                limit_s: 0.0,
                inclusive: true,
                sample: true
            })
        );
        assert_eq!(
            epochs.last(),
            Some(&Epoch {
                limit_s: 10.0,
                inclusive: true,
                sample: false
            })
        );
        // Interior windows are half-open and never wider than the lookahead.
        let mut prev = 0.0;
        for e in &epochs[1..epochs.len() - 1] {
            assert!(!e.inclusive);
            assert!(e.limit_s - prev <= 5.0 + 1e-12);
            assert!(e.limit_s > prev);
            prev = e.limit_s;
        }
    }

    #[test]
    fn schedule_cuts_epochs_at_sample_instants() {
        // Lookahead 45 s, samples every 60 s: barriers must land exactly on
        // 60, 120, … with the sample flag set.
        let epochs = collect(EpochSchedule::new(150.0, 45.0, 60.0));
        let samples: Vec<f64> = epochs
            .iter()
            .filter(|e| e.sample)
            .map(|e| e.limit_s)
            .collect();
        assert_eq!(samples, vec![0.0, 60.0, 120.0]);
        assert!(epochs.iter().all(|e| e.limit_s <= 150.0));
    }

    #[test]
    fn schedule_samples_at_horizon_when_aligned() {
        let epochs = collect(EpochSchedule::new(120.0, 50.0, 60.0));
        let samples: Vec<f64> = epochs
            .iter()
            .filter(|e| e.sample)
            .map(|e| e.limit_s)
            .collect();
        assert_eq!(samples, vec![0.0, 60.0, 120.0]);
    }

    #[test]
    fn zero_horizon_is_one_sampled_epoch() {
        let epochs = collect(EpochSchedule::new(0.0, 5.0, 60.0));
        assert_eq!(epochs.len(), 1);
        assert!(epochs[0].sample && epochs[0].inclusive);
    }
}
