//! Identity Resolution Service (IRS): "an auxiliary service that can be used
//! to revert the site-specific mapping process from grid user identity to a
//! system user account" (§II-A). §III-B gives two ways to obtain the reverse
//! mapping: an actively populated look-up table, or a site-deployed custom
//! resolution endpoint queried "using a minimalist JSON based protocol" —
//! modeled here as a pluggable resolver callback.

use aequus_core::{GridUser, SystemUser};
use aequus_telemetry::{Counter, Histogram, Telemetry};
use std::collections::BTreeMap;

/// The resolver endpoint type: given a system account, return the grid
/// identity it was mapped from (the HPC2N deployment runs "a small name
/// resolution endpoint" of this shape).
pub type ResolverEndpoint = Box<dyn Fn(&SystemUser) -> Option<GridUser> + Send + Sync>;

/// Per-site identity resolution service.
pub struct Irs {
    table: BTreeMap<SystemUser, GridUser>,
    endpoint: Option<ResolverEndpoint>,
    lookups: u64,
    endpoint_calls: u64,
    c_lookups: Counter,
    c_endpoint_calls: Counter,
    h_resolve: Histogram,
}

impl std::fmt::Debug for Irs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Irs")
            .field("table_entries", &self.table.len())
            .field("has_endpoint", &self.endpoint.is_some())
            .field("lookups", &self.lookups)
            .finish()
    }
}

impl Default for Irs {
    fn default() -> Self {
        Self::new()
    }
}

impl Irs {
    /// Create an empty IRS (no mappings, no endpoint).
    pub fn new() -> Self {
        Self {
            table: BTreeMap::new(),
            endpoint: None,
            lookups: 0,
            endpoint_calls: 0,
            c_lookups: Counter::default(),
            c_endpoint_calls: Counter::default(),
            h_resolve: Histogram::default(),
        }
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.c_lookups = t.counter("aequus_irs_lookups_total");
        self.c_endpoint_calls = t.counter("aequus_irs_endpoint_calls_total");
        self.h_resolve = t.histogram("aequus_irs_resolve_s");
    }

    /// Way 1 (§III-B): actively store a reverse mapping in the look-up table.
    pub fn store_mapping(&mut self, system: SystemUser, grid: GridUser) {
        self.table.insert(system, grid);
    }

    /// Way 2 (§III-B): configure a custom resolution endpoint the IRS calls
    /// with name-resolution queries.
    pub fn set_endpoint(&mut self, endpoint: ResolverEndpoint) {
        self.endpoint = Some(endpoint);
    }

    /// Resolve a system account back to the grid identity: the table is
    /// consulted first, then the endpoint (whose answers are memoized into
    /// the table).
    pub fn resolve(&mut self, system: &SystemUser) -> Option<GridUser> {
        let _span = self.h_resolve.start_timer();
        self.lookups += 1;
        self.c_lookups.inc();
        if let Some(g) = self.table.get(system) {
            return Some(g.clone());
        }
        if let Some(ep) = &self.endpoint {
            self.endpoint_calls += 1;
            self.c_endpoint_calls.inc();
            if let Some(g) = ep(system) {
                self.table.insert(system.clone(), g.clone());
                return Some(g);
            }
        }
        None
    }

    /// Stored mappings count.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Total resolution queries served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Calls that had to go to the endpoint.
    pub fn endpoint_calls(&self) -> u64 {
        self.endpoint_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lookup() {
        let mut irs = Irs::new();
        irs.store_mapping(SystemUser::new("grid0001"), GridUser::new("CN=alice"));
        assert_eq!(
            irs.resolve(&SystemUser::new("grid0001")),
            Some(GridUser::new("CN=alice"))
        );
        assert_eq!(irs.resolve(&SystemUser::new("grid0002")), None);
    }

    #[test]
    fn endpoint_fallback_and_memoization() {
        let mut irs = Irs::new();
        irs.set_endpoint(Box::new(|sys: &SystemUser| {
            // A site-specific convention: gridNNNN ↔ CN=userNNNN.
            sys.as_str()
                .strip_prefix("grid")
                .map(|n| GridUser::new(format!("CN=user{n}")))
        }));
        let g = irs.resolve(&SystemUser::new("grid0042"));
        assert_eq!(g, Some(GridUser::new("CN=user0042")));
        assert_eq!(irs.endpoint_calls(), 1);
        // Second resolve hits the memoized table, not the endpoint.
        irs.resolve(&SystemUser::new("grid0042"));
        assert_eq!(irs.endpoint_calls(), 1);
        assert_eq!(irs.lookups(), 2);
    }

    #[test]
    fn endpoint_miss_returns_none() {
        let mut irs = Irs::new();
        irs.set_endpoint(Box::new(|_| None));
        assert_eq!(irs.resolve(&SystemUser::new("unknown")), None);
        assert_eq!(irs.endpoint_calls(), 1);
    }

    #[test]
    fn table_takes_precedence_over_endpoint() {
        let mut irs = Irs::new();
        irs.store_mapping(SystemUser::new("grid1"), GridUser::new("CN=table"));
        irs.set_endpoint(Box::new(|_| Some(GridUser::new("CN=endpoint"))));
        assert_eq!(
            irs.resolve(&SystemUser::new("grid1")),
            Some(GridUser::new("CN=table"))
        );
        assert_eq!(irs.endpoint_calls(), 0);
    }
}
