//! Usage Statistics Service (USS): "gathers per-job usage results of the
//! local site, and produces per-user histograms for configurable time
//! intervals" (§II-A). USS instances of different sites exchange compact
//! per-user summaries — this is the *only* cross-site communication channel
//! in the system ("they communicate only by exchanging data through the USS
//! services", §IV-A).

use crate::participation::ParticipationMode;
use aequus_core::arena::DirtySet;
use aequus_core::ids::SiteId;
use aequus_core::usage::{UsageHistogram, UsageRecord, UsageSummary};
use aequus_core::GridUser;
use aequus_telemetry::{Counter, Histogram, Telemetry};

/// Pre-registered USS metric handles (all no-ops until
/// [`Uss::set_telemetry`] wires an enabled registry).
#[derive(Debug, Clone, Default)]
struct UssMetrics {
    telemetry: Telemetry,
    ingested: Counter,
    published: Counter,
    received: Counter,
    h_ingest: Histogram,
    h_publish: Histogram,
    h_receive: Histogram,
}

impl UssMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            telemetry: t.clone(),
            ingested: t.counter("aequus_uss_records_ingested_total"),
            published: t.counter("aequus_uss_summaries_published_total"),
            received: t.counter("aequus_uss_summaries_received_total"),
            h_ingest: t.histogram("aequus_uss_ingest_s"),
            h_publish: t.histogram("aequus_uss_publish_s"),
            h_receive: t.histogram("aequus_uss_receive_s"),
        }
    }
}

/// Per-site usage statistics service.
#[derive(Debug, Clone)]
pub struct Uss {
    site: SiteId,
    mode: ParticipationMode,
    /// Usage executed on this site.
    local: UsageHistogram,
    /// Usage merged in from other sites' summaries.
    remote: UsageHistogram,
    /// Charge already published per (user, slot) — publications send the
    /// *delta* against this mirror, so charge landing in old slots (a long
    /// job completing spreads usage back over its whole runtime) is still
    /// exchanged exactly once.
    published: std::collections::BTreeMap<GridUser, std::collections::BTreeMap<u64, f64>>,
    /// Count of records ingested (observability).
    records_ingested: u64,
    /// Count of summaries received from peers.
    summaries_received: u64,
    /// Users whose usage changed since the UMS last drained this service —
    /// the head of the incremental dirty-set flow USS → UMS → FCS.
    dirty: DirtySet,
    /// Telemetry handles (no-ops until wired).
    metrics: UssMetrics,
}

impl Uss {
    /// Create a USS with the given histogram slot duration.
    pub fn new(site: SiteId, mode: ParticipationMode, slot_s: f64) -> Self {
        Self {
            site,
            mode,
            local: UsageHistogram::new(slot_s),
            remote: UsageHistogram::new(slot_s),
            published: Default::default(),
            records_ingested: 0,
            summaries_received: 0,
            dirty: DirtySet::new(),
            metrics: UssMetrics::default(),
        }
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = UssMetrics::wire(t);
    }

    /// Duration of one usage-histogram slot in seconds.
    pub fn slot_duration(&self) -> f64 {
        self.local.slot_duration()
    }

    /// The owning site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Participation mode in the global exchange.
    pub fn mode(&self) -> ParticipationMode {
        self.mode
    }

    /// Ingest a locally completed job's usage record.
    pub fn ingest(&mut self, rec: &UsageRecord) {
        let _span = self.metrics.h_ingest.start_timer();
        debug_assert_eq!(rec.site, self.site, "record routed to wrong site");
        if rec.charge() > 0.0 {
            self.dirty.mark_user(rec.user.clone());
        }
        self.local.record(rec);
        self.records_ingested += 1;
        self.metrics.ingested.inc();
    }

    /// Produce the next incremental summary for exchange: the *delta*
    /// between the local histogram and what was already published, over all
    /// closed slots (the slot containing `now_s` stays open and is held back
    /// until it closes). Returns `None` when this site does not contribute
    /// usage data (read-only participation) or nothing new exists.
    pub fn publish(&mut self, now_s: f64) -> Option<UsageSummary> {
        let _span = self.metrics.h_publish.start_timer();
        if !self.mode.contributes() {
            return None;
        }
        let current_slot = (now_s / self.local.slot_duration()).floor().max(0.0) as u64;
        let full = self.local.summary(self.site, 0);
        let mut per_user: std::collections::BTreeMap<
            GridUser,
            std::collections::BTreeMap<u64, f64>,
        > = Default::default();
        for (user, slots) in &full.per_user {
            let sent = self.published.entry(user.clone()).or_default();
            let mut deltas = std::collections::BTreeMap::new();
            for (&slot, &value) in slots {
                if slot >= current_slot {
                    continue; // open slot: held back until closed
                }
                let already = sent.get(&slot).copied().unwrap_or(0.0);
                let delta = value - already;
                if delta > 1e-12 {
                    deltas.insert(slot, delta);
                    sent.insert(slot, value);
                }
            }
            if !deltas.is_empty() {
                per_user.insert(user.clone(), deltas);
            }
        }
        if per_user.is_empty() {
            return None;
        }
        self.metrics.published.inc();
        Some(UsageSummary {
            site: self.site,
            slot_s: self.local.slot_duration(),
            per_user,
        })
    }

    /// Merge a summary received from a peer site. Ignored when this site does
    /// not read global data (contribute-only / local-only participation).
    pub fn receive(&mut self, summary: &UsageSummary) {
        self.receive_at(summary, -1.0);
    }

    /// [`Uss::receive`] with a domain timestamp for the gossip-merge event
    /// (the sim engine knows the delivery time; plain `receive` does not).
    pub fn receive_at(&mut self, summary: &UsageSummary, now_s: f64) {
        let _span = self.metrics.h_receive.start_timer();
        if !self.mode.reads_global() {
            return;
        }
        if summary.site == self.site {
            return; // never double-count our own data
        }
        for user in summary.per_user.keys() {
            self.dirty.mark_user(user.clone());
        }
        self.remote.merge_summary(summary);
        self.summaries_received += 1;
        self.metrics.received.inc();
        self.metrics.telemetry.event(now_s, "uss.gossip_merge", || {
            format!(
                "merged summary from site {} ({} users)",
                summary.site.0,
                summary.per_user.len()
            )
        });
    }

    /// Per-user decayed usage as the UMS consumes it: local plus (when the
    /// mode reads global data) remote.
    pub fn decayed_usage(
        &self,
        now_s: f64,
        decay: aequus_core::DecayPolicy,
    ) -> std::collections::BTreeMap<GridUser, f64> {
        let mut usage = self.local.decayed_all(now_s, decay);
        if self.mode.reads_global() {
            for (user, value) in self.remote.decayed_all(now_s, decay) {
                *usage.entry(user).or_insert(0.0) += value;
            }
        }
        usage
    }

    /// Usage of one user weighted relative to a fixed reference epoch
    /// (separable decays; see [`aequus_core::DecayPolicy::epoch_weight`]):
    /// local plus, when the mode reads global data, remote.
    pub fn epoch_usage_of(
        &self,
        user: &GridUser,
        epoch_s: f64,
        decay: aequus_core::DecayPolicy,
    ) -> f64 {
        let mut value = self.local.epoch_usage(user, epoch_s, decay);
        if self.mode.reads_global() {
            value += self.remote.epoch_usage(user, epoch_s, decay);
        }
        value
    }

    /// All users with any recorded usage (local, plus remote when the mode
    /// reads global data).
    pub fn known_users(&self) -> std::collections::BTreeSet<GridUser> {
        let mut users: std::collections::BTreeSet<GridUser> = self.local.users().cloned().collect();
        if self.mode.reads_global() {
            users.extend(self.remote.users().cloned());
        }
        users
    }

    /// Drain the set of users whose usage changed since the last drain.
    pub fn take_dirty(&mut self) -> DirtySet {
        self.dirty.take()
    }

    /// Users dirty since the last drain (inspection).
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Total local usage recorded (conservation checks / metrics).
    pub fn local_total(&self) -> f64 {
        self.local.total_recorded()
    }

    /// Total remote usage merged in.
    pub fn remote_total(&self) -> f64 {
        self.remote.total_recorded()
    }

    /// Records ingested so far.
    pub fn records_ingested(&self) -> u64 {
        self.records_ingested
    }

    /// Summaries received so far.
    pub fn summaries_received(&self) -> u64 {
        self.summaries_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::ids::JobId;
    use aequus_core::DecayPolicy;

    fn rec(site: u32, user: &str, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(0),
            user: GridUser::new(user),
            site: SiteId(site),
            cores: 1,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn publish_excludes_open_slot() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 50.0)); // slot 0
        uss.ingest(&rec(0, "a", 110.0, 120.0)); // slot 1 (open at t=150)
        let s = uss.publish(150.0).unwrap();
        assert!((s.total() - 50.0).abs() < 1e-9, "only slot 0 published");
        // Slot 1 closes once now_s reaches slot 2.
        let s2 = uss.publish(250.0).unwrap();
        assert!((s2.total() - 10.0).abs() < 1e-9);
        // Nothing further.
        assert!(uss.publish(300.0).is_none());
    }

    #[test]
    fn no_double_publish() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let s1 = uss.publish(200.0).unwrap();
        assert!((s1.total() - 80.0).abs() < 1e-9);
        assert!(uss.publish(200.0).is_none(), "cursor advanced");
    }

    #[test]
    fn read_only_site_never_publishes() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::ReadOnly, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        assert!(uss.publish(500.0).is_none());
        // But it merges incoming data.
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        peer.ingest(&rec(1, "b", 0.0, 40.0));
        let s = peer.publish(500.0).unwrap();
        uss.receive(&s);
        assert_eq!(uss.summaries_received(), 1);
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!((usage[&GridUser::new("b")] - 40.0).abs() < 1e-9);
        assert!((usage[&GridUser::new("a")] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn local_only_site_ignores_incoming() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::LocalOnly, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        peer.ingest(&rec(1, "b", 0.0, 40.0));
        let s = peer.publish(500.0).unwrap();
        uss.receive(&s);
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!(
            !usage.contains_key(&GridUser::new("b")),
            "global data ignored"
        );
        // But it still contributes its own data outward.
        assert!(uss.publish(500.0).is_some());
    }

    #[test]
    fn own_summaries_never_double_counted() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let s = uss.publish(500.0).unwrap();
        uss.receive(&s); // echoed back (e.g. broadcast bus)
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!((usage[&GridUser::new("a")] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn decay_applied_to_both_sources() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 10.0);
        uss.ingest(&rec(0, "a", 0.0, 10.0));
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 10.0);
        peer.ingest(&rec(1, "a", 0.0, 10.0));
        uss.receive(&peer.publish(100.0).unwrap());
        let fresh = uss.decayed_usage(10.0, DecayPolicy::Exponential { half_life_s: 20.0 });
        let stale = uss.decayed_usage(1000.0, DecayPolicy::Exponential { half_life_s: 20.0 });
        assert!(fresh[&GridUser::new("a")] > stale[&GridUser::new("a")]);
    }
}
