//! Usage Statistics Service (USS): "gathers per-job usage results of the
//! local site, and produces per-user histograms for configurable time
//! intervals" (§II-A). USS instances of different sites exchange compact
//! per-user summaries — this is the *only* cross-site communication channel
//! in the system ("they communicate only by exchanging data through the USS
//! services", §IV-A).
//!
//! ## Reliable exchange
//!
//! The exchange is fault-tolerant (see [`crate::reliability`]):
//!
//! * [`Uss::publish`] assigns each summary a monotonically increasing
//!   sequence number, retains it in a bounded history, and queues it in a
//!   bounded per-peer outbox. The outbox entry survives until the peer
//!   acknowledges delivery — a dropped summary is *re-sent*, never lost.
//! * [`Uss::poll`] drains due sends, retrying unacked summaries with
//!   exponential backoff plus deterministic seeded jitter.
//! * [`Uss::receive_message`] merges incoming data idempotently (summary
//!   cells are absolute cumulative values, merged as positive deltas against
//!   a per-*origin* mirror — multi-path-safe under hierarchical overlays,
//!   where interior nodes relay merged cells onward in per-origin summary
//!   sections), acknowledges it, detects sequence gaps, and issues
//!   anti-entropy [`UssMessage::Resync`] pulls — answered from the retained
//!   history, or with a cumulative snapshot when history was compacted.
//! * [`Uss::crash`]/[`Uss::request_catchup`] model site failure: volatile
//!   exchange state (remote histogram, mirrors, outboxes, sequence counter)
//!   is wiped, while the local histogram survives (it is backed by the
//!   site's accounting database); recovery pulls peer snapshots and
//!   republishes local history, both of which are idempotent at receivers.
//! * [`Uss::update_staleness`] tracks how old each peer's data is, exports
//!   it as the `aequus_uss_peer_staleness_s` gauge, and enforces the
//!   configured [`StalePolicy`] (serve-stale vs. local-only weighting).

use crate::participation::ParticipationMode;
use crate::reliability::{JitterRng, LinkObservation, RetryPolicy, StalePolicy, UssMessage};
use aequus_core::arena::DirtySet;
use aequus_core::ids::SiteId;
use aequus_core::usage::{UsageHistogram, UsageRecord, UsageSummary, UserCells};
use aequus_core::GridUser;
use aequus_store::{CheckpointState, PeerCursor};
use aequus_telemetry::{Counter, Gauge, Histogram, Telemetry, TraceCtx};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Why recovered store state could not be installed into a service. A
/// corrupt or mismatched checkpoint must degrade the site to snapshot
/// catch-up — never panic it.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The checkpoint was cut by a different site.
    SiteMismatch {
        /// This service's site.
        expected: SiteId,
        /// Site recorded in the checkpoint.
        found: SiteId,
    },
    /// The checkpoint's histogram slot duration differs from the configured
    /// one — its cell indices would land in the wrong slots.
    SlotMismatch {
        /// Configured slot duration.
        expected: f64,
        /// Slot duration recorded in the checkpoint.
        found: f64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::SiteMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to site {} (this is site {})",
                found.0, expected.0
            ),
            RecoveryError::SlotMismatch { expected, found } => write!(
                f,
                "checkpoint slot duration {found}s != configured {expected}s"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Minimum per-cell charge difference considered a real change; smaller
/// residues are floating-point noise and are neither published nor merged.
const CELL_EPS: f64 = 1e-12;

/// Pre-registered USS metric handles (all no-ops until
/// [`Uss::set_telemetry`] wires an enabled registry).
#[derive(Debug, Clone, Default)]
struct UssMetrics {
    telemetry: Telemetry,
    ingested: Counter,
    published: Counter,
    received: Counter,
    retries: Counter,
    gaps: Counter,
    resyncs: Counter,
    snapshots: Counter,
    duplicates: Counter,
    staleness: Gauge,
    h_ingest: Histogram,
    h_publish: Histogram,
    h_receive: Histogram,
}

impl UssMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            telemetry: t.clone(),
            ingested: t.counter("aequus_uss_records_ingested_total"),
            published: t.counter("aequus_uss_summaries_published_total"),
            received: t.counter("aequus_uss_summaries_received_total"),
            retries: t.counter("aequus_uss_retries_total"),
            gaps: t.counter("aequus_uss_seq_gaps_total"),
            resyncs: t.counter("aequus_uss_resyncs_total"),
            snapshots: t.counter("aequus_uss_snapshots_total"),
            duplicates: t.counter("aequus_uss_duplicates_total"),
            staleness: t.gauge("aequus_uss_peer_staleness_s"),
            h_ingest: t.histogram("aequus_uss_ingest_s"),
            h_publish: t.histogram("aequus_uss_publish_s"),
            h_receive: t.histogram("aequus_uss_receive_s"),
        }
    }
}

/// Publisher-side per-peer delivery state.
#[derive(Debug, Clone)]
struct PeerTx {
    /// Unacked published `(seq, published_at_s)` entries, oldest first. The
    /// publication timestamp turns the outbox head into the link's
    /// *undelivered-data age* — the health map's staleness signal: zero
    /// while everything is acked, growing while a peer is unreachable, and
    /// silent during quiescent drains (an empty outbox means the peer is
    /// missing nothing).
    outbox: VecDeque<(u64, f64)>,
    /// Earliest time the outbox may be (re)flushed.
    next_attempt_s: f64,
    /// Completed sends of the current outbox without a full ack — drives the
    /// exponential backoff; reset to zero once the outbox drains.
    attempts: u32,
    /// Cumulative retry sends to this peer (health map).
    retries: u64,
    /// Cumulative snapshot catch-ups sent to this peer (health map).
    snapshots: u64,
}

impl PeerTx {
    fn new() -> Self {
        Self {
            outbox: VecDeque::new(),
            next_attempt_s: f64::NEG_INFINITY,
            attempts: 0,
            retries: 0,
            snapshots: 0,
        }
    }
}

/// Receiver-side per-peer (per-link) gap-tracking state. Cell merge mirrors
/// live at the service level keyed by *origin* site ([`Uss`]), not here —
/// with hierarchical overlays the same origin's cells can arrive over
/// several links, and a per-link mirror would double-count them.
#[derive(Debug, Clone)]
struct PeerRx {
    /// Lowest sequence number not yet seen from this peer.
    next_expected: u64,
    /// Sequence numbers received above `next_expected` (out-of-order).
    seen_above: BTreeSet<u64>,
    /// Last time any data message from this peer arrived (staleness anchor);
    /// `NEG_INFINITY` until the first one.
    last_heard_s: f64,
    /// Cumulative sequence gaps detected on this link (health map).
    gaps: u64,
    /// Cumulative anti-entropy resyncs issued on this link (health map).
    resyncs: u64,
}

impl PeerRx {
    fn new() -> Self {
        Self {
            next_expected: 1,
            seen_above: BTreeSet::new(),
            last_heard_s: f64::NEG_INFINITY,
            gaps: 0,
            resyncs: 0,
        }
    }
}

/// Per-site usage statistics service.
#[derive(Debug, Clone)]
pub struct Uss {
    site: SiteId,
    mode: ParticipationMode,
    /// Usage executed on this site. Durable: survives [`Uss::crash`] — the
    /// paper's USS fronts the site's accounting database.
    local: UsageHistogram,
    /// Usage merged in from other sites' summaries. Volatile.
    remote: UsageHistogram,
    /// Absolute charge already published per (user, slot) — publications
    /// carry the absolute values of cells that changed against this mirror,
    /// so charge landing in old slots (a long job completing spreads usage
    /// back over its whole runtime) is still exchanged, and retransmissions
    /// are idempotent at receivers.
    published: BTreeMap<GridUser, BTreeMap<u64, f64>>,
    /// Sequence number the next published summary gets (1-based).
    next_seq: u64,
    /// Retained published summaries for anti-entropy resync (bounded by
    /// [`RetryPolicy::history_cap`]).
    history: VecDeque<UsageSummary>,
    /// Peers we deliver summaries to (sites that read global data).
    peers: Vec<SiteId>,
    /// Peers we expect summaries from (sites that contribute data) — the
    /// staleness and catch-up set.
    rx_peers: Vec<SiteId>,
    tx: BTreeMap<SiteId, PeerTx>,
    rx: BTreeMap<SiteId, PeerRx>,
    /// Absolute cumulative charge already merged per (user, slot), keyed by
    /// the **originating** site — the mirror the positive-delta merge
    /// compares against. Origin-scoped (not link-scoped): with hierarchical
    /// overlays the same origin's cells can arrive relayed over several
    /// links, and because origin values are monotone absolute cumulative
    /// charge, merging every path against one per-origin mirror collapses
    /// arbitrary path multiplicity to the same join.
    seen_by_origin: BTreeMap<SiteId, UserCells>,
    /// Forwarding-node state: per origin, the cells this node has already
    /// relayed in its own publications. Diffed against `seen_by_origin` at
    /// publish time to build the relayed sections. Deliberately *not*
    /// checkpointed — a recovered interior node re-relays its whole mirror
    /// once, which is idempotent at receivers.
    relay_published: BTreeMap<SiteId, UserCells>,
    /// Whether this node is an interior node of the overlay (Tree interior /
    /// Hub member) and must relay merged remote cells onward.
    forwarding: bool,
    /// Peers owed a [`UssMessage::SnapshotRequest`] on the next poll
    /// (crash-recovery catch-up).
    catchup_pending: BTreeSet<SiteId>,
    retry: RetryPolicy,
    stale_policy: StalePolicy,
    jitter: JitterRng,
    /// Whether the stale-data policy currently suppresses remote usage.
    remote_suppressed: bool,
    /// Count of records ingested (observability).
    records_ingested: u64,
    /// Count of summaries received from peers.
    summaries_received: u64,
    retries: u64,
    seq_gaps: u64,
    resyncs: u64,
    snapshots_sent: u64,
    duplicates: u64,
    /// Users whose usage changed since the UMS last drained this service —
    /// the head of the incremental dirty-set flow USS → UMS → FCS.
    dirty: DirtySet,
    /// Telemetry handles (no-ops until wired).
    metrics: UssMetrics,
    /// Trace context of the latest traced local ingest, consumed by the next
    /// publication so the outgoing summary joins the report's causal tree.
    pending_publish_ctx: Option<TraceCtx>,
    /// Per-sequence trace contexts of traced publications. Retries and
    /// resync answers of a sequence resend its *original* context, keeping
    /// delayed hops causally linked. Trimmed alongside the resync history.
    publish_trace: BTreeMap<u64, TraceCtx>,
    /// Context of the latest traced publication — stamped onto cumulative
    /// snapshots so snapshot catch-ups stay in a causal tree.
    latest_publish_ctx: Option<TraceCtx>,
    /// Trace context of the latest traced data change (local ingest or
    /// gossip merge), for the UMS→FCS→query pipeline to pick up.
    pending_pipeline_trace: Option<TraceCtx>,
}

/// Positive-delta merge of one origin's absolute cells against that
/// origin's mirror: cells whose value exceeds the mirrored value by more
/// than [`CELL_EPS`] raise the mirror and add the delta to the remote
/// histogram. Duplicates, reordering, overlapping resyncs, snapshots, and
/// multi-path relay all collapse to no-ops here. Returns the number of
/// cells that changed. (Free function over disjoint fields so callers can
/// hold other `Uss` borrows.)
fn merge_origin_cells(
    mirror: &mut UserCells,
    cells: &UserCells,
    remote: &mut UsageHistogram,
    dirty: &mut DirtySet,
) -> usize {
    let mut merged = 0usize;
    for (user, slots) in cells {
        let seen = mirror.entry(user.clone()).or_default();
        let mut user_changed = false;
        for (&slot, &value) in slots {
            let prev = seen.get(&slot).copied().unwrap_or(0.0);
            let delta = value - prev;
            if delta > CELL_EPS {
                seen.insert(slot, value);
                remote.add_charge(user, slot, delta);
                user_changed = true;
                merged += 1;
            }
        }
        if user_changed {
            dirty.mark_user(user.clone());
        }
    }
    merged
}

impl Uss {
    /// Create a USS with the given histogram slot duration.
    pub fn new(site: SiteId, mode: ParticipationMode, slot_s: f64) -> Self {
        Self {
            site,
            mode,
            local: UsageHistogram::new(slot_s),
            remote: UsageHistogram::new(slot_s),
            published: Default::default(),
            next_seq: 1,
            history: VecDeque::new(),
            peers: Vec::new(),
            rx_peers: Vec::new(),
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            seen_by_origin: BTreeMap::new(),
            relay_published: BTreeMap::new(),
            forwarding: false,
            catchup_pending: BTreeSet::new(),
            retry: RetryPolicy::default(),
            stale_policy: StalePolicy::default(),
            jitter: JitterRng::new(site.0 as u64),
            remote_suppressed: false,
            records_ingested: 0,
            summaries_received: 0,
            retries: 0,
            seq_gaps: 0,
            resyncs: 0,
            snapshots_sent: 0,
            duplicates: 0,
            dirty: DirtySet::new(),
            metrics: UssMetrics::default(),
            pending_publish_ctx: None,
            publish_trace: BTreeMap::new(),
            latest_publish_ctx: None,
            pending_pipeline_trace: None,
        }
    }

    /// Note the trace context of a just-ingested local record: the next
    /// publication is stamped with it, and the refresh pipeline picks it up
    /// through [`Uss::take_pipeline_trace`].
    pub fn note_ingest_trace(&mut self, ctx: TraceCtx) {
        self.pending_publish_ctx = Some(ctx);
        self.pending_pipeline_trace = Some(ctx);
    }

    /// Drain the trace context of the latest traced data change (local
    /// ingest or gossip merge) for the UMS/FCS refresh stages.
    pub fn take_pipeline_trace(&mut self) -> Option<TraceCtx> {
        self.pending_pipeline_trace.take()
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = UssMetrics::wire(t);
    }

    /// Duration of one usage-histogram slot in seconds.
    pub fn slot_duration(&self) -> f64 {
        self.local.slot_duration()
    }

    /// The owning site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Participation mode in the global exchange.
    pub fn mode(&self) -> ParticipationMode {
        self.mode
    }

    /// Register exchange peers: `tx_peers` receive this site's summaries,
    /// `rx_peers` are expected to publish to this site (staleness tracking
    /// and crash catch-up). The own site id is filtered from both. Without
    /// registered peers the USS runs in legacy broadcast mode: `publish`
    /// hands the summary to the caller and no retry state is kept.
    pub fn set_peers(&mut self, tx_peers: &[SiteId], rx_peers: &[SiteId]) {
        self.peers = tx_peers
            .iter()
            .copied()
            .filter(|p| *p != self.site)
            .collect();
        self.rx_peers = rx_peers
            .iter()
            .copied()
            .filter(|p| *p != self.site)
            .collect();
        for p in &self.peers {
            self.tx.entry(*p).or_insert_with(PeerTx::new);
        }
    }

    /// Number of registered delivery peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Configure retry/backoff/retention and reseed the jitter source.
    pub fn configure_reliability(&mut self, retry: RetryPolicy, jitter_seed: u64) {
        self.retry = retry;
        self.jitter = JitterRng::new(jitter_seed ^ ((self.site.0 as u64) << 32));
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Configure the stale-data policy.
    pub fn set_stale_policy(&mut self, policy: StalePolicy) {
        self.stale_policy = policy;
    }

    /// Mark this node as an overlay interior node: cells merged from other
    /// origins are re-published onward as relayed summary sections (per-hop
    /// aggregation for the Tree and Hub overlays).
    pub fn set_forwarding(&mut self, on: bool) {
        self.forwarding = on;
    }

    /// Whether this node relays merged remote data onward.
    pub fn forwarding(&self) -> bool {
        self.forwarding
    }

    /// Whether this node publishes summaries at all: sites that contribute
    /// their own usage, and overlay interior nodes (which must relay even
    /// when they have nothing of their own to say).
    fn publishes(&self) -> bool {
        self.mode.contributes() || self.forwarding
    }

    /// Ingest a locally completed job's usage record.
    pub fn ingest(&mut self, rec: &UsageRecord) {
        let _span = self.metrics.h_ingest.start_timer();
        debug_assert_eq!(rec.site, self.site, "record routed to wrong site");
        if rec.charge() > 0.0 {
            self.dirty.mark_user(rec.user.clone());
        }
        self.local.record(rec);
        self.records_ingested += 1;
        self.metrics.ingested.inc();
    }

    /// Diff the origin-scoped merge mirror against what this node has
    /// already relayed, producing (and recording) the relayed sections of
    /// the next publication. Empty unless the node forwards. Cells carry the
    /// origin's absolute cumulative values, so receivers merge them against
    /// the same per-origin mirror a direct delivery would hit — the
    /// open-slot holdback already happened at the origin and is not
    /// re-applied against this node's (possibly skewed) clock.
    fn collect_relay_sections(&mut self) -> BTreeMap<SiteId, UserCells> {
        let mut relayed: BTreeMap<SiteId, UserCells> = BTreeMap::new();
        if !self.forwarding {
            return relayed;
        }
        for (origin, users) in &self.seen_by_origin {
            let sent_users = self.relay_published.entry(*origin).or_default();
            let mut section: UserCells = BTreeMap::new();
            for (user, slots) in users {
                let sent = sent_users.entry(user.clone()).or_default();
                let mut cells = BTreeMap::new();
                for (&slot, &value) in slots {
                    let already = sent.get(&slot).copied().unwrap_or(0.0);
                    if value - already > CELL_EPS {
                        cells.insert(slot, value);
                        sent.insert(slot, value);
                    }
                }
                if !cells.is_empty() {
                    section.insert(user.clone(), cells);
                }
            }
            if !section.is_empty() {
                relayed.insert(*origin, section);
            }
        }
        relayed
    }

    /// Produce the next sequenced summary for exchange: the cells whose
    /// charge changed against the published mirror, carried as **absolute**
    /// cumulative values, over all closed slots (the slot containing `now_s`
    /// stays open and is held back until it closes). The summary is retained
    /// in the resync history and queued in every peer's outbox until that
    /// peer acknowledges it. Forwarding nodes additionally attach relayed
    /// sections (cells newly merged from other origins) and publish even
    /// when they have no local change of their own. Returns `None` when
    /// this site neither contributes usage data nor forwards, or nothing
    /// changed.
    pub fn publish(&mut self, now_s: f64) -> Option<UsageSummary> {
        let _span = self.metrics.h_publish.start_timer();
        if !self.publishes() {
            return None;
        }
        let current_slot = (now_s / self.local.slot_duration()).floor().max(0.0) as u64;
        let mut per_user: BTreeMap<GridUser, BTreeMap<u64, f64>> = Default::default();
        if self.mode.contributes() {
            let full = self.local.summary(self.site, 0);
            for (user, slots) in &full.per_user {
                let sent = self.published.entry(user.clone()).or_default();
                let mut cells = BTreeMap::new();
                for (&slot, &value) in slots {
                    if slot >= current_slot {
                        continue; // open slot: held back until closed
                    }
                    let already = sent.get(&slot).copied().unwrap_or(0.0);
                    if value - already > CELL_EPS {
                        cells.insert(slot, value);
                        sent.insert(slot, value);
                    }
                }
                if !cells.is_empty() {
                    per_user.insert(user.clone(), cells);
                }
            }
        }
        let relayed = self.collect_relay_sections();
        if per_user.is_empty() && relayed.is_empty() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let summary = UsageSummary {
            site: self.site,
            seq,
            slot_s: self.local.slot_duration(),
            per_user,
            relayed,
        };
        self.history.push_back(summary.clone());
        while self.history.len() > self.retry.history_cap.max(1) {
            self.history.pop_front();
        }
        if let Some(ingest_ctx) = self.pending_publish_ctx.take() {
            let site_id = self.site.0;
            if let Some(pub_ctx) =
                self.metrics
                    .telemetry
                    .child_span(Some(ingest_ctx), "uss.publish", now_s, || {
                        format!("site {site_id} published seq {seq}")
                    })
            {
                self.publish_trace.insert(seq, pub_ctx);
                self.latest_publish_ctx = Some(pub_ctx);
            }
        }
        if let Some(oldest) = self.history.front().map(|s| s.seq) {
            // Contexts for compacted sequences can no longer be resent.
            self.publish_trace.retain(|&q, _| q >= oldest);
        }
        for peer in &self.peers {
            let tx = self.tx.entry(*peer).or_insert_with(PeerTx::new);
            tx.outbox.push_back((seq, now_s));
            while tx.outbox.len() > self.retry.outbox_cap.max(1) {
                // Oldest unacked entry overflows; the receiver recovers it
                // through gap detection → resync (→ snapshot fallback).
                tx.outbox.pop_front();
            }
            if tx.attempts == 0 {
                // Nothing awaiting backoff: fresh data goes out immediately.
                tx.next_attempt_s = f64::NEG_INFINITY;
            }
        }
        self.metrics.published.inc();
        Some(summary)
    }

    /// Drain every message due for sending at `now_s`: pending crash
    /// catch-up requests, first sends of freshly published summaries, and
    /// backoff-expired retries of unacked ones. Each flush of a peer's
    /// outbox advances that peer's exponential backoff (with deterministic
    /// jitter); an ack resets it.
    pub fn poll(&mut self, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        let mut out = Vec::new();
        for peer in std::mem::take(&mut self.catchup_pending) {
            out.push((peer, UssMessage::SnapshotRequest { from: self.site }));
        }
        let peers: Vec<SiteId> = self.peers.clone();
        for peer in peers {
            let Some(tx) = self.tx.get(&peer) else {
                continue;
            };
            if tx.outbox.is_empty() || now_s < tx.next_attempt_s {
                continue;
            }
            let seqs: Vec<u64> = tx.outbox.iter().map(|&(seq, _)| seq).collect();
            let retrying = tx.attempts > 0;
            let mut sent = 0u64;
            let mut snapshots_now = 0u64;
            let mut evicted: Vec<u64> = Vec::new();
            for seq in seqs {
                match self.history.iter().find(|s| s.seq == seq) {
                    Some(s) => {
                        out.push((
                            peer,
                            UssMessage::Summary {
                                summary: s.clone(),
                                ctx: self.publish_trace.get(&seq).copied(),
                            },
                        ));
                        sent += 1;
                    }
                    None => evicted.push(seq),
                }
            }
            if !evicted.is_empty() {
                // History compacted past unacked entries: replace them with
                // one cumulative snapshot (idempotent, covers everything).
                out.push((
                    peer,
                    UssMessage::Snapshot {
                        summary: self.snapshot_summary(),
                        ctx: self.latest_publish_ctx,
                    },
                ));
                self.snapshots_sent += 1;
                self.metrics.snapshots.inc();
                snapshots_now += 1;
                sent += 1;
            }
            if retrying {
                self.retries += sent;
                self.metrics.retries.add(sent);
            }
            let unit = self.jitter.next_unit();
            // The entry was present at the top of the loop; re-check rather
            // than `expect` — a serving site must not panic on map state.
            if let Some(tx) = self.tx.get_mut(&peer) {
                tx.outbox.retain(|&(seq, _)| !evicted.contains(&seq));
                if retrying {
                    tx.retries += sent;
                }
                tx.snapshots += snapshots_now;
                tx.attempts += 1;
                tx.next_attempt_s = now_s + self.retry.backoff_s(tx.attempts, unit);
            }
        }
        out
    }

    /// Handle one incoming protocol message, returning the responses to
    /// route back (acks, resync pulls, resync answers, snapshots).
    pub fn receive_message(&mut self, msg: &UssMessage, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        match msg {
            UssMessage::Summary { summary, ctx } => self.apply_data(summary, *ctx, false, now_s),
            UssMessage::Snapshot { summary, ctx } => self.apply_data(summary, *ctx, true, now_s),
            UssMessage::Ack { from, seq } => {
                self.on_ack(*from, *seq);
                Vec::new()
            }
            UssMessage::Resync {
                from,
                from_seq,
                to_seq,
            } => self.on_resync(*from, *from_seq, *to_seq),
            UssMessage::SnapshotRequest { from } => {
                if !self.publishes() {
                    return Vec::new();
                }
                self.snapshots_sent += 1;
                self.metrics.snapshots.inc();
                self.tx.entry(*from).or_insert_with(PeerTx::new).snapshots += 1;
                vec![(
                    *from,
                    UssMessage::Snapshot {
                        summary: self.snapshot_summary(),
                        ctx: self.latest_publish_ctx,
                    },
                )]
            }
        }
    }

    /// Merge a summary received from a peer site. Ignored when this site does
    /// not read global data (contribute-only / local-only participation).
    /// Legacy broadcast entry point: protocol responses are discarded.
    pub fn receive(&mut self, summary: &UsageSummary) {
        self.receive_at(summary, -1.0);
    }

    /// [`Uss::receive`] with a domain timestamp for the gossip-merge event
    /// (the sim engine knows the delivery time; plain `receive` does not).
    pub fn receive_at(&mut self, summary: &UsageSummary, now_s: f64) {
        let _ = self.apply_data(summary, None, false, now_s);
    }

    fn apply_data(
        &mut self,
        s: &UsageSummary,
        ctx: Option<TraceCtx>,
        is_snapshot: bool,
        now_s: f64,
    ) -> Vec<(SiteId, UssMessage)> {
        let _span = self.metrics.h_receive.start_timer();
        if s.site == self.site {
            return Vec::new(); // never double-count our own data
        }
        let mut responses = Vec::new();
        if !is_snapshot && s.seq > 0 {
            // Acknowledge regardless of participation mode, so publishers
            // don't retry forever at sites that discard global data.
            responses.push((
                s.site,
                UssMessage::Ack {
                    from: self.site,
                    seq: s.seq,
                },
            ));
        }
        if !self.mode.reads_global() {
            return responses;
        }
        let rx = self.rx.entry(s.site).or_insert_with(PeerRx::new);
        rx.last_heard_s = rx.last_heard_s.max(now_s);
        // Idempotent merge: apply the positive delta of each absolute cell
        // against its *origin's* mirror — the publisher's own section under
        // the publisher's site, each relayed section under its recorded
        // origin. Duplicates, reordering, overlapping resyncs, snapshots,
        // and multi-path relay all collapse to no-ops here.
        let mut merged_cells = 0usize;
        for (origin, cells) in std::iter::once((&s.site, &s.per_user)).chain(s.relayed.iter()) {
            if *origin == self.site {
                continue; // a relay echoing our own data back
            }
            let mirror = self.seen_by_origin.entry(*origin).or_default();
            merged_cells += merge_origin_cells(mirror, cells, &mut self.remote, &mut self.dirty);
        }
        if merged_cells == 0 && !(s.per_user.is_empty() && s.relayed.is_empty()) {
            self.duplicates += 1;
            self.metrics.duplicates.inc();
        }
        if merged_cells > 0 {
            if let Some(parent) = ctx {
                // Cross-site causal link: the merge span's parent is the
                // publisher's `uss.publish` span (retries/resyncs/snapshots
                // all resend the original context, so the link survives
                // loss). Duplicate deliveries merge nothing and add no span.
                let (peer, seq) = (s.site.0, s.seq);
                let merge_ctx =
                    self.metrics
                        .telemetry
                        .child_span(Some(parent), "gossip.merge", now_s, || {
                            format!("merged seq {seq} from site {peer} ({merged_cells} cells)")
                        });
                self.pending_pipeline_trace = merge_ctx.or(self.pending_pipeline_trace);
            }
        }
        // Sequence bookkeeping: gap detection and anti-entropy pulls.
        if is_snapshot {
            // A snapshot covers everything up to its seq.
            if s.seq + 1 > rx.next_expected {
                rx.next_expected = s.seq + 1;
            }
            rx.seen_above.retain(|&q| q >= rx.next_expected);
            while rx.seen_above.remove(&rx.next_expected) {
                rx.next_expected += 1;
            }
        } else if s.seq > 0 {
            if s.seq >= rx.next_expected {
                rx.seen_above.insert(s.seq);
                while rx.seen_above.remove(&rx.next_expected) {
                    rx.next_expected += 1;
                }
                if rx.next_expected <= s.seq {
                    // Sequence gap: pull the missing range. Requesting a seq
                    // twice is harmless (merges are idempotent), so repeated
                    // gap hits double as resync retries.
                    let (from_seq, to_seq) = (rx.next_expected, s.seq - 1);
                    rx.gaps += 1;
                    rx.resyncs += 1;
                    self.seq_gaps += 1;
                    self.metrics.gaps.inc();
                    self.resyncs += 1;
                    self.metrics.resyncs.inc();
                    responses.push((
                        s.site,
                        UssMessage::Resync {
                            from: self.site,
                            from_seq,
                            to_seq,
                        },
                    ));
                }
            } else if s.seq == 1 && rx.next_expected > 2 {
                // The publisher restarted its numbering from scratch (crash
                // recovery); adopt it. The cell mirror is untouched, so the
                // republished history merges as no-ops.
                rx.next_expected = 2;
                rx.seen_above.clear();
            }
        }
        self.summaries_received += 1;
        self.metrics.received.inc();
        self.metrics.telemetry.event(now_s, "uss.gossip_merge", || {
            format!(
                "merged {} from site {} seq {} ({} users, {} relayed origins, {merged_cells} new cells)",
                if is_snapshot { "snapshot" } else { "summary" },
                s.site.0,
                s.seq,
                s.per_user.len(),
                s.relayed.len()
            )
        });
        responses
    }

    fn on_ack(&mut self, from: SiteId, seq: u64) {
        if let Some(tx) = self.tx.get_mut(&from) {
            if let Some(pos) = tx.outbox.iter().position(|&(q, _)| q == seq) {
                tx.outbox.remove(pos);
            }
            if tx.outbox.is_empty() {
                tx.attempts = 0;
                tx.next_attempt_s = f64::NEG_INFINITY;
            }
        }
    }

    fn on_resync(&mut self, from: SiteId, from_seq: u64, to_seq: u64) -> Vec<(SiteId, UssMessage)> {
        if !self.publishes() || to_seq < from_seq {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut missing = to_seq - from_seq + 1 > self.retry.history_cap.max(1) as u64;
        if !missing {
            for seq in from_seq..=to_seq {
                match self.history.iter().find(|s| s.seq == seq) {
                    Some(s) => out.push((
                        from,
                        UssMessage::Summary {
                            summary: s.clone(),
                            ctx: self.publish_trace.get(&seq).copied(),
                        },
                    )),
                    None => missing = true,
                }
            }
        }
        if missing {
            // History compacted past the requested range: cumulative
            // snapshot fallback.
            out.clear();
            out.push((
                from,
                UssMessage::Snapshot {
                    summary: self.snapshot_summary(),
                    ctx: self.latest_publish_ctx,
                },
            ));
            self.snapshots_sent += 1;
            self.metrics.snapshots.inc();
            self.tx.entry(from).or_insert_with(PeerTx::new).snapshots += 1;
        }
        out
    }

    /// Cumulative snapshot of everything published so far, carrying the
    /// latest sequence number (0 before any publication). Forwarding nodes
    /// attach their full origin-scoped mirror as relayed sections, so a
    /// snapshot from an overlay interior node also covers everything it has
    /// heard downstream — a crash-recovered leaf behind a hub catches up
    /// from the hub alone.
    fn snapshot_summary(&self) -> UsageSummary {
        UsageSummary {
            site: self.site,
            seq: self.next_seq - 1,
            slot_s: self.local.slot_duration(),
            per_user: self
                .published
                .iter()
                .filter(|(_, slots)| !slots.is_empty())
                .map(|(u, slots)| (u.clone(), slots.clone()))
                .collect(),
            relayed: if self.forwarding {
                self.seen_by_origin
                    .iter()
                    .filter(|(_, users)| !users.is_empty())
                    .map(|(origin, users)| (*origin, users.clone()))
                    .collect()
            } else {
                BTreeMap::new()
            },
        }
    }

    /// Refresh per-peer staleness (seconds since the freshest peer data,
    /// maxed over expected publishers), export it as the
    /// `aequus_uss_peer_staleness_s` gauge, and enforce the stale-data
    /// policy. Returns the maximum staleness. Users affected by a policy
    /// transition are marked dirty so the UMS/FCS pick the change up.
    pub fn update_staleness(&mut self, now_s: f64) -> f64 {
        if !self.mode.reads_global() || self.rx_peers.is_empty() {
            self.metrics.staleness.set(0.0);
            return 0.0;
        }
        let mut max_stale = 0.0f64;
        for peer in &self.rx_peers {
            let last = self
                .rx
                .get(peer)
                .map(|r| r.last_heard_s)
                .unwrap_or(f64::NEG_INFINITY);
            let stale = if last.is_finite() {
                (now_s - last).max(0.0)
            } else {
                // Never heard from this peer: stale since the epoch.
                now_s.max(0.0)
            };
            max_stale = max_stale.max(stale);
        }
        self.metrics.staleness.set(max_stale);
        let suppress = match self.stale_policy {
            StalePolicy::ServeStale => false,
            StalePolicy::LocalOnly { max_staleness_s } => max_stale > max_staleness_s,
        };
        if suppress != self.remote_suppressed {
            self.remote_suppressed = suppress;
            let users: Vec<GridUser> = self.remote.users().cloned().collect();
            for user in users {
                self.dirty.mark_user(user);
            }
            self.metrics.telemetry.event(now_s, "uss.stale_policy", || {
                if suppress {
                    format!("remote usage suppressed (peer staleness {max_stale:.0}s)")
                } else {
                    "remote usage restored".to_string()
                }
            });
        }
        max_stale
    }

    /// Whether the stale-data policy currently suppresses remote usage.
    pub fn remote_suppressed(&self) -> bool {
        self.remote_suppressed
    }

    /// Site crash: wipe all volatile exchange state. The local histogram
    /// (backed by the accounting database), the publish cursor (stored
    /// alongside it — reusing sequence numbers after a crash would let a
    /// stale in-flight ack from the old numbering cancel a new unacked
    /// summary, silently losing the republished history), the participation
    /// config, and the peer registration survive. The cleared published
    /// mirror makes the next publication re-emit all closed slots as
    /// absolute values — idempotent at receivers thanks to their cell
    /// mirrors, and any seq gap peers see across the crash resolves through
    /// resync → snapshot fallback (the retained history is volatile).
    pub fn crash(&mut self) {
        self.remote = UsageHistogram::new(self.local.slot_duration());
        self.published.clear();
        self.history.clear();
        self.rx.clear();
        self.seen_by_origin.clear();
        self.relay_published.clear();
        for tx in self.tx.values_mut() {
            *tx = PeerTx::new();
        }
        self.catchup_pending.clear();
        self.dirty = DirtySet::new();
        self.remote_suppressed = false;
        self.pending_publish_ctx = None;
        self.publish_trace.clear();
        self.latest_publish_ctx = None;
        self.pending_pipeline_trace = None;
    }

    /// Crash recovery: schedule a [`UssMessage::SnapshotRequest`] to every
    /// expected publisher on the next poll, pulling back the remote state
    /// lost in the crash. Self-healing even if a request is dropped — the
    /// next regular summary from that peer trips gap detection instead.
    pub fn request_catchup(&mut self) {
        self.catchup_pending = self.rx_peers.iter().copied().collect();
    }

    /// Site crash in durable-store mode: in addition to [`Uss::crash`], the
    /// local histogram and ingest counter are wiped. Without a store the
    /// sim models them as surviving in an external accounting database;
    /// with a store attached they are honestly volatile and rebuilt from
    /// checkpoint + WAL replay. The publish cursor still survives — it is
    /// modeled as fsynced alongside every publication (reusing sequence
    /// numbers would let stale in-flight acks cancel new summaries), and
    /// journaled [`aequus_store::WalRecord::Publish`] records replay it as
    /// belt and braces.
    pub fn crash_volatile(&mut self) {
        self.crash();
        self.local = UsageHistogram::new(self.local.slot_duration());
        self.records_ingested = 0;
    }

    /// Export everything the durable store checkpoints for this service:
    /// the local histogram cells (full `f64` bits — local recovery is
    /// bitwise exact), ingest/publish counters, the per-peer sequence
    /// cursors, and the origin-scoped absolute-cell merge mirrors. The
    /// relay-published mirror is deliberately excluded — a recovered
    /// forwarding node re-relays its whole mirror once, idempotently. `lsn`
    /// is the WAL position the snapshot covers; the UMS fields are left
    /// empty for the site to fill in ([`crate::ums::Ums::export_state`]).
    pub fn export_checkpoint(&self, lsn: u64, taken_s: f64) -> CheckpointState {
        CheckpointState {
            lsn,
            taken_s,
            site: self.site,
            slot_s: self.local.slot_duration(),
            local_cells: self.local.summary(self.site, 0).per_user,
            records_ingested: self.records_ingested,
            next_seq: self.next_seq,
            peers: self
                .rx
                .iter()
                .map(|(site, rx)| {
                    (
                        *site,
                        PeerCursor {
                            next_expected: rx.next_expected,
                        },
                    )
                })
                .collect(),
            origin_cells: self.seen_by_origin.clone(),
            ums_epoch_s: None,
            ums_cached: BTreeMap::new(),
            dirty_users: if self.dirty.is_all() {
                None
            } else {
                Some(self.dirty.users().cloned().collect())
            },
        }
    }

    /// Install a recovered checkpoint: rebuild the local histogram from its
    /// cells (bitwise exact — the cells are the accumulated values), restore
    /// the per-peer sequence cursors and the origin-scoped merge mirrors,
    /// rebuild the remote view from the mirrors, and re-mark the dirty
    /// users that were pending at checkpoint time. WAL records past
    /// `checkpoint.lsn` must then be re-applied via the `replay_*` methods.
    pub fn install_checkpoint(&mut self, ckpt: &CheckpointState) -> Result<(), RecoveryError> {
        if ckpt.site != self.site {
            return Err(RecoveryError::SiteMismatch {
                expected: self.site,
                found: ckpt.site,
            });
        }
        let slot_s = self.local.slot_duration();
        if (ckpt.slot_s - slot_s).abs() > 1e-9 {
            return Err(RecoveryError::SlotMismatch {
                expected: slot_s,
                found: ckpt.slot_s,
            });
        }
        self.local = UsageHistogram::new(slot_s);
        for (user, slots) in &ckpt.local_cells {
            for (&slot, &charge) in slots {
                self.local.add_charge(user, slot, charge);
            }
        }
        self.records_ingested = ckpt.records_ingested;
        self.next_seq = self.next_seq.max(ckpt.next_seq);
        self.remote = UsageHistogram::new(slot_s);
        self.rx.clear();
        for (site, cursor) in &ckpt.peers {
            let mut rx = PeerRx::new();
            rx.next_expected = cursor.next_expected;
            self.rx.insert(*site, rx);
        }
        self.seen_by_origin = ckpt.origin_cells.clone();
        self.relay_published.clear();
        for users in ckpt.origin_cells.values() {
            for (user, slots) in users {
                for (&slot, &charge) in slots {
                    self.remote.add_charge(user, slot, charge);
                }
            }
        }
        match &ckpt.dirty_users {
            None => self.dirty.mark_all(),
            Some(users) => {
                for user in users {
                    self.dirty.mark_user(user.clone());
                }
            }
        }
        Ok(())
    }

    /// Re-apply a journaled local usage record during store recovery:
    /// [`Uss::ingest`] minus telemetry — the original ingest already
    /// counted, and replay must not inflate the monotone series.
    pub fn replay_ingest(&mut self, rec: &UsageRecord) {
        if rec.charge() > 0.0 {
            self.dirty.mark_user(rec.user.clone());
        }
        self.local.record(rec);
        self.records_ingested += 1;
    }

    /// Re-apply journaled peer exchange data during store recovery: the
    /// same positive-delta merge and cursor bookkeeping as the live path,
    /// but silent — no acks (the peer collected them before the crash), no
    /// resync pulls (post-recovery catch-up covers any still-open gap), and
    /// no telemetry.
    pub fn replay_peer_data(&mut self, s: &UsageSummary, is_snapshot: bool) {
        if s.site == self.site || !self.mode.reads_global() {
            return;
        }
        let rx = self.rx.entry(s.site).or_insert_with(PeerRx::new);
        for (origin, cells) in std::iter::once((&s.site, &s.per_user)).chain(s.relayed.iter()) {
            if *origin == self.site {
                continue;
            }
            let mirror = self.seen_by_origin.entry(*origin).or_default();
            merge_origin_cells(mirror, cells, &mut self.remote, &mut self.dirty);
        }
        if is_snapshot {
            if s.seq + 1 > rx.next_expected {
                rx.next_expected = s.seq + 1;
            }
            rx.seen_above.retain(|&q| q >= rx.next_expected);
            while rx.seen_above.remove(&rx.next_expected) {
                rx.next_expected += 1;
            }
        } else if s.seq > 0 {
            if s.seq >= rx.next_expected {
                rx.seen_above.insert(s.seq);
                while rx.seen_above.remove(&rx.next_expected) {
                    rx.next_expected += 1;
                }
            } else if s.seq == 1 && rx.next_expected > 2 {
                rx.next_expected = 2;
                rx.seen_above.clear();
            }
        }
    }

    /// Re-apply a journaled publish-sequence advance: the cursor only moves
    /// forward, so replay after a partially-journaled run never rewinds it.
    pub fn replay_publish_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq + 1);
    }

    /// Per-user decayed usage as the UMS consumes it: local plus (when the
    /// mode reads global data and the stale policy permits) remote.
    pub fn decayed_usage(
        &self,
        now_s: f64,
        decay: aequus_core::DecayPolicy,
    ) -> std::collections::BTreeMap<GridUser, f64> {
        let mut usage = self.local.decayed_all(now_s, decay);
        if self.mode.reads_global() && !self.remote_suppressed {
            for (user, value) in self.remote.decayed_all(now_s, decay) {
                *usage.entry(user).or_insert(0.0) += value;
            }
        }
        usage
    }

    /// Usage of one user weighted relative to a fixed reference epoch
    /// (separable decays; see [`aequus_core::DecayPolicy::epoch_weight`]):
    /// local plus, when the mode reads global data and the stale policy
    /// permits, remote.
    pub fn epoch_usage_of(
        &self,
        user: &GridUser,
        epoch_s: f64,
        decay: aequus_core::DecayPolicy,
    ) -> f64 {
        let mut value = self.local.epoch_usage(user, epoch_s, decay);
        if self.mode.reads_global() && !self.remote_suppressed {
            value += self.remote.epoch_usage(user, epoch_s, decay);
        }
        value
    }

    /// All users with any recorded usage (local, plus remote when the mode
    /// reads global data and the stale policy permits).
    pub fn known_users(&self) -> std::collections::BTreeSet<GridUser> {
        let mut users: std::collections::BTreeSet<GridUser> = self.local.users().cloned().collect();
        if self.mode.reads_global() && !self.remote_suppressed {
            users.extend(self.remote.users().cloned());
        }
        users
    }

    /// This site's raw (undecayed) per-user view of grid usage: local charge
    /// plus, when the mode reads global data and the stale policy permits,
    /// merged remote charge. The chaos suite's convergence invariant
    /// compares these views across sites.
    pub fn grid_view(&self) -> BTreeMap<GridUser, f64> {
        let mut view: BTreeMap<GridUser, f64> = self
            .local
            .users()
            .map(|u| (u.clone(), self.local.raw_usage(u)))
            .collect();
        if self.mode.reads_global() && !self.remote_suppressed {
            for user in self.remote.users() {
                *view.entry(user.clone()).or_insert(0.0) += self.remote.raw_usage(user);
            }
        }
        view
    }

    /// Raw local charge of one user (test/metrics access).
    pub fn local_usage_of(&self, user: &GridUser) -> f64 {
        self.local.raw_usage(user)
    }

    /// Raw merged remote charge of one user (test/metrics access).
    pub fn remote_usage_of(&self, user: &GridUser) -> f64 {
        self.remote.raw_usage(user)
    }

    /// Drain the set of users whose usage changed since the last drain.
    pub fn take_dirty(&mut self) -> DirtySet {
        self.dirty.take()
    }

    /// Users dirty since the last drain (inspection).
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Total local usage recorded (conservation checks / metrics).
    pub fn local_total(&self) -> f64 {
        self.local.total_recorded()
    }

    /// Total remote usage merged in.
    pub fn remote_total(&self) -> f64 {
        self.remote.total_recorded()
    }

    /// Records ingested so far.
    pub fn records_ingested(&self) -> u64 {
        self.records_ingested
    }

    /// Sequence number the next publication will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Summaries received so far.
    pub fn summaries_received(&self) -> u64 {
        self.summaries_received
    }

    /// Summaries re-sent after a missing ack.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sequence gaps detected in peers' summary streams.
    pub fn seq_gaps(&self) -> u64 {
        self.seq_gaps
    }

    /// Anti-entropy resync pulls issued.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Cumulative snapshots sent (resync fallback + catch-up answers).
    pub fn snapshots_sent(&self) -> u64 {
        self.snapshots_sent
    }

    /// Incoming data messages that merged nothing new.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Unacked summaries queued for `peer` (test inspection).
    pub fn outbox_depth(&self, peer: SiteId) -> usize {
        self.tx.get(&peer).map_or(0, |t| t.outbox.len())
    }

    /// Per-link health rows at `now_s`: one tx-side row per delivery peer
    /// and one rx-side row per expected publisher. The tx staleness signal
    /// is the **undelivered-data age** — `now` minus the publication time
    /// of the oldest unacked outbox entry, zero when the outbox is empty —
    /// so it grows only while a peer actually misses data and stays silent
    /// through quiescent drains. Wire bytes/message counts and overlay
    /// depths are filled in by the sim shard, which owns the wire
    /// accounting.
    pub fn link_stats(&self, now_s: f64) -> Vec<LinkObservation> {
        let mut out = Vec::with_capacity(self.peers.len() + self.rx_peers.len());
        for peer in &self.peers {
            let mut row = LinkObservation::tx(self.site.0, peer.0, 0);
            if let Some(tx) = self.tx.get(peer) {
                row.staleness_s = tx
                    .outbox
                    .front()
                    .map_or(0.0, |&(_, published_s)| (now_s - published_s).max(0.0));
                row.outbox = tx.outbox.len();
                row.retries = tx.retries;
                row.snapshots = tx.snapshots;
            }
            out.push(row);
        }
        for peer in &self.rx_peers {
            let mut row = LinkObservation::rx(peer.0, self.site.0, 0);
            match self.rx.get(peer) {
                Some(rx) => {
                    row.heard_age_s = if rx.last_heard_s.is_finite() {
                        (now_s - rx.last_heard_s).max(0.0)
                    } else {
                        now_s.max(0.0)
                    };
                    row.gaps = rx.gaps;
                    row.resyncs = rx.resyncs;
                }
                None => row.heard_age_s = now_s.max(0.0),
            }
            out.push(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::ids::JobId;
    use aequus_core::DecayPolicy;

    fn rec(site: u32, user: &str, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(0),
            user: GridUser::new(user),
            site: SiteId(site),
            cores: 1,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn publish_excludes_open_slot() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 50.0)); // slot 0
        uss.ingest(&rec(0, "a", 110.0, 120.0)); // slot 1 (open at t=150)
        let s = uss.publish(150.0).unwrap();
        assert!((s.total() - 50.0).abs() < 1e-9, "only slot 0 published");
        assert_eq!(s.seq, 1);
        // Slot 1 closes once now_s reaches slot 2.
        let s2 = uss.publish(250.0).unwrap();
        assert!((s2.total() - 10.0).abs() < 1e-9);
        assert_eq!(s2.seq, 2);
        // Nothing further.
        assert!(uss.publish(300.0).is_none());
    }

    #[test]
    fn no_double_publish() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let s1 = uss.publish(200.0).unwrap();
        assert!((s1.total() - 80.0).abs() < 1e-9);
        assert!(uss.publish(200.0).is_none(), "cursor advanced");
    }

    #[test]
    fn late_charge_republishes_absolute_cell() {
        // A long job completing spreads charge back into an already
        // published slot; the next summary carries the new absolute value
        // and a receiver merges exactly the delta.
        let mut a = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        let mut b = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        a.ingest(&rec(0, "u", 0.0, 50.0));
        b.receive(&a.publish(200.0).unwrap());
        a.ingest(&rec(0, "u", 50.0, 90.0)); // lands in the published slot 0
        let s = a.publish(200.0).unwrap();
        assert!((s.total() - 90.0).abs() < 1e-9, "absolute cell value");
        b.receive(&s);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn read_only_site_never_publishes() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::ReadOnly, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        assert!(uss.publish(500.0).is_none());
        // But it merges incoming data.
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        peer.ingest(&rec(1, "b", 0.0, 40.0));
        let s = peer.publish(500.0).unwrap();
        uss.receive(&s);
        assert_eq!(uss.summaries_received(), 1);
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!((usage[&GridUser::new("b")] - 40.0).abs() < 1e-9);
        assert!((usage[&GridUser::new("a")] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn local_only_site_ignores_incoming() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::LocalOnly, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        peer.ingest(&rec(1, "b", 0.0, 40.0));
        let s = peer.publish(500.0).unwrap();
        uss.receive(&s);
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!(
            !usage.contains_key(&GridUser::new("b")),
            "global data ignored"
        );
        // But it still contributes its own data outward.
        assert!(uss.publish(500.0).is_some());
    }

    #[test]
    fn local_only_site_still_acknowledges() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::LocalOnly, 100.0);
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        peer.ingest(&rec(1, "b", 0.0, 40.0));
        let s = peer.publish(500.0).unwrap();
        let responses = uss.receive_message(
            &UssMessage::Summary {
                summary: s,
                ctx: None,
            },
            500.0,
        );
        assert!(
            matches!(
                responses.as_slice(),
                [(
                    SiteId(1),
                    UssMessage::Ack {
                        from: SiteId(0),
                        seq: 1
                    }
                )]
            ),
            "{responses:?}"
        );
    }

    #[test]
    fn own_summaries_never_double_counted() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        uss.ingest(&rec(0, "a", 0.0, 80.0));
        let s = uss.publish(500.0).unwrap();
        uss.receive(&s); // echoed back (e.g. broadcast bus)
        let usage = uss.decayed_usage(500.0, DecayPolicy::None);
        assert!((usage[&GridUser::new("a")] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_deliveries_merge_once() {
        let mut a = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        let mut b = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        a.ingest(&rec(0, "u", 0.0, 80.0));
        let s = a.publish(500.0).unwrap();
        b.receive(&s);
        b.receive(&s);
        b.receive(&s);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        assert_eq!(b.duplicates(), 2);
    }

    #[test]
    fn decay_applied_to_both_sources() {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 10.0);
        uss.ingest(&rec(0, "a", 0.0, 10.0));
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 10.0);
        peer.ingest(&rec(1, "a", 0.0, 10.0));
        uss.receive(&peer.publish(100.0).unwrap());
        let fresh = uss.decayed_usage(10.0, DecayPolicy::Exponential { half_life_s: 20.0 });
        let stale = uss.decayed_usage(1000.0, DecayPolicy::Exponential { half_life_s: 20.0 });
        assert!(fresh[&GridUser::new("a")] > stale[&GridUser::new("a")]);
    }

    // --- reliability layer ---

    fn reliable_pair() -> (Uss, Uss) {
        let mut a = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        let mut b = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        let peers = [SiteId(0), SiteId(1)];
        a.set_peers(&peers, &peers);
        b.set_peers(&peers, &peers);
        let retry = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 40.0,
            jitter_frac: 0.0,
            history_cap: 8,
            outbox_cap: 8,
        };
        a.configure_reliability(retry, 1);
        b.configure_reliability(retry, 2);
        (a, b)
    }

    /// Deliver `msgs` to whichever of the two ends each is addressed to,
    /// feeding responses back until the exchange is quiet.
    fn drain(a: &mut Uss, b: &mut Uss, mut msgs: Vec<(SiteId, UssMessage)>, now_s: f64) {
        while !msgs.is_empty() {
            let mut next = Vec::new();
            for (dest, msg) in msgs {
                let target: &mut Uss = if dest == a.site() { a } else { b };
                next.extend(target.receive_message(&msg, now_s));
            }
            msgs = next;
        }
    }

    #[test]
    fn dropped_summary_is_retried_not_lost() {
        // The silent-loss regression: a published-but-dropped summary must
        // be re-sent after the ack timeout, not forgotten.
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        assert!(a.publish(200.0).is_some());
        let first = a.poll(200.0);
        assert_eq!(first.len(), 1, "initial send");
        // Drop it on the floor. Before the ack timeout nothing is re-sent.
        assert!(a.poll(205.0).is_empty(), "backoff holds");
        assert_eq!(a.outbox_depth(SiteId(1)), 1, "still owed");
        // After the timeout the retry fires and the data arrives intact.
        let retry = a.poll(211.0);
        assert_eq!(retry.len(), 1, "retried");
        assert!(a.retries() >= 1);
        drain(&mut a, &mut b, retry, 211.0);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        // The ack cleared the outbox; nothing further is sent.
        assert_eq!(a.outbox_depth(SiteId(1)), 0);
        assert!(a.poll(500.0).is_empty());
    }

    #[test]
    fn link_stats_report_undelivered_data_age() {
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(200.0);
        let sent = a.poll(200.0);
        // The summary is in flight but unacked: staleness is the age of the
        // oldest undelivered publish, measured at the asking clock.
        let tx = a
            .link_stats(260.0)
            .into_iter()
            .find(|o| o.to == 1 && o.heard_age_s < 0.0)
            .expect("tx row for peer 1");
        assert!((tx.staleness_s - 60.0).abs() < 1e-9);
        assert_eq!(tx.outbox, 1);
        drain(&mut a, &mut b, sent, 261.0);
        // Once acked the outbox drains and the link reads fresh again, even
        // if no new data has been published since (quiescent != stale).
        let tx = a
            .link_stats(1000.0)
            .into_iter()
            .find(|o| o.to == 1 && o.heard_age_s < 0.0)
            .expect("tx row for peer 1");
        assert_eq!(tx.staleness_s, 0.0);
        assert_eq!(tx.outbox, 0);
        // The receiving side reports how long since it last heard from us.
        let rx = b
            .link_stats(300.0)
            .into_iter()
            .find(|o| o.from == 0 && o.staleness_s < 0.0)
            .expect("rx row for peer 0");
        assert!((rx.heard_age_s - 39.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_grows_until_ack_then_resets() {
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 50.0));
        a.publish(200.0);
        assert_eq!(a.poll(200.0).len(), 1); // attempt 1 → next at +10
        assert_eq!(a.poll(210.0).len(), 1); // attempt 2 → next at +20
        assert!(a.poll(225.0).is_empty(), "within doubled backoff");
        let third = a.poll(230.0);
        assert_eq!(third.len(), 1); // attempt 3
        drain(&mut a, &mut b, third, 230.0);
        // Fresh data after the ack goes out immediately again.
        a.ingest(&rec(0, "u", 110.0, 150.0));
        a.publish(400.0);
        assert_eq!(a.poll(400.0).len(), 1, "backoff reset by ack");
    }

    #[test]
    fn gap_triggers_resync_and_recovers() {
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        let s1 = a.publish(200.0).unwrap();
        a.ingest(&rec(0, "u", 110.0, 160.0));
        let s2 = a.publish(300.0).unwrap();
        assert_eq!((s1.seq, s2.seq), (1, 2));
        // s1 is lost; s2 arrives and exposes the gap.
        let responses = b.receive_message(
            &UssMessage::Summary {
                summary: s2,
                ctx: None,
            },
            300.0,
        );
        assert_eq!(b.seq_gaps(), 1);
        let resync = responses
            .iter()
            .find(|(_, m)| matches!(m, UssMessage::Resync { .. }))
            .expect("gap must trigger a resync pull");
        assert!(matches!(
            resync.1,
            UssMessage::Resync {
                from_seq: 1,
                to_seq: 1,
                ..
            }
        ));
        // The pull re-syncs the missing range from a's history.
        drain(&mut a, &mut b, responses, 300.0);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 130.0).abs() < 1e-9);
        assert_eq!(b.resyncs(), 1);
    }

    #[test]
    fn compacted_history_falls_back_to_snapshot() {
        let (mut a, mut b) = reliable_pair();
        let retry = RetryPolicy {
            history_cap: 1,
            jitter_frac: 0.0,
            ..*a.retry_policy()
        };
        a.configure_reliability(retry, 1);
        // Three publishes; history retains only the last.
        for (i, t) in [200.0, 300.0, 400.0].into_iter().enumerate() {
            a.ingest(&rec(0, "u", i as f64 * 100.0, i as f64 * 100.0 + 50.0));
            a.publish(t).unwrap();
        }
        // b sees only seq 3 → gap [1,2]; a's history lost seqs 1-2, so the
        // pull is answered with a cumulative snapshot.
        let s3 = a.history.back().unwrap().clone();
        let responses = b.receive_message(
            &UssMessage::Summary {
                summary: s3,
                ctx: None,
            },
            400.0,
        );
        drain(&mut a, &mut b, responses, 400.0);
        assert!(a.snapshots_sent() >= 1, "snapshot fallback used");
        assert!((b.remote_usage_of(&GridUser::new("u")) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn crash_recovery_converges_via_catchup() {
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        b.ingest(&rec(1, "v", 0.0, 60.0));
        a.publish(200.0);
        b.publish(200.0);
        let mut msgs = a.poll(200.0);
        msgs.extend(b.poll(200.0));
        drain(&mut a, &mut b, msgs, 200.0);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        // b crashes: remote view wiped, then recovery pulls a snapshot.
        b.crash();
        assert_eq!(b.remote_usage_of(&GridUser::new("u")), 0.0);
        b.request_catchup();
        let msgs = b.poll(300.0);
        assert!(
            matches!(
                msgs.as_slice(),
                [(SiteId(0), UssMessage::SnapshotRequest { .. })]
            ),
            "{msgs:?}"
        );
        drain(&mut a, &mut b, msgs, 300.0);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        // b's own durable local data republishes under fresh seqs; a's cell
        // mirror makes the re-publication a no-op.
        assert!(b.publish(300.0).is_some(), "published mirror was wiped");
        let msgs = b.poll(300.0);
        drain(&mut a, &mut b, msgs, 300.0);
        assert!((a.remote_usage_of(&GridUser::new("v")) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stale_ack_across_crash_cannot_cancel_republication() {
        // Regression: the publish cursor must survive a crash. If seqs
        // restarted at 1, an ack for the *old* seq 1 still in flight at
        // crash time would cancel the *new* seq-1 summary (the full
        // republished history) while the network drops it — and with the
        // published mirror already advanced, that data would never be sent
        // again.
        let (mut a, mut b) = reliable_pair();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        let pre = a.publish(200.0).expect("summary");
        assert_eq!(pre.seq, 1);
        a.poll(200.0); // old seq-1 summary leaves; its ack will arrive late
        a.crash();
        a.ingest(&rec(0, "u", 210.0, 250.0));
        let post = a.publish(300.0).expect("republication");
        assert!(post.seq > pre.seq, "crash must not reuse sequence numbers");
        a.poll(300.0); // post-crash summary leaves and is dropped
                       // The stale ack from the pre-crash numbering lands now.
        a.receive_message(
            &UssMessage::Ack {
                from: SiteId(1),
                seq: pre.seq,
            },
            310.0,
        );
        assert_eq!(
            a.outbox_depth(SiteId(1)),
            1,
            "stale ack must not cancel the unacked republication"
        );
        // The retry (after backoff) really does re-deliver everything.
        let msgs = a.poll(400.0);
        assert!(!msgs.is_empty(), "republication retried");
        drain(&mut a, &mut b, msgs, 400.0);
        assert!((b.remote_usage_of(&GridUser::new("u")) - 120.0).abs() < 1e-9);
        assert!(a.retries() > 0);
    }

    #[test]
    fn stale_policy_degrades_to_local_only_and_restores() {
        let (mut a, mut b) = reliable_pair();
        b.set_stale_policy(StalePolicy::LocalOnly {
            max_staleness_s: 100.0,
        });
        b.ingest(&rec(1, "v", 0.0, 30.0));
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(200.0);
        let msgs = a.poll(200.0);
        drain(&mut a, &mut b, msgs, 200.0);
        b.update_staleness(250.0);
        assert!(!b.remote_suppressed());
        assert!(b.grid_view().contains_key(&GridUser::new("u")));
        // Peer goes silent past the threshold: remote weighting suppressed.
        b.update_staleness(400.0);
        assert!(b.remote_suppressed());
        assert!(!b.grid_view().contains_key(&GridUser::new("u")));
        assert!(
            !b.decayed_usage(400.0, DecayPolicy::None)
                .contains_key(&GridUser::new("u")),
            "UMS-facing usage is local-only while degraded"
        );
        // Fresh data from the peer restores the global view.
        a.ingest(&rec(0, "u", 110.0, 150.0));
        a.publish(500.0);
        let msgs = a.poll(500.0);
        drain(&mut a, &mut b, msgs, 500.0);
        b.update_staleness(505.0);
        assert!(!b.remote_suppressed());
        assert!((b.grid_view()[&GridUser::new("u")] - 120.0).abs() < 1e-9);
    }

    #[test]
    fn outbox_overflow_drops_oldest_but_converges_via_resync() {
        let (mut a, mut b) = reliable_pair();
        let retry = RetryPolicy {
            outbox_cap: 2,
            history_cap: 2,
            jitter_frac: 0.0,
            ..*a.retry_policy()
        };
        a.configure_reliability(retry, 1);
        for i in 0..5 {
            a.ingest(&rec(0, "u", i as f64 * 100.0, i as f64 * 100.0 + 50.0));
            a.publish(100.0 * (i + 2) as f64).unwrap();
        }
        assert_eq!(a.outbox_depth(SiteId(1)), 2, "bounded outbox");
        let msgs = a.poll(700.0);
        drain(&mut a, &mut b, msgs, 700.0);
        assert!(
            (b.remote_usage_of(&GridUser::new("u")) - 250.0).abs() < 1e-9,
            "gap → resync → snapshot recovered the overflowed entries"
        );
    }

    // --- overlay relay (per-hop aggregation) ---

    /// Three sites in a line: 0 — 1 — 2, with site 1 forwarding. Sites 0
    /// and 2 are not linked; their data must cross the interior node.
    fn relay_chain() -> (Uss, Uss, Uss) {
        let mut a = Uss::new(SiteId(0), ParticipationMode::Full, 100.0);
        let mut h = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        let mut c = Uss::new(SiteId(2), ParticipationMode::Full, 100.0);
        a.set_peers(&[SiteId(1)], &[SiteId(1)]);
        h.set_peers(&[SiteId(0), SiteId(2)], &[SiteId(0), SiteId(2)]);
        c.set_peers(&[SiteId(1)], &[SiteId(1)]);
        h.set_forwarding(true);
        let retry = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 40.0,
            jitter_frac: 0.0,
            history_cap: 8,
            outbox_cap: 8,
        };
        a.configure_reliability(retry, 1);
        h.configure_reliability(retry, 2);
        c.configure_reliability(retry, 3);
        (a, h, c)
    }

    /// Route messages between the three chain nodes until quiet, then let
    /// the forwarder publish/poll its relay sections and route again.
    fn pump_chain(a: &mut Uss, h: &mut Uss, c: &mut Uss, now_s: f64) {
        for _ in 0..4 {
            let mut msgs: Vec<(SiteId, UssMessage)> = Vec::new();
            msgs.extend(a.poll(now_s));
            h.publish(now_s); // relay pass: diff seen_by_origin vs relayed
            msgs.extend(h.poll(now_s));
            msgs.extend(c.poll(now_s));
            while !msgs.is_empty() {
                let mut next = Vec::new();
                for (dest, msg) in msgs {
                    let target: &mut Uss = match dest.0 {
                        0 => a,
                        1 => h,
                        _ => c,
                    };
                    next.extend(target.receive_message(&msg, now_s));
                }
                msgs = next;
            }
        }
    }

    #[test]
    fn interior_node_relays_leaf_data_across_the_chain() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        c.ingest(&rec(2, "w", 0.0, 40.0));
        a.publish(500.0);
        c.publish(500.0);
        pump_chain(&mut a, &mut h, &mut c, 500.0);
        // Every node sees all data despite 0 and 2 never talking directly.
        for (uss, who) in [(&a, "a"), (&h, "hub"), (&c, "c")] {
            let view = uss.grid_view();
            assert!((view[&GridUser::new("u")] - 80.0).abs() < 1e-9, "{who}");
            assert!((view[&GridUser::new("w")] - 40.0).abs() < 1e-9, "{who}");
        }
        // The relay echoed site 0's data back to site 0 (the hub publishes
        // one summary to all neighbors) — it must not double-count.
        assert!((a.remote_usage_of(&GridUser::new("u")) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn relay_sections_are_incremental_and_idempotent() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(500.0);
        pump_chain(&mut a, &mut h, &mut c, 500.0);
        // A second relay pass with nothing new publishes nothing.
        assert!(h.publish(600.0).is_none(), "no new cells: no relay traffic");
        // More data at the origin relays only the delta.
        a.ingest(&rec(0, "u", 110.0, 150.0));
        a.publish(700.0);
        pump_chain(&mut a, &mut h, &mut c, 700.0);
        assert!((c.remote_usage_of(&GridUser::new("u")) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn relayed_duplicates_collapse_under_origin_scoped_mirror() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        let s = a.publish(500.0).unwrap();
        h.receive_message(
            &UssMessage::Summary {
                summary: s,
                ctx: None,
            },
            500.0,
        );
        let relay = h.publish(500.0).unwrap();
        assert!(relay.per_user.is_empty(), "hub has no local data");
        assert_eq!(relay.relayed.len(), 1, "one relayed origin");
        // Deliver the relayed summary to c three times: merged once.
        for _ in 0..3 {
            c.receive_at(&relay, 510.0);
        }
        assert!((c.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        assert_eq!(c.duplicates(), 2);
    }

    #[test]
    fn forwarding_snapshot_covers_relayed_origins() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(500.0);
        pump_chain(&mut a, &mut h, &mut c, 500.0);
        // c crashes and catches up from the hub alone: the hub's snapshot
        // must carry site 0's cells as a relayed section.
        c.crash();
        c.request_catchup();
        pump_chain(&mut a, &mut h, &mut c, 600.0);
        assert!(
            (c.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9,
            "snapshot from the forwarding hub restored relayed data"
        );
    }

    #[test]
    fn crashed_interior_node_rebuilds_relay_state() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(500.0);
        pump_chain(&mut a, &mut h, &mut c, 500.0);
        h.crash();
        h.request_catchup();
        pump_chain(&mut a, &mut h, &mut c, 600.0);
        // New origin data published after the hub's recovery still crosses.
        a.ingest(&rec(0, "u", 110.0, 150.0));
        a.publish(700.0);
        pump_chain(&mut a, &mut h, &mut c, 700.0);
        assert!((h.remote_usage_of(&GridUser::new("u")) - 120.0).abs() < 1e-9);
        assert!((c.remote_usage_of(&GridUser::new("u")) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_round_trips_origin_scoped_mirror() {
        let (mut a, mut h, mut c) = relay_chain();
        a.ingest(&rec(0, "u", 0.0, 80.0));
        a.publish(500.0);
        pump_chain(&mut a, &mut h, &mut c, 500.0);
        let ckpt = h.export_checkpoint(7, 500.0);
        assert!(ckpt.origin_cells.contains_key(&SiteId(0)));
        let mut restored = Uss::new(SiteId(1), ParticipationMode::Full, 100.0);
        restored.set_peers(&[SiteId(0), SiteId(2)], &[SiteId(0), SiteId(2)]);
        restored.set_forwarding(true);
        restored.install_checkpoint(&ckpt).unwrap();
        assert!((restored.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
        // The relay-published mirror is not checkpointed: the first publish
        // re-relays the whole mirror — idempotent downstream.
        let replayed = restored.publish(600.0).unwrap();
        assert_eq!(replayed.relayed.len(), 1);
        c.receive_at(&replayed, 600.0);
        assert!((c.remote_usage_of(&GridUser::new("u")) - 80.0).abs() < 1e-9);
    }
}
