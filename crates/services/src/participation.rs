//! Participation modes in the global usage exchange (§IV-A-4, "Partial
//! Cluster Participation"): a subset of interconnected Aequus installations
//! may not fully take part "due to misconfiguration, local policies, or
//! legislation".

use serde::{Deserialize, Serialize};

/// How a site takes part in the global usage-data exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipationMode {
    /// Normal operation: contributes local usage and consumes global usage.
    Full,
    /// "Only reads global usage data but does not contribute": prioritizes
    /// on global + local data, publishes nothing.
    ReadOnly,
    /// "Contributes data but only considers local data for job
    /// prioritization".
    LocalOnly,
    /// Neither receiving nor contributing — "disjunct from any other
    /// installations", with no impact on their operations.
    Disjunct,
}

impl ParticipationMode {
    /// Whether this site publishes its usage to peers.
    pub fn contributes(&self) -> bool {
        matches!(self, ParticipationMode::Full | ParticipationMode::LocalOnly)
    }

    /// Whether this site folds peer usage into its own prioritization.
    pub fn reads_global(&self) -> bool {
        matches!(self, ParticipationMode::Full | ParticipationMode::ReadOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_matrix() {
        assert!(ParticipationMode::Full.contributes());
        assert!(ParticipationMode::Full.reads_global());
        assert!(!ParticipationMode::ReadOnly.contributes());
        assert!(ParticipationMode::ReadOnly.reads_global());
        assert!(ParticipationMode::LocalOnly.contributes());
        assert!(!ParticipationMode::LocalOnly.reads_global());
        assert!(!ParticipationMode::Disjunct.contributes());
        assert!(!ParticipationMode::Disjunct.reads_global());
    }
}
