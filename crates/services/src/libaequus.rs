//! The `libaequus` unified system library (§III-A): the integration seam
//! linked into local resource-management systems. It wraps the Aequus
//! service clients behind three calls — fetch fairshare values, resolve
//! identity mappings, store usage records — and caches resolved values "for
//! a configurable amount of time, which considerably reduces the amount of
//! network traffic and computations required when batches of jobs are
//! submitted and processed at the same time".

use crate::fcs::Fcs;
use crate::irs::Irs;
use aequus_core::{GridUser, SystemUser, UserId};
use aequus_telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;

/// Per-cache statistics, for the throughput evaluation. The fairshare-value
/// and identity-resolution caches each keep their own instance — their
/// workloads differ (every dispatch pass vs. job submission), so blending
/// them would hide a cold identity cache behind a hot fairshare cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the client-side cache.
    pub hits: u64,
    /// Queries that had to call out to the service.
    pub misses: u64,
    /// Cached entries discarded: TTL-stale entries replaced on re-fetch,
    /// plus everything dropped by [`LibAequus::flush`].
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`, or `None` when no queries were made — a cache
    /// that was never consulted has no ratio, and reporting `0.0` would
    /// read as "every query missed".
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Pre-registered per-cache telemetry counters (no-ops until wired).
#[derive(Debug, Clone, Default)]
struct LibMetrics {
    telemetry: Telemetry,
    fs_hits: Counter,
    fs_misses: Counter,
    fs_evictions: Counter,
    id_hits: Counter,
    id_misses: Counter,
    id_evictions: Counter,
}

impl LibMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            telemetry: t.clone(),
            fs_hits: t.counter("aequus_lib_fairshare_hits_total"),
            fs_misses: t.counter("aequus_lib_fairshare_misses_total"),
            fs_evictions: t.counter("aequus_lib_fairshare_evictions_total"),
            id_hits: t.counter("aequus_lib_identity_hits_total"),
            id_misses: t.counter("aequus_lib_identity_misses_total"),
            id_evictions: t.counter("aequus_lib_identity_evictions_total"),
        }
    }
}

/// Client-side library state: TTL caches over the FCS and IRS services.
#[derive(Debug)]
pub struct LibAequus {
    fairshare_ttl_s: f64,
    identity_ttl_s: f64,
    fairshare_cache: BTreeMap<GridUser, (f64, f64)>, // value, fetched_at
    /// Id-indexed fairshare cache: a vector lookup instead of a map walk on
    /// the scheduler hot path. Slots are `(value, fetched_at)`.
    fairshare_id_cache: Vec<Option<(f64, f64)>>,
    identity_cache: BTreeMap<SystemUser, (Option<GridUser>, f64)>,
    /// Degraded mode (backing services crashed or unreachable): cached
    /// values are served past their TTL instead of querying out. This is the
    /// client library's graceful-degradation half of the stale-data policy —
    /// the library lives inside the RMS process and keeps answering from
    /// whatever it has.
    degraded: bool,
    /// Fairshare query cache statistics.
    pub fairshare_stats: CacheStats,
    /// Identity resolution cache statistics.
    pub identity_stats: CacheStats,
    /// Telemetry handles (no-ops until wired).
    metrics: LibMetrics,
}

impl LibAequus {
    /// Create a library instance with the given cache TTLs (seconds).
    pub fn new(fairshare_ttl_s: f64, identity_ttl_s: f64) -> Self {
        Self {
            fairshare_ttl_s,
            identity_ttl_s,
            fairshare_cache: BTreeMap::new(),
            fairshare_id_cache: Vec::new(),
            identity_cache: BTreeMap::new(),
            degraded: false,
            fairshare_stats: CacheStats::default(),
            identity_stats: CacheStats::default(),
            metrics: LibMetrics::default(),
        }
    }

    /// Wire this library instance into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = LibMetrics::wire(t);
    }

    /// Enter or leave degraded mode. While degraded, fairshare and identity
    /// queries serve cached entries regardless of TTL (stale answers beat no
    /// answers during a site crash); cold misses still fall through to the
    /// (possibly reset) services.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether degraded (serve-past-TTL) mode is active.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Fetch the global fairshare factor for `user`, serving from the cache
    /// when fresh. Users unknown to the policy get the neutral factor 0.5
    /// (the balance point) so other priority factors still apply.
    pub fn get_fairshare(&mut self, fcs: &Fcs, user: &GridUser, now_s: f64) -> f64 {
        if let Some(&(value, at)) = self.fairshare_cache.get(user) {
            if self.degraded || now_s - at < self.fairshare_ttl_s {
                self.fairshare_stats.hits += 1;
                self.metrics.fs_hits.inc();
                self.metrics
                    .telemetry
                    .trace_lib_query(user.as_str(), at, now_s);
                return value;
            }
        }
        self.fairshare_stats.misses += 1;
        self.metrics.fs_misses.inc();
        let value = fcs.query(user).unwrap_or(0.5);
        if self
            .fairshare_cache
            .insert(user.clone(), (value, now_s))
            .is_some()
        {
            // The replaced entry was TTL-stale (a fresh one would have hit).
            self.fairshare_stats.evictions += 1;
            self.metrics.fs_evictions.inc();
        }
        self.metrics
            .telemetry
            .trace_lib_query(user.as_str(), now_s, now_s);
        value
    }

    /// Fetch the fairshare factor by interned [`UserId`] — the zero-clone
    /// variant of [`get_fairshare`](Self::get_fairshare) for the scheduler
    /// hot path. Same TTL-cache semantics, same neutral-factor fallback.
    pub fn get_fairshare_by_id(&mut self, fcs: &Fcs, id: UserId, now_s: f64) -> f64 {
        if let Some(Some((value, at))) = self.fairshare_id_cache.get(id.index()) {
            if self.degraded || now_s - at < self.fairshare_ttl_s {
                let (value, at) = (*value, *at);
                self.fairshare_stats.hits += 1;
                self.metrics.fs_hits.inc();
                self.trace_lib_query_id(fcs, id, at, now_s);
                return value;
            }
        }
        self.fairshare_stats.misses += 1;
        self.metrics.fs_misses.inc();
        let value = fcs.query_id(id).unwrap_or(0.5);
        if self.fairshare_id_cache.len() <= id.index() {
            self.fairshare_id_cache.resize(id.index() + 1, None);
        }
        if self.fairshare_id_cache[id.index()]
            .replace((value, now_s))
            .is_some()
        {
            self.fairshare_stats.evictions += 1;
            self.metrics.fs_evictions.inc();
        }
        self.trace_lib_query_id(fcs, id, now_s, now_s);
        value
    }

    /// Pipeline-tracer hook for the id-indexed path: the user-name lookup
    /// only happens while a trace is actually in flight, keeping the hot
    /// path free of it.
    fn trace_lib_query_id(&self, fcs: &Fcs, id: UserId, served_fetch_s: f64, now_s: f64) {
        if self.metrics.telemetry.traces_active() > 0 {
            if let Some(user) = fcs.user_of(id) {
                self.metrics
                    .telemetry
                    .trace_lib_query(user.as_str(), served_fetch_s, now_s);
            }
        }
    }

    /// Resolve a system account to its grid identity via the IRS, with
    /// client-side caching (negative results are cached too).
    pub fn resolve_identity(
        &mut self,
        irs: &mut Irs,
        system: &SystemUser,
        now_s: f64,
    ) -> Option<GridUser> {
        if let Some((cached, at)) = self.identity_cache.get(system) {
            if self.degraded || now_s - at < self.identity_ttl_s {
                self.identity_stats.hits += 1;
                self.metrics.id_hits.inc();
                return cached.clone();
            }
        }
        self.identity_stats.misses += 1;
        self.metrics.id_misses.inc();
        let resolved = irs.resolve(system);
        if self
            .identity_cache
            .insert(system.clone(), (resolved.clone(), now_s))
            .is_some()
        {
            self.identity_stats.evictions += 1;
            self.metrics.id_evictions.inc();
        }
        resolved
    }

    /// Drop all cached entries (e.g. on reconfiguration). Every dropped
    /// entry counts as an eviction of its cache.
    pub fn flush(&mut self) {
        let fs_dropped =
            (self.fairshare_cache.len() + self.fairshare_id_cache.iter().flatten().count()) as u64;
        let id_dropped = self.identity_cache.len() as u64;
        self.fairshare_stats.evictions += fs_dropped;
        self.identity_stats.evictions += id_dropped;
        self.metrics.fs_evictions.add(fs_dropped);
        self.metrics.id_evictions.add(id_dropped);
        self.fairshare_cache.clear();
        self.fairshare_id_cache.clear();
        self.identity_cache.clear();
        self.metrics.telemetry.event(-1.0, "lib.flush", || {
            format!("dropped {fs_dropped} fairshare + {id_dropped} identity entries")
        });
    }

    /// Number of live fairshare cache entries.
    pub fn fairshare_cache_len(&self) -> usize {
        self.fairshare_cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participation::ParticipationMode;
    use crate::pds::Pds;
    use crate::ums::Ums;
    use crate::uss::Uss;
    use aequus_core::fairshare::FairshareConfig;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::policy::flat_policy;
    use aequus_core::projection::ProjectionKind;
    use aequus_core::usage::UsageRecord;
    use aequus_core::DecayPolicy;

    fn fcs_fixture() -> Fcs {
        let mut pds = Pds::new(flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap());
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 50.0,
        });
        let mut ums = Ums::new(0.0, DecayPolicy::None);
        ums.refresh(&mut uss, 0.0);
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        fcs
    }

    #[test]
    fn id_queries_share_cache_semantics() {
        let mut fcs = fcs_fixture();
        let id_a = fcs.id_of(&GridUser::new("a")).unwrap();
        let mut lib = LibAequus::new(10.0, 60.0);
        let by_name = lib.get_fairshare(&fcs, &GridUser::new("a"), 0.0);
        let by_id = lib.get_fairshare_by_id(&fcs, id_a, 0.0);
        assert_eq!(by_name.to_bits(), by_id.to_bits());
        // Second id query within TTL hits the id cache.
        lib.get_fairshare_by_id(&fcs, id_a, 5.0);
        assert_eq!(lib.fairshare_stats.hits, 1);
        // Unknown-but-interned users fall back to the neutral factor.
        let ghost = fcs.intern_user(&GridUser::new("ghost"));
        assert_eq!(lib.get_fairshare_by_id(&fcs, ghost, 0.0), 0.5);
    }

    #[test]
    fn cache_hit_within_ttl() {
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(10.0, 60.0);
        let v1 = lib.get_fairshare(&fcs, &GridUser::new("b"), 0.0);
        let v2 = lib.get_fairshare(&fcs, &GridUser::new("b"), 5.0);
        assert_eq!(v1, v2);
        assert_eq!(lib.fairshare_stats.hits, 1);
        assert_eq!(lib.fairshare_stats.misses, 1);
        // TTL expiry forces a re-fetch.
        lib.get_fairshare(&fcs, &GridUser::new("b"), 10.0);
        assert_eq!(lib.fairshare_stats.misses, 2);
    }

    #[test]
    fn batch_submission_mostly_hits_cache() {
        // The paper's rationale: batches of jobs from the same user resolve
        // against one cached value.
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(15.0, 60.0);
        for i in 0..100 {
            lib.get_fairshare(&fcs, &GridUser::new("a"), i as f64 * 0.1);
        }
        assert_eq!(lib.fairshare_stats.misses, 1);
        assert_eq!(lib.fairshare_stats.hits, 99);
        assert!(lib.fairshare_stats.hit_ratio().unwrap() > 0.98);
    }

    #[test]
    fn hit_ratio_is_none_before_any_query() {
        let lib = LibAequus::new(10.0, 60.0);
        assert_eq!(lib.fairshare_stats.hit_ratio(), None);
        assert_eq!(lib.identity_stats.hit_ratio(), None);
        let all_misses = CacheStats {
            hits: 0,
            misses: 4,
            evictions: 0,
        };
        assert_eq!(all_misses.hit_ratio(), Some(0.0), "a real 0.0 still shows");
    }

    #[test]
    fn stale_replacement_and_flush_count_as_evictions() {
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(10.0, 60.0);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 0.0);
        assert_eq!(lib.fairshare_stats.evictions, 0);
        // TTL expired: the re-fetch replaces (evicts) the stale entry.
        lib.get_fairshare(&fcs, &GridUser::new("a"), 20.0);
        assert_eq!(lib.fairshare_stats.evictions, 1);
        // Same semantics on the id-indexed path.
        let id_a = fcs.id_of(&GridUser::new("a")).unwrap();
        lib.get_fairshare_by_id(&fcs, id_a, 20.0);
        lib.get_fairshare_by_id(&fcs, id_a, 40.0);
        assert_eq!(lib.fairshare_stats.evictions, 2);
        // Flush drops one map entry and one id slot.
        lib.flush();
        assert_eq!(lib.fairshare_stats.evictions, 4);
        // Identity evictions are tracked independently.
        assert_eq!(lib.identity_stats.evictions, 0);
        let mut irs = Irs::new();
        irs.store_mapping(SystemUser::new("s"), GridUser::new("g"));
        lib.resolve_identity(&mut irs, &SystemUser::new("s"), 0.0);
        lib.resolve_identity(&mut irs, &SystemUser::new("s"), 100.0);
        assert_eq!(lib.identity_stats.evictions, 1);
        assert_eq!(lib.fairshare_stats.evictions, 4, "fairshare side untouched");
    }

    #[test]
    fn telemetry_reports_both_caches_independently() {
        use aequus_telemetry::Telemetry;
        let fcs = fcs_fixture();
        let t = Telemetry::enabled();
        let mut lib = LibAequus::new(10.0, 60.0);
        lib.set_telemetry(&t);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 0.0);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 1.0);
        let mut irs = Irs::new();
        lib.resolve_identity(&mut irs, &SystemUser::new("x"), 0.0);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.counters["aequus_lib_fairshare_hits_total"], 1);
        assert_eq!(snap.counters["aequus_lib_fairshare_misses_total"], 1);
        assert_eq!(snap.counters["aequus_lib_identity_misses_total"], 1);
        assert_eq!(snap.counters["aequus_lib_identity_hits_total"], 0);
        assert_eq!(snap.counters["aequus_lib_fairshare_evictions_total"], 0);
    }

    #[test]
    fn degraded_mode_serves_expired_entries() {
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(10.0, 60.0);
        let v = lib.get_fairshare(&fcs, &GridUser::new("a"), 0.0);
        // Far past the TTL, a healthy library re-fetches — a degraded one
        // keeps serving the stale value without touching the FCS.
        lib.set_degraded(true);
        assert_eq!(lib.get_fairshare(&fcs, &GridUser::new("a"), 1e6), v);
        assert_eq!(lib.fairshare_stats.hits, 1, "served from stale cache");
        // Leaving degraded mode restores normal TTL behavior.
        lib.set_degraded(false);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 1e6);
        assert_eq!(lib.fairshare_stats.misses, 2);
    }

    #[test]
    fn unknown_user_gets_neutral_factor() {
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(10.0, 60.0);
        assert_eq!(lib.get_fairshare(&fcs, &GridUser::new("ghost"), 0.0), 0.5);
    }

    #[test]
    fn identity_cached_including_negatives() {
        let mut irs = Irs::new();
        irs.store_mapping(SystemUser::new("grid1"), GridUser::new("CN=a"));
        let mut lib = LibAequus::new(10.0, 100.0);
        assert!(lib
            .resolve_identity(&mut irs, &SystemUser::new("grid1"), 0.0)
            .is_some());
        assert!(lib
            .resolve_identity(&mut irs, &SystemUser::new("nope"), 0.0)
            .is_none());
        // Both answers cached: IRS sees exactly 2 lookups total.
        lib.resolve_identity(&mut irs, &SystemUser::new("grid1"), 1.0);
        lib.resolve_identity(&mut irs, &SystemUser::new("nope"), 1.0);
        assert_eq!(irs.lookups(), 2);
        assert_eq!(lib.identity_stats.hits, 2);
    }

    #[test]
    fn flush_clears_caches() {
        let fcs = fcs_fixture();
        let mut lib = LibAequus::new(1e9, 1e9);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 0.0);
        assert_eq!(lib.fairshare_cache_len(), 1);
        lib.flush();
        assert_eq!(lib.fairshare_cache_len(), 0);
        lib.get_fairshare(&fcs, &GridUser::new("a"), 1.0);
        assert_eq!(lib.fairshare_stats.misses, 2);
    }
}
