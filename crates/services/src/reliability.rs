//! Reliability layer for the USS↔USS exchange.
//!
//! The paper's deployment experience (and the EU DataGrid operations report
//! it cites) is that message loss and flaky services dominate real grid
//! operations. This module defines the wire protocol and policies that make
//! the summary exchange fault-tolerant:
//!
//! * every published [`UsageSummary`] carries a per-publisher monotonically
//!   increasing sequence number;
//! * delivery is **acknowledged** — unacked summaries stay in a bounded
//!   per-peer outbox and are retried with exponential backoff plus
//!   deterministic seeded jitter ([`RetryPolicy`], [`JitterRng`]);
//! * receivers detect sequence gaps and issue anti-entropy
//!   [`UssMessage::Resync`] pulls, re-synced from the publisher's retained
//!   history, with a cumulative [`UssMessage::Snapshot`] fallback when the
//!   history has been compacted;
//! * a configurable [`StalePolicy`] governs what a site serves while peers
//!   are silent (serve-stale vs. local-only weighting).
//!
//! Correctness never depends on the sequencing: summary cells carry
//! *absolute* cumulative per-(user, slot) charge, merged as positive deltas
//! against a per-peer mirror, so any interleaving of retries, duplicates,
//! reordering, snapshots, and post-crash republication converges to the same
//! state. Sequence numbers exist to *detect* loss quickly, not to order it.

use crate::timings::ServiceTimings;
use aequus_core::ids::SiteId;
use aequus_core::usage::UsageSummary;
use aequus_telemetry::TraceCtx;
use serde::{Deserialize, Serialize};

/// A message of the reliable USS↔USS exchange protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UssMessage {
    /// A sequenced incremental summary (absolute per-cell values).
    Summary {
        /// The summary payload.
        summary: UsageSummary,
        /// Causal trace context of the pipeline stage that produced this
        /// publication, when the publishing site sampled it. Retries and
        /// resyncs of the same sequence number resend the *original*
        /// context, so a hop delayed by loss stays in its causal tree.
        ctx: Option<TraceCtx>,
    },
    /// A cumulative snapshot of everything the publisher has ever published;
    /// its `seq` is the publisher's latest sequence number, so applying it
    /// also closes every outstanding gap up to that point.
    Snapshot {
        /// The cumulative payload.
        summary: UsageSummary,
        /// Trace context of the latest traced publication folded into the
        /// snapshot, if any — snapshot catch-ups stay causally linked.
        ctx: Option<TraceCtx>,
    },
    /// Receiver → publisher: the summary with `seq` was received and applied.
    Ack {
        /// The acknowledging site.
        from: SiteId,
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Receiver → publisher: an anti-entropy pull for the sequence range
    /// `[from_seq, to_seq]` the receiver detected as missing.
    Resync {
        /// The requesting site.
        from: SiteId,
        /// First missing sequence number.
        from_seq: u64,
        /// Last missing sequence number.
        to_seq: u64,
    },
    /// Recovering receiver → publisher: volatile state was lost; send a full
    /// cumulative snapshot.
    SnapshotRequest {
        /// The requesting site.
        from: SiteId,
    },
}

impl UssMessage {
    /// Whether this message carries usage data (as opposed to control flow).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            UssMessage::Summary { .. } | UssMessage::Snapshot { .. }
        )
    }

    /// The trace context carried by a data message, if any.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        match self {
            UssMessage::Summary { ctx, .. } | UssMessage::Snapshot { ctx, .. } => *ctx,
            _ => None,
        }
    }

    /// Short kind tag for telemetry events and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            UssMessage::Summary { .. } => "summary",
            UssMessage::Snapshot { .. } => "snapshot",
            UssMessage::Ack { .. } => "ack",
            UssMessage::Resync { .. } => "resync",
            UssMessage::SnapshotRequest { .. } => "snapshot_request",
        }
    }

    /// Modeled serialized size in bytes (one tag byte plus the variant
    /// payload; data messages delegate to
    /// [`UsageSummary::wire_bytes`]) — the per-link gossip budget the
    /// profiler accounts. Deterministic, like everything it feeds.
    pub fn wire_size(&self) -> u64 {
        match self {
            UssMessage::Summary { summary, .. } | UssMessage::Snapshot { summary, .. } => {
                1 + summary.wire_bytes()
            }
            UssMessage::Ack { .. } => 1 + 4 + 8,
            UssMessage::Resync { .. } => 1 + 4 + 16,
            UssMessage::SnapshotRequest { .. } => 1 + 4,
        }
    }
}

/// Retry/backoff and retention configuration of the reliable exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// How long a publisher waits for an ack after a send before the first
    /// retry — also the base of the exponential backoff.
    pub ack_timeout_s: f64,
    /// Backoff ceiling: retry spacing never exceeds this.
    pub max_backoff_s: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a factor drawn
    /// uniformly from `[1 - jitter_frac, 1 + jitter_frac]`, decorrelating
    /// retry storms across peers. Deterministic given the seed.
    pub jitter_frac: f64,
    /// Published summaries retained for anti-entropy resync; older entries
    /// are compacted away and resyncs reaching past them fall back to a
    /// cumulative snapshot.
    pub history_cap: usize,
    /// Maximum unacked summaries queued per peer; overflowing drops the
    /// oldest (the receiver recovers it through gap detection → resync).
    pub outbox_cap: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            ack_timeout_s: 15.0,
            max_backoff_s: 240.0,
            jitter_frac: 0.2,
            history_cap: 64,
            outbox_cap: 32,
        }
    }
}

impl RetryPolicy {
    /// Derive a policy from a deployment's timing chain: the ack timeout is
    /// the exchange round trip plus scheduling slack
    /// ([`ServiceTimings::ack_deadline_s`]), and the backoff ceiling is the
    /// publication interval — retrying slower than fresh data is produced
    /// would never help.
    pub fn from_timings(timings: &ServiceTimings) -> Self {
        let ack_timeout_s = timings.ack_deadline_s();
        Self {
            ack_timeout_s,
            max_backoff_s: timings.uss_publish_interval_s.max(4.0 * ack_timeout_s),
            ..Self::default()
        }
    }

    /// Backoff before attempt `attempts + 1`, given `attempts` completed
    /// sends without a full ack: `ack_timeout · 2^(attempts-1)`, capped at
    /// `max_backoff`, scaled by jitter (`unit` is a uniform draw in
    /// `[0, 1)`).
    pub fn backoff_s(&self, attempts: u32, unit: f64) -> f64 {
        let exponent = attempts.saturating_sub(1).min(16) as i32;
        let base = (self.ack_timeout_s * f64::powi(2.0, exponent)).min(self.max_backoff_s);
        base * (1.0 + self.jitter_frac * (2.0 * unit - 1.0))
    }
}

/// What a site serves while peer data goes stale (peers silent, partitioned,
/// or crashed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalePolicy {
    /// Keep weighting with the last merged remote usage, however old — the
    /// default, matching the paper's "RMS keeps scheduling on stale data"
    /// behavior during outages.
    #[default]
    ServeStale,
    /// Degrade to local-only weighting (as if
    /// [`LocalOnly`](crate::ParticipationMode::LocalOnly)) once the freshest
    /// peer update is older than the threshold; remote data is folded back
    /// in when a peer is heard from again.
    LocalOnly {
        /// Staleness threshold in seconds.
        max_staleness_s: f64,
    },
}

/// A small self-contained deterministic RNG (splitmix64) for retry jitter.
///
/// Kept separate from the simulation's fault RNG so that service-level retry
/// timing is reproducible from the service's own seed alone, independent of
/// how many fault coins the engine has flipped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterRng {
    state: u64,
}

impl JitterRng {
    /// Create a jitter source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 60.0,
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_s(1, 0.5), 10.0);
        assert_eq!(p.backoff_s(2, 0.5), 20.0);
        assert_eq!(p.backoff_s(3, 0.5), 40.0);
        assert_eq!(p.backoff_s(4, 0.5), 60.0, "capped");
        assert_eq!(p.backoff_s(40, 0.5), 60.0, "huge attempt counts saturate");
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let p = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 1e9,
            jitter_frac: 0.2,
            ..RetryPolicy::default()
        };
        let mut a = JitterRng::new(7);
        let mut b = JitterRng::new(7);
        for _ in 0..1000 {
            let u = a.next_unit();
            assert_eq!(u, b.next_unit(), "same seed, same stream");
            assert!((0.0..1.0).contains(&u));
            let back = p.backoff_s(1, u);
            assert!((8.0..=12.0).contains(&back), "{back}");
        }
        let mut c = JitterRng::new(8);
        assert_ne!(a.next_unit(), c.next_unit());
    }

    #[test]
    fn from_timings_tracks_the_exchange_latency() {
        let t = ServiceTimings::default();
        let p = RetryPolicy::from_timings(&t);
        assert_eq!(p.ack_timeout_s, t.ack_deadline_s());
        assert!(p.max_backoff_s >= p.ack_timeout_s);
        assert_eq!(p.max_backoff_s, t.uss_publish_interval_s);
    }

    #[test]
    fn message_kinds_and_data_flag() {
        let s = UsageSummary {
            site: SiteId(0),
            seq: 1,
            slot_s: 60.0,
            per_user: Default::default(),
        };
        let summary = UssMessage::Summary {
            summary: s.clone(),
            ctx: None,
        };
        assert!(summary.is_data());
        assert_eq!(summary.trace_ctx(), None);
        let traced = UssMessage::Snapshot {
            summary: s,
            ctx: Some(TraceCtx {
                trace_id: 7,
                span: 9,
            }),
        };
        assert!(traced.is_data());
        assert_eq!(traced.trace_ctx().unwrap().trace_id, 7);
        for (msg, kind) in [
            (
                UssMessage::Ack {
                    from: SiteId(1),
                    seq: 3,
                },
                "ack",
            ),
            (
                UssMessage::Resync {
                    from: SiteId(1),
                    from_seq: 2,
                    to_seq: 4,
                },
                "resync",
            ),
            (
                UssMessage::SnapshotRequest { from: SiteId(1) },
                "snapshot_request",
            ),
        ] {
            assert!(!msg.is_data());
            assert_eq!(msg.kind(), kind);
        }
    }
}
