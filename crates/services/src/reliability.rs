//! Reliability layer for the USS↔USS exchange.
//!
//! The paper's deployment experience (and the EU DataGrid operations report
//! it cites) is that message loss and flaky services dominate real grid
//! operations. This module defines the wire protocol and policies that make
//! the summary exchange fault-tolerant:
//!
//! * every published [`UsageSummary`] carries a per-publisher monotonically
//!   increasing sequence number;
//! * delivery is **acknowledged** — unacked summaries stay in a bounded
//!   per-peer outbox and are retried with exponential backoff plus
//!   deterministic seeded jitter ([`RetryPolicy`], [`JitterRng`]);
//! * receivers detect sequence gaps and issue anti-entropy
//!   [`UssMessage::Resync`] pulls, re-synced from the publisher's retained
//!   history, with a cumulative [`UssMessage::Snapshot`] fallback when the
//!   history has been compacted;
//! * a configurable [`StalePolicy`] governs what a site serves while peers
//!   are silent (serve-stale vs. local-only weighting).
//!
//! Correctness never depends on the sequencing: summary cells carry
//! *absolute* cumulative per-(user, slot) charge, merged as positive deltas
//! against a per-peer mirror, so any interleaving of retries, duplicates,
//! reordering, snapshots, and post-crash republication converges to the same
//! state. Sequence numbers exist to *detect* loss quickly, not to order it.

use crate::timings::ServiceTimings;
use aequus_core::codec::{decode_summary, encode_summary, CodecError, Encoding};
use aequus_core::ids::SiteId;
use aequus_core::usage::UsageSummary;
use aequus_telemetry::TraceCtx;
use serde::{Deserialize, Serialize};

/// A message of the reliable USS↔USS exchange protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UssMessage {
    /// A sequenced incremental summary (absolute per-cell values).
    Summary {
        /// The summary payload.
        summary: UsageSummary,
        /// Causal trace context of the pipeline stage that produced this
        /// publication, when the publishing site sampled it. Retries and
        /// resyncs of the same sequence number resend the *original*
        /// context, so a hop delayed by loss stays in its causal tree.
        ctx: Option<TraceCtx>,
    },
    /// A cumulative snapshot of everything the publisher has ever published;
    /// its `seq` is the publisher's latest sequence number, so applying it
    /// also closes every outstanding gap up to that point.
    Snapshot {
        /// The cumulative payload.
        summary: UsageSummary,
        /// Trace context of the latest traced publication folded into the
        /// snapshot, if any — snapshot catch-ups stay causally linked.
        ctx: Option<TraceCtx>,
    },
    /// Receiver → publisher: the summary with `seq` was received and applied.
    Ack {
        /// The acknowledging site.
        from: SiteId,
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Receiver → publisher: an anti-entropy pull for the sequence range
    /// `[from_seq, to_seq]` the receiver detected as missing.
    Resync {
        /// The requesting site.
        from: SiteId,
        /// First missing sequence number.
        from_seq: u64,
        /// Last missing sequence number.
        to_seq: u64,
    },
    /// Recovering receiver → publisher: volatile state was lost; send a full
    /// cumulative snapshot.
    SnapshotRequest {
        /// The requesting site.
        from: SiteId,
    },
}

impl UssMessage {
    /// Whether this message carries usage data (as opposed to control flow).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            UssMessage::Summary { .. } | UssMessage::Snapshot { .. }
        )
    }

    /// The trace context carried by a data message, if any.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        match self {
            UssMessage::Summary { ctx, .. } | UssMessage::Snapshot { ctx, .. } => *ctx,
            _ => None,
        }
    }

    /// Short kind tag for telemetry events and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            UssMessage::Summary { .. } => "summary",
            UssMessage::Snapshot { .. } => "snapshot",
            UssMessage::Ack { .. } => "ack",
            UssMessage::Resync { .. } => "resync",
            UssMessage::SnapshotRequest { .. } => "snapshot_request",
        }
    }

    /// Serialized size in bytes under `enc` — defined as the length of
    /// [`UssMessage::encode`]'s output (a regression test holds the two
    /// equal), so the profiler's gossip-byte counters and the bench gates
    /// account exactly what the codec produces. Deterministic, like
    /// everything it feeds.
    pub fn wire_size(&self, enc: Encoding) -> u64 {
        match self {
            UssMessage::Summary { summary, ctx } | UssMessage::Snapshot { summary, ctx } => {
                let ctx_bytes = if ctx.is_some() { 16 } else { 0 };
                2 + ctx_bytes + summary.wire_bytes(enc)
            }
            UssMessage::Ack { .. } => 1 + 4 + 8,
            UssMessage::Resync { .. } => 1 + 4 + 16,
            UssMessage::SnapshotRequest { .. } => 1 + 4,
        }
    }

    /// Encode to the wire representation: one tag byte, then fixed-width
    /// control fields, or (for data messages) a trace-context presence byte,
    /// the optional 16-byte context, and the CRC-framed summary payload in
    /// the chosen [`Encoding`].
    pub fn encode(&self, enc: Encoding) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            UssMessage::Summary { summary, ctx } | UssMessage::Snapshot { summary, ctx } => {
                out.push(if matches!(self, UssMessage::Summary { .. }) {
                    TAG_SUMMARY
                } else {
                    TAG_SNAPSHOT
                });
                match ctx {
                    Some(c) => {
                        out.push(1);
                        out.extend_from_slice(&c.trace_id.to_le_bytes());
                        out.extend_from_slice(&c.span.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&encode_summary(summary, enc));
            }
            UssMessage::Ack { from, seq } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            UssMessage::Resync {
                from,
                from_seq,
                to_seq,
            } => {
                out.push(TAG_RESYNC);
                out.extend_from_slice(&from.0.to_le_bytes());
                out.extend_from_slice(&from_seq.to_le_bytes());
                out.extend_from_slice(&to_seq.to_le_bytes());
            }
            UssMessage::SnapshotRequest { from } => {
                out.push(TAG_SNAPSHOT_REQUEST);
                out.extend_from_slice(&from.0.to_le_bytes());
            }
        }
        out
    }

    /// Decode a wire frame produced by [`UssMessage::encode`], returning the
    /// message and the summary encoding it travelled under (control messages
    /// report the caller-irrelevant default).
    pub fn decode(buf: &[u8]) -> Result<(Self, Encoding), CodecError> {
        let (&tag, rest) = buf.split_first().ok_or(CodecError::Truncated)?;
        let fixed = |n: usize| -> Result<&[u8], CodecError> {
            (rest.len() == n).then_some(rest).ok_or(if rest.len() < n {
                CodecError::Truncated
            } else {
                CodecError::Malformed("trailing bytes")
            })
        };
        match tag {
            TAG_SUMMARY | TAG_SNAPSHOT => {
                let (&flag, rest) = rest.split_first().ok_or(CodecError::Truncated)?;
                let (ctx, payload) = match flag {
                    0 => (None, rest),
                    1 => {
                        if rest.len() < 16 {
                            return Err(CodecError::Truncated);
                        }
                        let trace_id = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
                        let span = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
                        (Some(TraceCtx { trace_id, span }), &rest[16..])
                    }
                    _ => return Err(CodecError::Malformed("bad trace-context flag")),
                };
                let (enc, summary) = decode_summary(payload)?;
                let msg = if tag == TAG_SUMMARY {
                    UssMessage::Summary { summary, ctx }
                } else {
                    UssMessage::Snapshot { summary, ctx }
                };
                Ok((msg, enc))
            }
            TAG_ACK => {
                let b = fixed(12)?;
                Ok((
                    UssMessage::Ack {
                        from: SiteId(u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))),
                        seq: u64::from_le_bytes(b[4..12].try_into().expect("8 bytes")),
                    },
                    Encoding::default(),
                ))
            }
            TAG_RESYNC => {
                let b = fixed(20)?;
                Ok((
                    UssMessage::Resync {
                        from: SiteId(u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))),
                        from_seq: u64::from_le_bytes(b[4..12].try_into().expect("8 bytes")),
                        to_seq: u64::from_le_bytes(b[12..20].try_into().expect("8 bytes")),
                    },
                    Encoding::default(),
                ))
            }
            TAG_SNAPSHOT_REQUEST => {
                let b = fixed(4)?;
                Ok((
                    UssMessage::SnapshotRequest {
                        from: SiteId(u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))),
                    },
                    Encoding::default(),
                ))
            }
            _ => Err(CodecError::Malformed("unknown message tag")),
        }
    }
}

const TAG_SUMMARY: u8 = 1;
const TAG_SNAPSHOT: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_RESYNC: u8 = 4;
const TAG_SNAPSHOT_REQUEST: u8 = 5;

/// Retry/backoff and retention configuration of the reliable exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// How long a publisher waits for an ack after a send before the first
    /// retry — also the base of the exponential backoff.
    pub ack_timeout_s: f64,
    /// Backoff ceiling: retry spacing never exceeds this.
    pub max_backoff_s: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a factor drawn
    /// uniformly from `[1 - jitter_frac, 1 + jitter_frac]`, decorrelating
    /// retry storms across peers. Deterministic given the seed.
    pub jitter_frac: f64,
    /// Published summaries retained for anti-entropy resync; older entries
    /// are compacted away and resyncs reaching past them fall back to a
    /// cumulative snapshot.
    pub history_cap: usize,
    /// Maximum unacked summaries queued per peer; overflowing drops the
    /// oldest (the receiver recovers it through gap detection → resync).
    pub outbox_cap: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            ack_timeout_s: 15.0,
            max_backoff_s: 240.0,
            jitter_frac: 0.2,
            history_cap: 64,
            outbox_cap: 32,
        }
    }
}

impl RetryPolicy {
    /// Derive a policy from a deployment's timing chain: the ack timeout is
    /// the exchange round trip plus scheduling slack
    /// ([`ServiceTimings::ack_deadline_s`]), and the backoff ceiling is the
    /// publication interval — retrying slower than fresh data is produced
    /// would never help.
    pub fn from_timings(timings: &ServiceTimings) -> Self {
        let ack_timeout_s = timings.ack_deadline_s();
        Self {
            ack_timeout_s,
            max_backoff_s: timings.uss_publish_interval_s.max(4.0 * ack_timeout_s),
            ..Self::default()
        }
    }

    /// Backoff before attempt `attempts + 1`, given `attempts` completed
    /// sends without a full ack: `ack_timeout · 2^(attempts-1)`, capped at
    /// `max_backoff`, scaled by jitter (`unit` is a uniform draw in
    /// `[0, 1)`).
    pub fn backoff_s(&self, attempts: u32, unit: f64) -> f64 {
        let exponent = attempts.saturating_sub(1).min(16) as i32;
        let base = (self.ack_timeout_s * f64::powi(2.0, exponent)).min(self.max_backoff_s);
        base * (1.0 + self.jitter_frac * (2.0 * unit - 1.0))
    }
}

/// What a site serves while peer data goes stale (peers silent, partitioned,
/// or crashed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StalePolicy {
    /// Keep weighting with the last merged remote usage, however old — the
    /// default, matching the paper's "RMS keeps scheduling on stale data"
    /// behavior during outages.
    #[default]
    ServeStale,
    /// Degrade to local-only weighting (as if
    /// [`LocalOnly`](crate::ParticipationMode::LocalOnly)) once the freshest
    /// peer update is older than the threshold; remote data is folded back
    /// in when a peer is heard from again.
    LocalOnly {
        /// Staleness threshold in seconds.
        max_staleness_s: f64,
    },
}

/// The gossip overlay: which site pairs exchange summaries directly.
///
/// Full mesh is O(sites²) links; the hierarchical overlays cut that to
/// O(sites) by routing through *forwarding* interior nodes, which aggregate
/// everything they hear into `relayed` sections of their own publications
/// (per-hop rollup). Each link still runs the full seq/ack/resync/snapshot
/// machinery unchanged — the overlay only decides which links exist and who
/// forwards. Because relayed cells stay absolute cumulative values keyed by
/// their *origin* site and receivers merge against a per-origin mirror, any
/// path multiplicity (meshed hubs) or hop count converges to the same view
/// as the full mesh.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlayTopology {
    /// Every site pair exchanges directly (the pre-overlay behavior).
    #[default]
    FullMesh,
    /// A k-ary tree rooted at site 0: site `i > 0` links to its parent
    /// `(i-1)/fanout`; interior nodes forward between their subtrees and
    /// the rest of the tree.
    Tree {
        /// Children per node (clamped to ≥ 1).
        fanout: usize,
    },
    /// The first `hubs` sites form a full mesh among themselves and
    /// forward; every other site links only to its home hub `i % hubs`.
    Hub {
        /// Number of hub sites (clamped to `1..=sites`).
        hubs: usize,
    },
}

impl OverlayTopology {
    /// Sites directly linked to `i` in an `n`-site deployment, ascending.
    pub fn neighbors(&self, i: usize, n: usize) -> Vec<usize> {
        match *self {
            OverlayTopology::FullMesh => (0..n).filter(|&j| j != i).collect(),
            OverlayTopology::Tree { fanout } => {
                let k = fanout.max(1);
                let mut out = Vec::new();
                if i > 0 {
                    out.push((i - 1) / k);
                }
                out.extend((k * i + 1..=k * i + k).take_while(|&c| c < n));
                out.sort_unstable();
                out
            }
            OverlayTopology::Hub { hubs } => {
                let h = hubs.clamp(1, n.max(1));
                if i < h {
                    let mut out: Vec<usize> = (0..h).filter(|&j| j != i).collect();
                    out.extend((h..n).filter(|&leaf| leaf % h == i));
                    out
                } else {
                    vec![i % h]
                }
            }
        }
    }

    /// Whether site `i` is an interior (forwarding) node: one that must
    /// re-publish what it hears so data crosses it. Leaves and full-mesh
    /// members never forward.
    pub fn forwards(&self, i: usize, n: usize) -> bool {
        match *self {
            OverlayTopology::FullMesh => false,
            OverlayTopology::Tree { fanout } => fanout.max(1) * i + 1 < n,
            OverlayTopology::Hub { hubs } => i < hubs.clamp(1, n.max(1)) && n > 1,
        }
    }

    /// Hop depth of site `i` from the overlay core: 0 for full-mesh members,
    /// the tree root, and hub sites; increasing toward the leaves.
    pub fn node_depth(&self, i: usize, n: usize) -> usize {
        match *self {
            OverlayTopology::FullMesh => 0,
            OverlayTopology::Tree { fanout } => {
                let k = fanout.max(1);
                let mut depth = 0;
                let mut node = i;
                while node > 0 {
                    node = (node - 1) / k;
                    depth += 1;
                }
                depth
            }
            OverlayTopology::Hub { hubs } => {
                if i < hubs.clamp(1, n.max(1)) {
                    0
                } else {
                    1
                }
            }
        }
    }

    /// Depth class of the direct link `(a, b)`: the deeper endpoint, at
    /// least 1 — every link spans one hop, and a depth-`d` link is the hop
    /// that carries data between depth `d-1` and depth `d`.
    pub fn link_depth(&self, a: usize, b: usize, n: usize) -> usize {
        self.node_depth(a, n).max(self.node_depth(b, n)).max(1)
    }
}

/// A small self-contained deterministic RNG (splitmix64) for retry jitter.
///
/// Kept separate from the simulation's fault RNG so that service-level retry
/// timing is reproducible from the service's own seed alone, independent of
/// how many fault coins the engine has flipped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JitterRng {
    state: u64,
}

impl JitterRng {
    /// Create a jitter source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- Gossip health map ---

/// One per-sample health row for a directed overlay link, as observed by
/// *one* endpoint's shard. The sender's shard reports the tx-side fields
/// (undelivered-data age, outbox depth, cumulative send counters) and marks
/// `heard_age_s = -1`; the receiver's shard reports the rx-side fields
/// (heard age, gap/resync counters) and marks `staleness_s = -1`. The
/// [`HealthMap`] merges both sides under the `(from, to)` key. Every field
/// is sim-time-derived, so the merged aggregate is bit-identical at any
/// worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkObservation {
    /// Publishing site of the link.
    pub from: u32,
    /// Receiving site of the link.
    pub to: u32,
    /// Overlay depth class ([`OverlayTopology::link_depth`]).
    pub depth: usize,
    /// Sender-side undelivered-data age: `now − publish time` of the oldest
    /// unacked summary in the outbox, `0` when the outbox is empty (nothing
    /// the receiver is missing), `-1` on rx-side rows.
    pub staleness_s: f64,
    /// Sender-side outbox depth (unacked summaries queued).
    pub outbox: usize,
    /// Cumulative bytes sent on the link (tx side; 0 on rx rows).
    pub bytes: u64,
    /// Cumulative messages sent on the link (tx side; 0 on rx rows).
    pub msgs: u64,
    /// Cumulative retry sends on the link (tx side).
    pub retries: u64,
    /// Cumulative snapshot catch-ups sent on the link (tx side).
    pub snapshots: u64,
    /// Receiver-side: seconds since the receiver last heard the publisher
    /// (`-1` on tx-side rows).
    pub heard_age_s: f64,
    /// Cumulative sequence gaps the receiver detected on the link (rx side).
    pub gaps: u64,
    /// Cumulative anti-entropy resyncs the receiver issued (rx side).
    pub resyncs: u64,
}

impl LinkObservation {
    /// An empty tx-side row for `from -> to` at `depth` (rx fields marked
    /// absent).
    pub fn tx(from: u32, to: u32, depth: usize) -> Self {
        Self {
            from,
            to,
            depth,
            staleness_s: 0.0,
            outbox: 0,
            bytes: 0,
            msgs: 0,
            retries: 0,
            snapshots: 0,
            heard_age_s: -1.0,
            gaps: 0,
            resyncs: 0,
        }
    }

    /// An empty rx-side row for `from -> to` at `depth` (tx fields marked
    /// absent).
    pub fn rx(from: u32, to: u32, depth: usize) -> Self {
        Self {
            staleness_s: -1.0,
            heard_age_s: 0.0,
            ..Self::tx(from, to, depth)
        }
    }
}

/// Exact nearest-rank percentile of an ascending-sorted slice (0 when
/// empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Debug, Default)]
struct LinkAccum {
    depth: usize,
    /// Every tx-side staleness sample, for exact quantiles at finalize.
    staleness: Vec<f64>,
    staleness_max_s: f64,
    outbox_max: usize,
    bytes: u64,
    msgs: u64,
    retries: u64,
    snapshots: u64,
    heard_age_max_s: f64,
    gaps: u64,
    resyncs: u64,
}

/// Streaming per-link aggregator: feed it every [`LinkObservation`] from
/// every sample barrier; [`HealthMap::finalize`] renders the per-link and
/// per-depth report. Cumulative counters are merged by `max` — the two
/// sides report disjoint counters, and a crashed site's counter reset
/// leaves the pre-crash high-water mark in place.
#[derive(Debug, Default)]
pub struct HealthMap {
    links: std::collections::BTreeMap<(u32, u32), LinkAccum>,
}

impl HealthMap {
    /// Fold one observation row into the map.
    pub fn observe(&mut self, obs: &LinkObservation) {
        let acc = self.links.entry((obs.from, obs.to)).or_default();
        acc.depth = obs.depth;
        if obs.staleness_s >= 0.0 {
            acc.staleness.push(obs.staleness_s);
            acc.staleness_max_s = acc.staleness_max_s.max(obs.staleness_s);
        }
        if obs.heard_age_s >= 0.0 {
            acc.heard_age_max_s = acc.heard_age_max_s.max(obs.heard_age_s);
        }
        acc.outbox_max = acc.outbox_max.max(obs.outbox);
        acc.bytes = acc.bytes.max(obs.bytes);
        acc.msgs = acc.msgs.max(obs.msgs);
        acc.retries = acc.retries.max(obs.retries);
        acc.snapshots = acc.snapshots.max(obs.snapshots);
        acc.gaps = acc.gaps.max(obs.gaps);
        acc.resyncs = acc.resyncs.max(obs.resyncs);
    }

    /// Fold a batch of rows (one sample barrier's worth).
    pub fn observe_all(&mut self, rows: &[LinkObservation]) {
        for obs in rows {
            self.observe(obs);
        }
    }

    /// Aggregate everything observed so far into a deterministic report.
    pub fn finalize(&self) -> HealthReport {
        let mut links = Vec::with_capacity(self.links.len());
        let mut by_depth: std::collections::BTreeMap<usize, (usize, Vec<f64>, u64, u64)> =
            std::collections::BTreeMap::new();
        let mut all: Vec<f64> = Vec::new();
        for (&(from, to), acc) in &self.links {
            let mut sorted = acc.staleness.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite staleness"));
            links.push(LinkReport {
                from,
                to,
                depth: acc.depth,
                staleness_p50_s: percentile(&sorted, 0.50),
                staleness_p99_s: percentile(&sorted, 0.99),
                staleness_max_s: acc.staleness_max_s,
                outbox_max: acc.outbox_max,
                bytes: acc.bytes,
                msgs: acc.msgs,
                retries: acc.retries,
                snapshots: acc.snapshots,
                heard_age_max_s: acc.heard_age_max_s,
                gaps: acc.gaps,
                resyncs: acc.resyncs,
            });
            let slot = by_depth.entry(acc.depth).or_default();
            slot.0 += 1;
            slot.1.extend_from_slice(&sorted);
            slot.2 += acc.bytes;
            slot.3 += acc.retries;
            all.extend_from_slice(&sorted);
        }
        let mut depths = Vec::with_capacity(by_depth.len());
        let mut lag = 0.0;
        for (depth, (count, mut samples, bytes, retries)) in by_depth {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite staleness"));
            let p99 = percentile(&samples, 0.99);
            // A depth-d cell only converges once data has crossed every hop
            // below it too: attribute the *cumulative* p99 staleness.
            lag += p99;
            depths.push(DepthReport {
                depth,
                links: count,
                staleness_p99_s: p99,
                bytes,
                retries,
                convergence_lag_s: lag,
            });
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite staleness"));
        HealthReport {
            links,
            depths,
            staleness_p99_s: percentile(&all, 0.99),
        }
    }
}

/// Per-link aggregate of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Publishing site.
    pub from: u32,
    /// Receiving site.
    pub to: u32,
    /// Overlay depth class.
    pub depth: usize,
    /// Median undelivered-data age (s).
    pub staleness_p50_s: f64,
    /// 99th-percentile undelivered-data age (s).
    pub staleness_p99_s: f64,
    /// Worst undelivered-data age seen (s).
    pub staleness_max_s: f64,
    /// Deepest outbox seen.
    pub outbox_max: usize,
    /// Cumulative bytes sent.
    pub bytes: u64,
    /// Cumulative messages sent.
    pub msgs: u64,
    /// Cumulative retry sends.
    pub retries: u64,
    /// Cumulative snapshot catch-ups sent.
    pub snapshots: u64,
    /// Worst receiver-side heard age seen (s).
    pub heard_age_max_s: f64,
    /// Cumulative receiver-detected sequence gaps.
    pub gaps: u64,
    /// Cumulative receiver-issued resyncs.
    pub resyncs: u64,
}

/// Per-overlay-depth rollup: how much convergence lag each hop class
/// contributes — the measurement ROADMAP item 4's adaptive publish cadence
/// needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthReport {
    /// Overlay depth class (1 = core links).
    pub depth: usize,
    /// Directed links in this class.
    pub links: usize,
    /// p99 undelivered-data age across the class's links (s).
    pub staleness_p99_s: f64,
    /// Cumulative bytes across the class.
    pub bytes: u64,
    /// Cumulative retries across the class.
    pub retries: u64,
    /// Cumulative p99 staleness of this and every shallower class (s): the
    /// modeled lag for data to converge out to this depth.
    pub convergence_lag_s: f64,
}

/// The finalized gossip health report of a run: per-link aggregates plus
/// the per-depth convergence-lag attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-link rows, ordered by `(from, to)`.
    pub links: Vec<LinkReport>,
    /// Per-depth rollups, ascending depth.
    pub depths: Vec<DepthReport>,
    /// Global p99 undelivered-data age across every link (s).
    pub staleness_p99_s: f64,
}

fn jnum(v: f64) -> String {
    format!("{v:?}")
}

impl HealthReport {
    /// The per-link row for `from -> to`, if the link exists.
    pub fn link(&self, from: u32, to: u32) -> Option<&LinkReport> {
        self.links.iter().find(|l| l.from == from && l.to == to)
    }

    /// The modeled convergence lag out to `depth`, if any link class
    /// reaches it.
    pub fn depth_lag(&self, depth: usize) -> Option<f64> {
        self.depths
            .iter()
            .find(|d| d.depth == depth)
            .map(|d| d.convergence_lag_s)
    }

    /// Canonical JSON rendering: fixed key order, shortest round-tripping
    /// floats — byte-identical across worker counts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from\":{},\"to\":{},\"depth\":{},\"staleness_p50_s\":{},\
                 \"staleness_p99_s\":{},\"staleness_max_s\":{},\"outbox_max\":{},\
                 \"bytes\":{},\"msgs\":{},\"retries\":{},\"snapshots\":{},\
                 \"heard_age_max_s\":{},\"gaps\":{},\"resyncs\":{}}}",
                l.from,
                l.to,
                l.depth,
                jnum(l.staleness_p50_s),
                jnum(l.staleness_p99_s),
                jnum(l.staleness_max_s),
                l.outbox_max,
                l.bytes,
                l.msgs,
                l.retries,
                l.snapshots,
                jnum(l.heard_age_max_s),
                l.gaps,
                l.resyncs,
            ));
        }
        out.push_str("],\"depths\":[");
        for (i, d) in self.depths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"depth\":{},\"links\":{},\"staleness_p99_s\":{},\"bytes\":{},\
                 \"retries\":{},\"convergence_lag_s\":{}}}",
                d.depth,
                d.links,
                jnum(d.staleness_p99_s),
                d.bytes,
                d.retries,
                jnum(d.convergence_lag_s),
            ));
        }
        out.push_str(&format!(
            "],\"staleness_p99_s\":{}}}",
            jnum(self.staleness_p99_s)
        ));
        out
    }

    /// Human-readable table (the `aequus-health` bin's output).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "link      depth  stale_p50  stale_p99  stale_max  outbox  \
             bytes      msgs   retries  snaps  heard_max  gaps  resyncs\n",
        );
        for l in &self.links {
            out.push_str(&format!(
                "{:<9} {:<6} {:>9.1} {:>10.1} {:>10.1} {:>7} {:>10} {:>6} {:>8} {:>6} {:>10.1} {:>5} {:>8}\n",
                format!("{}->{}", l.from, l.to),
                l.depth,
                l.staleness_p50_s,
                l.staleness_p99_s,
                l.staleness_max_s,
                l.outbox_max,
                l.bytes,
                l.msgs,
                l.retries,
                l.snapshots,
                l.heard_age_max_s,
                l.gaps,
                l.resyncs,
            ));
        }
        out.push_str("\ndepth  links  stale_p99  bytes      retries  conv_lag\n");
        for d in &self.depths {
            out.push_str(&format!(
                "{:<6} {:<6} {:>9.1} {:>10} {:>8} {:>9.1}\n",
                d.depth, d.links, d.staleness_p99_s, d.bytes, d.retries, d.convergence_lag_s,
            ));
        }
        out.push_str(&format!(
            "\nglobal staleness_p99_s: {:.1}\n",
            self.staleness_p99_s
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 60.0,
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_s(1, 0.5), 10.0);
        assert_eq!(p.backoff_s(2, 0.5), 20.0);
        assert_eq!(p.backoff_s(3, 0.5), 40.0);
        assert_eq!(p.backoff_s(4, 0.5), 60.0, "capped");
        assert_eq!(p.backoff_s(40, 0.5), 60.0, "huge attempt counts saturate");
    }

    #[test]
    fn jitter_bounds_and_determinism() {
        let p = RetryPolicy {
            ack_timeout_s: 10.0,
            max_backoff_s: 1e9,
            jitter_frac: 0.2,
            ..RetryPolicy::default()
        };
        let mut a = JitterRng::new(7);
        let mut b = JitterRng::new(7);
        for _ in 0..1000 {
            let u = a.next_unit();
            assert_eq!(u, b.next_unit(), "same seed, same stream");
            assert!((0.0..1.0).contains(&u));
            let back = p.backoff_s(1, u);
            assert!((8.0..=12.0).contains(&back), "{back}");
        }
        let mut c = JitterRng::new(8);
        assert_ne!(a.next_unit(), c.next_unit());
    }

    #[test]
    fn from_timings_tracks_the_exchange_latency() {
        let t = ServiceTimings::default();
        let p = RetryPolicy::from_timings(&t);
        assert_eq!(p.ack_timeout_s, t.ack_deadline_s());
        assert!(p.max_backoff_s >= p.ack_timeout_s);
        assert_eq!(p.max_backoff_s, t.uss_publish_interval_s);
    }

    #[test]
    fn message_kinds_and_data_flag() {
        let s = UsageSummary {
            site: SiteId(0),
            seq: 1,
            slot_s: 60.0,
            per_user: Default::default(),
            relayed: Default::default(),
        };
        let summary = UssMessage::Summary {
            summary: s.clone(),
            ctx: None,
        };
        assert!(summary.is_data());
        assert_eq!(summary.trace_ctx(), None);
        let traced = UssMessage::Snapshot {
            summary: s,
            ctx: Some(TraceCtx {
                trace_id: 7,
                span: 9,
            }),
        };
        assert!(traced.is_data());
        assert_eq!(traced.trace_ctx().unwrap().trace_id, 7);
        for (msg, kind) in [
            (
                UssMessage::Ack {
                    from: SiteId(1),
                    seq: 3,
                },
                "ack",
            ),
            (
                UssMessage::Resync {
                    from: SiteId(1),
                    from_seq: 2,
                    to_seq: 4,
                },
                "resync",
            ),
            (
                UssMessage::SnapshotRequest { from: SiteId(1) },
                "snapshot_request",
            ),
        ] {
            assert!(!msg.is_data());
            assert_eq!(msg.kind(), kind);
        }
    }

    fn sample_messages() -> Vec<UssMessage> {
        let mut per_user = std::collections::BTreeMap::new();
        per_user.insert(
            aequus_core::GridUser::new("u007"),
            [(3u64, 120.5), (9u64, 600.0)].into_iter().collect(),
        );
        let mut relayed = std::collections::BTreeMap::new();
        relayed.insert(SiteId(4), per_user.clone());
        let summary = UsageSummary {
            site: SiteId(2),
            seq: 11,
            slot_s: 300.0,
            per_user,
            relayed,
        };
        let ctx = TraceCtx {
            trace_id: 77,
            span: 9,
        };
        vec![
            UssMessage::Summary {
                summary: summary.clone(),
                ctx: None,
            },
            UssMessage::Summary {
                summary: summary.clone(),
                ctx: Some(ctx),
            },
            UssMessage::Snapshot {
                summary,
                ctx: Some(ctx),
            },
            UssMessage::Ack {
                from: SiteId(1),
                seq: 3,
            },
            UssMessage::Resync {
                from: SiteId(1),
                from_seq: 2,
                to_seq: 4,
            },
            UssMessage::SnapshotRequest { from: SiteId(1) },
        ]
    }

    #[test]
    fn wire_size_equals_encoded_length() {
        for msg in sample_messages() {
            for enc in [Encoding::Dense, Encoding::Delta] {
                assert_eq!(
                    msg.wire_size(enc),
                    msg.encode(enc).len() as u64,
                    "{} under {enc:?}",
                    msg.kind()
                );
            }
        }
    }

    #[test]
    fn message_encode_round_trips() {
        for msg in sample_messages() {
            for enc in [Encoding::Dense, Encoding::Delta] {
                let bytes = msg.encode(enc);
                let (decoded, dec_enc) = UssMessage::decode(&bytes).unwrap();
                assert_eq!(decoded, msg);
                if msg.is_data() {
                    assert_eq!(dec_enc, enc);
                }
            }
        }
    }

    #[test]
    fn truncated_messages_never_decode() {
        for msg in sample_messages() {
            let bytes = msg.encode(Encoding::Delta);
            for cut in 0..bytes.len() {
                assert!(
                    UssMessage::decode(&bytes[..cut]).is_err(),
                    "{} cut at {cut}",
                    msg.kind()
                );
            }
        }
    }

    /// Every overlay must connect all sites, with symmetric links, and the
    /// non-forwarding set must never separate two forwarding components.
    #[test]
    fn overlays_are_connected_and_symmetric() {
        for n in [1usize, 2, 3, 5, 8, 17, 32] {
            for overlay in [
                OverlayTopology::FullMesh,
                OverlayTopology::Tree { fanout: 1 },
                OverlayTopology::Tree { fanout: 2 },
                OverlayTopology::Tree { fanout: 4 },
                OverlayTopology::Hub { hubs: 1 },
                OverlayTopology::Hub { hubs: 3 },
            ] {
                let adj: Vec<Vec<usize>> = (0..n).map(|i| overlay.neighbors(i, n)).collect();
                for (i, nbrs) in adj.iter().enumerate() {
                    for &j in nbrs {
                        assert!(j < n && j != i, "{overlay:?} n={n}: bad link {i}->{j}");
                        assert!(
                            adj[j].contains(&i),
                            "{overlay:?} n={n}: asymmetric link {i}->{j}"
                        );
                    }
                }
                // BFS from 0.
                let mut seen = vec![false; n];
                let mut queue = vec![0usize];
                seen[0] = true;
                while let Some(i) = queue.pop() {
                    for &j in &adj[i] {
                        if !seen[j] {
                            seen[j] = true;
                            queue.push(j);
                        }
                    }
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "{overlay:?} n={n}: overlay not connected"
                );
            }
        }
    }

    #[test]
    fn forwarding_marks_interior_nodes_only() {
        let tree = OverlayTopology::Tree { fanout: 2 };
        // 7 sites: 0 (root), 1, 2 interior; 3..=6 leaves.
        assert!(tree.forwards(0, 7));
        assert!(tree.forwards(1, 7));
        assert!(tree.forwards(2, 7));
        for leaf in 3..7 {
            assert!(!tree.forwards(leaf, 7));
        }
        let hub = OverlayTopology::Hub { hubs: 2 };
        assert!(hub.forwards(0, 6) && hub.forwards(1, 6));
        for leaf in 2..6 {
            assert!(!hub.forwards(leaf, 6));
        }
        for i in 0..6 {
            assert!(!OverlayTopology::FullMesh.forwards(i, 6));
        }
    }

    #[test]
    fn hub_links_are_sparse() {
        let overlay = OverlayTopology::Hub { hubs: 4 };
        let n = 32;
        let links: usize = (0..n).map(|i| overlay.neighbors(i, n).len()).sum();
        // 4*3 intra-hub (directed) + 28 leaves * 2 directions.
        assert_eq!(links, 12 + 56);
        let full: usize = (0..n)
            .map(|i| OverlayTopology::FullMesh.neighbors(i, n).len())
            .sum();
        assert_eq!(full, 32 * 31);
    }

    #[test]
    fn node_and_link_depths() {
        let mesh = OverlayTopology::FullMesh;
        assert_eq!(mesh.node_depth(5, 8), 0);
        assert_eq!(mesh.link_depth(2, 5, 8), 1, "every link spans one hop");
        let tree = OverlayTopology::Tree { fanout: 2 };
        // 7 sites: 0 root; 1,2 depth 1; 3..=6 depth 2.
        assert_eq!(tree.node_depth(0, 7), 0);
        assert_eq!(tree.node_depth(1, 7), 1);
        assert_eq!(tree.node_depth(2, 7), 1);
        for leaf in 3..7 {
            assert_eq!(tree.node_depth(leaf, 7), 2);
        }
        assert_eq!(tree.link_depth(0, 1, 7), 1);
        assert_eq!(tree.link_depth(1, 3, 7), 2);
        assert_eq!(tree.link_depth(3, 1, 7), 2, "direction-independent");
        let hub = OverlayTopology::Hub { hubs: 2 };
        assert_eq!(hub.node_depth(0, 6), 0);
        assert_eq!(hub.node_depth(4, 6), 1);
        assert_eq!(hub.link_depth(0, 1, 6), 1);
        assert_eq!(hub.link_depth(0, 4, 6), 1);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[5.0], 0.5), 5.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
    }

    #[test]
    fn health_map_merges_tx_and_rx_sides() {
        let mut map = HealthMap::default();
        // Sender side of 0->1 over three samples; staleness grows then
        // drains.
        for (stale, outbox, bytes, msgs, retries) in [
            (0.0, 0, 100, 2, 0),
            (45.0, 2, 250, 5, 1),
            (0.0, 0, 300, 7, 1),
        ] {
            map.observe(&LinkObservation {
                staleness_s: stale,
                outbox,
                bytes,
                msgs,
                retries,
                ..LinkObservation::tx(0, 1, 1)
            });
        }
        // Receiver side of the same link.
        map.observe(&LinkObservation {
            heard_age_s: 80.0,
            gaps: 1,
            resyncs: 1,
            ..LinkObservation::rx(0, 1, 1)
        });
        // A second, deeper link.
        map.observe(&LinkObservation {
            staleness_s: 120.0,
            bytes: 50,
            ..LinkObservation::tx(1, 3, 2)
        });
        let report = map.finalize();
        assert_eq!(report.links.len(), 2);
        let l = report.link(0, 1).expect("link 0->1");
        assert_eq!(l.depth, 1);
        assert_eq!(l.staleness_max_s, 45.0);
        assert_eq!(l.staleness_p50_s, 0.0);
        assert_eq!(l.outbox_max, 2);
        assert_eq!((l.bytes, l.msgs, l.retries), (300, 7, 1));
        assert_eq!(l.heard_age_max_s, 80.0, "rx row merged in");
        assert_eq!((l.gaps, l.resyncs), (1, 1));
        // Depth rollup: cumulative convergence lag.
        assert_eq!(report.depths.len(), 2);
        assert_eq!(report.depths[0].depth, 1);
        assert_eq!(report.depths[0].staleness_p99_s, 45.0);
        assert_eq!(report.depths[1].depth, 2);
        assert_eq!(report.depths[1].staleness_p99_s, 120.0);
        assert_eq!(report.depths[1].convergence_lag_s, 165.0, "cumulative");
        assert_eq!(report.depth_lag(2), Some(165.0));
        assert_eq!(report.staleness_p99_s, 120.0);
        // Rendering is deterministic and structurally sane.
        let json = report.to_json();
        assert!(json.starts_with("{\"links\":[{\"from\":0,\"to\":1,"));
        assert!(json.contains("\"convergence_lag_s\":165.0"));
        assert_eq!(json, map.finalize().to_json(), "finalize is pure");
        assert!(report.render().contains("0->1"));
    }

    #[test]
    fn health_map_counters_survive_a_reset() {
        // A crash resets the sender's cumulative counters; the map keeps
        // the high-water mark rather than going backwards.
        let mut map = HealthMap::default();
        map.observe(&LinkObservation {
            bytes: 500,
            msgs: 9,
            ..LinkObservation::tx(2, 0, 1)
        });
        map.observe(&LinkObservation {
            bytes: 40,
            msgs: 1,
            ..LinkObservation::tx(2, 0, 1)
        });
        let l = map.finalize();
        assert_eq!((l.links[0].bytes, l.links[0].msgs), (500, 9));
    }
}
