//! A full per-site Aequus installation: one instance of each service plus a
//! `libaequus` client, wired together as in Figure 2 of the paper. "Each of
//! the simulated clusters hosts its own Aequus installation, and they
//! communicate only by exchanging data through the USS services."

use crate::fcs::Fcs;
use crate::irs::Irs;
use crate::libaequus::LibAequus;
use crate::participation::ParticipationMode;
use crate::pds::Pds;
use crate::reliability::{RetryPolicy, StalePolicy, UssMessage};
use crate::timings::ServiceTimings;
use crate::ums::Ums;
use crate::uss::Uss;
use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::policy::PolicyTree;
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::{UsageRecord, UsageSummary};
use aequus_core::{GridUser, SiteId, SystemUser};
use aequus_store::{MemStorage, SiteStore, StoreConfig, StoreStats, WalRecord};
use aequus_telemetry::{Telemetry, TraceCtx};
use std::collections::VecDeque;

/// One site's complete Aequus stack.
#[derive(Debug)]
pub struct AequusSite {
    id: SiteId,
    timings: ServiceTimings,
    /// Policy Distribution Service.
    pub pds: Pds,
    /// Usage Statistics Service.
    pub uss: Uss,
    /// Usage Monitoring Service.
    pub ums: Ums,
    /// Fairshare Calculation Service.
    pub fcs: Fcs,
    /// Identity Resolution Service.
    pub irs: Irs,
    /// The client library the local RMS links against.
    pub lib: LibAequus,
    /// Usage reports in flight from the RMS to the USS (reporting delay),
    /// each carrying the causal trace context of its `rms.report` root span
    /// when the span layer sampled it.
    pending_reports: VecDeque<(f64, UsageRecord, Option<TraceCtx>)>,
    /// Summaries produced but not yet delivered to peers.
    outbox: Vec<UsageSummary>,
    last_publish_s: f64,
    /// Trace context of the latest traced UMS refresh, consumed by the next
    /// FCS refresh (the two run on independent cadences).
    refresh_trace: Option<TraceCtx>,
    /// Trace context of the latest traced FCS refresh, consumed by the
    /// first fairshare query served from it (`lib.query` leaf span plus
    /// decision-provenance capture).
    serving_trace: Option<TraceCtx>,
    /// Site-wide telemetry domain (disabled by default).
    telemetry: Telemetry,
    /// Durable per-site store (WAL + checkpoints), when enabled. The
    /// backing [`MemStorage`] plays the disk: it survives a simulated
    /// crash inside the store even though the services' state is wiped.
    store: Option<SiteStore>,
    /// Store stats accumulated over previous incarnations (pre-crash).
    store_stats_base: StoreStats,
    /// Deterministic salt stream for simulated torn writes at crashes.
    store_salt: u64,
    /// Last checkpoint cut time.
    last_checkpoint_s: f64,
}

impl AequusSite {
    /// Build a site installation.
    pub fn new(
        id: SiteId,
        policy: PolicyTree,
        config: FairshareConfig,
        projection: ProjectionKind,
        timings: ServiceTimings,
        mode: ParticipationMode,
        usage_slot_s: f64,
    ) -> Self {
        let decay = config.decay;
        Self {
            id,
            pds: Pds::new(policy),
            uss: Uss::new(id, mode, usage_slot_s),
            ums: Ums::new(timings.ums_refresh_interval_s, decay),
            fcs: Fcs::new(config, projection, timings.fcs_refresh_interval_s),
            irs: Irs::new(),
            lib: LibAequus::new(timings.lib_cache_ttl_s, timings.lib_identity_ttl_s),
            pending_reports: VecDeque::new(),
            outbox: Vec::new(),
            last_publish_s: f64::NEG_INFINITY,
            refresh_trace: None,
            serving_trace: None,
            timings,
            telemetry: Telemetry::disabled(),
            store: None,
            store_stats_base: StoreStats::default(),
            store_salt: 0,
            last_checkpoint_s: f64::NEG_INFINITY,
        }
    }

    /// Attach a durable store over a fresh in-memory backend. Once enabled,
    /// ingested usage records, published sequence numbers, and absorbed peer
    /// summaries are journaled to the WAL; checkpoints are cut on the
    /// configured cadence; and a crash/recover cycle replays the store
    /// *before* falling back to anti-entropy catch-up for the delta.
    /// `seed` decorrelates the simulated torn-write junk across sites.
    pub fn enable_store(&mut self, cfg: StoreConfig, seed: u64) {
        // `MemStorage` operations are infallible, so open cannot fail here;
        // keep the site serving (without durability) if that ever changes.
        let Ok((mut store, _recovered)) = SiteStore::open(Box::new(MemStorage::new()), cfg) else {
            return;
        };
        store.set_telemetry(&self.telemetry);
        self.store = Some(store);
        self.store_stats_base = StoreStats::default();
        self.store_salt = seed ^ (u64::from(self.id.0) << 32);
        self.last_checkpoint_s = f64::NEG_INFINITY;
    }

    /// Whether a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Cumulative store health counters across all incarnations (crashes
    /// re-open the store over the surviving backend), when enabled.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store
            .as_ref()
            .map(|s| StoreStats::across_restart(self.store_stats_base, s.stats()))
    }

    /// Journal one record, reporting (never panicking on) store errors —
    /// a failing disk degrades durability, not service.
    fn journal(&mut self, rec: &WalRecord, now_s: f64) {
        let Some(store) = &mut self.store else {
            return;
        };
        if let Err(e) = store.append(rec) {
            self.telemetry
                .event(now_s, "site.store_error", || format!("journal: {e}"));
        }
    }

    /// Wire the whole site — every service plus the client library — into
    /// one telemetry domain. Pass [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.telemetry = t.clone();
        self.pds.set_telemetry(t);
        self.uss.set_telemetry(t);
        self.ums.set_telemetry(t);
        self.fcs.set_telemetry(t);
        self.irs.set_telemetry(t);
        self.lib.set_telemetry(t);
        if let Some(store) = &mut self.store {
            store.set_telemetry(t);
        }
    }

    /// The site's telemetry handle (disabled unless wired).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The site identity.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// The configured delay chain.
    pub fn timings(&self) -> &ServiceTimings {
        &self.timings
    }

    /// RMS-facing: query the fairshare factor of a grid user (libaequus
    /// cache → FCS precomputed values).
    pub fn fairshare(&mut self, user: &GridUser, now_s: f64) -> f64 {
        let value = self.lib.get_fairshare(&self.fcs, user, now_s);
        if self.serving_trace.is_some() {
            self.trace_query(user.clone(), value, now_s);
        }
        value
    }

    /// Complete a sampled pipeline trace at the serving edge: a `lib.query`
    /// leaf span plus (when capture is on) the full decision provenance —
    /// recorded only when the served value is bit-identical to the current
    /// FCS factor, so every captured explanation replays to the value the
    /// RMS actually saw.
    fn trace_query(&mut self, user: GridUser, value: f64, now_s: f64) {
        let Some(fresh) = self.fcs.factors().get(&user).copied() else {
            return;
        };
        if fresh.to_bits() != value.to_bits() {
            return; // client cache served an older tree's value
        }
        let ctx = self.serving_trace.take();
        let leaf = self.telemetry.child_span(ctx, "lib.query", now_s, || {
            format!("served {value:?} for {user}")
        });
        if self.telemetry.provenance_enabled() {
            if let Some(ex) = self.fcs.explain(&user) {
                let trace_id = leaf.or(ctx).map_or(0, |c| c.trace_id);
                self.telemetry
                    .record_provenance(now_s, user.as_str(), trace_id, ex.factor, || ex.to_json());
            }
        }
    }

    /// RMS-facing: report a completed job's usage. The record reaches the
    /// USS only after the configured reporting delay (stage I of §IV-A-2).
    pub fn report_completion(&mut self, record: UsageRecord, now_s: f64) {
        self.telemetry
            .trace_report(record.job.0, record.user.as_str(), now_s);
        let ctx = self.telemetry.start_trace("rms.report", now_s, || {
            format!("job {} user {}", record.job.0, record.user)
        });
        self.pending_reports
            .push_back((now_s + self.timings.report_delay_s, record, ctx));
    }

    /// RMS-facing: resolve a system account to its grid identity.
    pub fn resolve_identity(&mut self, system: &SystemUser, now_s: f64) -> Option<GridUser> {
        self.lib.resolve_identity(&mut self.irs, system, now_s)
    }

    /// Register the site's exchange peers and reliability configuration
    /// (see [`Uss::set_peers`]). `jitter_seed` decorrelates retry timing
    /// across sites deterministically.
    pub fn configure_exchange(
        &mut self,
        tx_peers: &[SiteId],
        rx_peers: &[SiteId],
        retry: RetryPolicy,
        stale_policy: StalePolicy,
        jitter_seed: u64,
    ) {
        self.uss.set_peers(tx_peers, rx_peers);
        self.uss.configure_reliability(retry, jitter_seed);
        self.uss.set_stale_policy(stale_policy);
    }

    /// Drain every reliable-exchange message due at `now_s` (fresh sends,
    /// backoff-expired retries, crash catch-up requests), addressed per peer.
    pub fn poll_messages(&mut self, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        self.uss.poll(now_s)
    }

    /// Deliver one reliable-exchange message, returning the responses to
    /// route back (acks, resync pulls, resync answers, snapshots).
    /// Data-bearing messages are journaled to the durable store (when
    /// enabled) so replay restores the remote view without re-gossip; the
    /// positive-delta merge makes re-applying them on recovery idempotent.
    pub fn deliver_message(&mut self, msg: &UssMessage, now_s: f64) -> Vec<(SiteId, UssMessage)> {
        match msg {
            UssMessage::Summary { summary, .. } => {
                self.journal(
                    &WalRecord::PeerData {
                        summary: summary.clone(),
                        snapshot: false,
                    },
                    now_s,
                );
            }
            UssMessage::Snapshot { summary, .. } => {
                self.journal(
                    &WalRecord::PeerData {
                        summary: summary.clone(),
                        snapshot: true,
                    },
                    now_s,
                );
            }
            _ => {}
        }
        self.uss.receive_message(msg, now_s)
    }

    /// Site crash: wipe all volatile service state — the USS exchange state
    /// and remote view, the UMS usage cache, and the FCS fairshare tree. The
    /// USS local histogram survives (accounting database), as do in-flight
    /// usage reports (the RMS-side spool redelivers them) and the libaequus
    /// client caches (the library lives inside the RMS process, which is
    /// modeled as staying up and serving stale values while degraded).
    pub fn crash(&mut self, now_s: f64) {
        if let Some(store) = &mut self.store {
            // The write in flight at the instant of the crash lands as a
            // torn tail the next open must truncate. With a store attached
            // the local histogram is honestly volatile too — the WAL, not a
            // magic accounting database, rebuilds it.
            self.store_salt = self
                .store_salt
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x1405_7B7E_F767_814F);
            if let Err(e) = store.simulate_torn_write(self.store_salt) {
                self.telemetry
                    .event(now_s, "site.store_error", || format!("torn write: {e}"));
            }
            self.uss.crash_volatile();
        } else {
            self.uss.crash();
        }
        self.ums.reset();
        self.fcs.reset();
        self.lib.set_degraded(true);
        self.outbox.clear();
        self.refresh_trace = None;
        self.serving_trace = None;
        self.telemetry.event(now_s, "site.crash", || {
            format!("site {} crashed", self.id.0)
        });
    }

    /// Crash recovery. With a durable store attached, the store is re-opened
    /// over the surviving backend first — replaying the WAL (truncating the
    /// torn tail, skipping corrupt frames), installing the best checkpoint,
    /// and re-applying every surviving record — so anti-entropy catch-up
    /// only has to cover the delta since the crash instead of full history.
    /// Then (store or not) snapshot catch-up is requested from every
    /// expected publisher and the client library's degraded mode is lifted.
    /// Publication resumes on the next tick.
    pub fn recover(&mut self, now_s: f64) {
        if let Some(store) = self.store.take() {
            self.recover_from_store(store, now_s);
        }
        self.uss.request_catchup();
        self.lib.set_degraded(false);
        self.last_publish_s = f64::NEG_INFINITY;
        self.telemetry.event(now_s, "site.recover", || {
            format!("site {} recovered", self.id.0)
        });
    }

    /// Re-open the durable store (modeling the recovering process reading
    /// its disk back) and reinstall checkpoint + WAL state into the
    /// services. Replay is telemetry-quiet — the original operations were
    /// already counted — and emits no protocol responses: acks were
    /// delivered before the crash, and any still-open gap re-triggers on
    /// the live path after catch-up.
    fn recover_from_store(&mut self, store: SiteStore, now_s: f64) {
        self.store_stats_base = StoreStats::across_restart(self.store_stats_base, store.stats());
        let cfg = store.config();
        let storage = store.into_storage();
        let (mut store, recovered) = match SiteStore::open(storage, cfg) {
            Ok(opened) => opened,
            Err(e) => {
                // An unrecoverable backend loses durability, not service:
                // the site continues store-less on pure anti-entropy.
                self.telemetry
                    .event(now_s, "site.store_error", || format!("reopen: {e}"));
                return;
            }
        };
        store.set_telemetry(&self.telemetry);
        if let Some(ckpt) = &recovered.checkpoint {
            match self.uss.install_checkpoint(ckpt) {
                Ok(()) => {
                    // An all-dirty USS set must route the next UMS refresh
                    // down the rebase path; install the epoch cache only
                    // when the checkpointed dirt is per-user.
                    if ckpt.dirty_users.is_some() {
                        self.ums
                            .install_state(ckpt.ums_epoch_s, ckpt.ums_cached.clone());
                    }
                }
                Err(e) => {
                    self.telemetry
                        .event(now_s, "site.store_error", || format!("checkpoint: {e}"));
                }
            }
        }
        let replayed = recovered.records.len();
        for (_lsn, rec) in &recovered.records {
            match rec {
                WalRecord::Usage(u) => self.uss.replay_ingest(u),
                WalRecord::PeerData { summary, snapshot } => {
                    self.uss.replay_peer_data(summary, *snapshot)
                }
                WalRecord::Publish { seq } => self.uss.replay_publish_seq(*seq),
            }
        }
        let report = recovered.report;
        self.telemetry.event(now_s, "site.store_recover", || {
            format!(
                "checkpoint {}, {replayed} records replayed, {} torn tail(s) truncated, {} corrupt frame(s) skipped",
                recovered
                    .checkpoint
                    .as_ref()
                    .map_or("none".to_string(), |c| format!("lsn {}", c.lsn)),
                report.torn_tails, report.corrupt_frames
            )
        });
        self.last_checkpoint_s = f64::NEG_INFINITY;
        self.store = Some(store);
    }

    /// Deliver a usage summary from a peer site.
    pub fn receive_summary(&mut self, summary: &UsageSummary) {
        self.journal_broadcast(summary, 0.0);
        self.uss.receive(summary);
    }

    /// Deliver a usage summary from a peer site with the delivery time (so
    /// the gossip-merge telemetry event carries a real timestamp).
    pub fn receive_summary_at(&mut self, summary: &UsageSummary, now_s: f64) {
        self.journal_broadcast(summary, now_s);
        self.uss.receive_at(summary, now_s);
    }

    /// Journal a legacy broadcast-mode summary (cumulative cells, no
    /// reliable-exchange framing around it).
    fn journal_broadcast(&mut self, summary: &UsageSummary, now_s: f64) {
        if self.store.is_some() {
            self.journal(
                &WalRecord::PeerData {
                    summary: summary.clone(),
                    snapshot: false,
                },
                now_s,
            );
        }
    }

    /// Drain summaries produced since the last call (the simulator delivers
    /// these to peers with network latency).
    pub fn take_outbox(&mut self) -> Vec<UsageSummary> {
        std::mem::take(&mut self.outbox)
    }

    /// Advance the site to `now_s`: deliver due usage reports, publish
    /// summaries on the publication interval, and refresh the UMS/FCS caches
    /// on their intervals. Idempotent within a timestep.
    pub fn tick(&mut self, now_s: f64) {
        // Stage I: reporting delay.
        while self
            .pending_reports
            .front()
            .is_some_and(|(due, _, _)| *due <= now_s)
        {
            let Some((_, rec, ctx)) = self.pending_reports.pop_front() else {
                break;
            };
            self.uss.ingest(&rec);
            self.journal(&WalRecord::Usage(rec.clone()), now_s);
            let end_slot = (rec.end_s / self.uss.slot_duration()).floor().max(0.0) as u64;
            self.telemetry.trace_ingest(rec.job.0, end_slot, now_s);
            let job = rec.job.0;
            if let Some(ingest_ctx) = self.telemetry.child_span(ctx, "uss.ingest", now_s, || {
                format!("job {job} ingested into slot {end_slot}")
            }) {
                self.uss.note_ingest_trace(ingest_ctx);
            }
        }
        // Stage II-a: USS publication.
        if now_s - self.last_publish_s >= self.timings.uss_publish_interval_s {
            if let Some(summary) = self.uss.publish(now_s) {
                self.journal(&WalRecord::Publish { seq: summary.seq }, now_s);
                if self.telemetry.traces_active() > 0 {
                    let users: Vec<&str> = summary.per_user.keys().map(GridUser::as_str).collect();
                    let current_slot = (now_s / self.uss.slot_duration()).floor().max(0.0) as u64;
                    self.telemetry.trace_publish(&users, current_slot, now_s);
                }
                if self.uss.peer_count() == 0 {
                    // Legacy broadcast mode: no registered peers, the caller
                    // distributes summaries itself. With peers registered the
                    // reliable exchange owns delivery via `poll_messages`.
                    self.outbox.push(summary);
                }
            }
            self.last_publish_s = now_s;
        }
        // Peer staleness drives the stale-data policy before the UMS reads
        // the (possibly suppressed) remote usage.
        self.uss.update_staleness(now_s);
        // Stage II-b and II-c: UMS and FCS cache refreshes — the dirty-set
        // flow USS → UMS → FCS drains here. Only *actual* refreshes mark
        // tracer visibility (a cache-valid no-op reveals nothing new).
        if self.ums.refresh(&mut self.uss, now_s) {
            self.telemetry.trace_ums_refresh(now_s);
            let pipe = self.uss.take_pipeline_trace();
            let site_id = self.id.0;
            self.refresh_trace = self
                .telemetry
                .child_span(pipe, "ums.refresh", now_s, || {
                    format!("site {site_id} decay cache refreshed")
                })
                .or(self.refresh_trace);
        }
        if self.fcs.refresh(&mut self.pds, &mut self.ums, now_s) {
            self.telemetry.trace_fcs_refresh(now_s);
            if let Some(rt) = self.refresh_trace.take() {
                let users = self.fcs.factors().len();
                self.serving_trace =
                    self.telemetry
                        .child_span(Some(rt), "fcs.refresh", now_s, || {
                            format!("tree recomputed, {users} users projected")
                        });
            }
        }
        // Durable-store checkpoint cadence: snapshot the USS/UMS state and
        // compact the WAL segments the snapshot covers.
        if let Some(cfg) = self.store.as_ref().map(SiteStore::config) {
            if now_s - self.last_checkpoint_s >= cfg.checkpoint_interval_s {
                self.checkpoint_now(now_s);
            }
        }
    }

    /// Cut a checkpoint immediately (normally driven by the store's
    /// `checkpoint_interval_s` from [`AequusSite::tick`]).
    pub fn checkpoint_now(&mut self, now_s: f64) {
        let Some(store) = &mut self.store else {
            return;
        };
        let mut ckpt = self
            .uss
            .export_checkpoint(store.next_lsn().saturating_sub(1), now_s);
        let (epoch, cached) = self.ums.export_state();
        ckpt.ums_epoch_s = epoch;
        ckpt.ums_cached = cached;
        if let Err(e) = store.checkpoint(&ckpt) {
            self.telemetry
                .event(now_s, "site.store_error", || format!("checkpoint: {e}"));
        }
        self.last_checkpoint_s = now_s;
    }

    /// RMS-facing: intern a grid user into a stable dense id for
    /// allocation-free priority queries on the scheduling hot path.
    pub fn intern_user(&mut self, user: &GridUser) -> aequus_core::UserId {
        self.fcs.intern_user(user)
    }

    /// RMS-facing: query the fairshare factor by interned id.
    pub fn fairshare_by_id(&mut self, id: aequus_core::UserId, now_s: f64) -> f64 {
        let value = self.lib.get_fairshare_by_id(&self.fcs, id, now_s);
        if self.serving_trace.is_some() {
            if let Some(user) = self.fcs.user_of(id).cloned() {
                self.trace_query(user, value, now_s);
            }
        }
        value
    }

    /// The current fairshare tree, if computed (metrics access).
    pub fn fairshare_tree(&self) -> Option<&FairshareTree> {
        self.fcs.tree()
    }

    /// Usage reports still in the delay pipeline.
    pub fn pending_report_count(&self) -> usize {
        self.pending_reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::ids::JobId;
    use aequus_core::policy::flat_policy;

    fn site(id: u32, mode: ParticipationMode) -> AequusSite {
        AequusSite::new(
            SiteId(id),
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            ServiceTimings {
                report_delay_s: 5.0,
                uss_publish_interval_s: 10.0,
                ums_refresh_interval_s: 10.0,
                fcs_refresh_interval_s: 10.0,
                lib_cache_ttl_s: 5.0,
                lib_identity_ttl_s: 60.0,
                exchange_latency_s: 1.0,
            },
            mode,
            60.0,
        )
    }

    fn record(site_id: u32, user: &str, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(1),
            user: GridUser::new(user),
            site: SiteId(site_id),
            cores: 1,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn reporting_delay_respected() {
        let mut s = site(0, ParticipationMode::Full);
        s.report_completion(record(0, "a", 0.0, 100.0), 100.0);
        s.tick(102.0);
        assert_eq!(s.pending_report_count(), 1, "still in flight");
        assert_eq!(s.uss.records_ingested(), 0);
        s.tick(105.0);
        assert_eq!(s.pending_report_count(), 0);
        assert_eq!(s.uss.records_ingested(), 1);
    }

    #[test]
    fn full_pipeline_updates_fairshare() {
        let mut s = site(0, ParticipationMode::Full);
        s.tick(0.0);
        let before = s.fairshare(&GridUser::new("a"), 0.0);
        // a consumes heavily; after the delay chain its factor must drop.
        s.report_completion(record(0, "a", 0.0, 500.0), 500.0);
        for t in [505.0, 520.0, 540.0, 560.0] {
            s.tick(t);
        }
        let after = s.fairshare(&GridUser::new("a"), 560.0);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn cross_site_exchange_converges_views() {
        let mut s0 = site(0, ParticipationMode::Full);
        let mut s1 = site(1, ParticipationMode::Full);
        s0.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s0.tick(310.0);
        s0.tick(400.0); // slot closed, publish
        let out = s0.take_outbox();
        assert!(!out.is_empty());
        for summary in &out {
            s1.receive_summary(summary);
        }
        s1.tick(420.0);
        // Site 1 never ran the job but sees the usage.
        let fa = s1.fairshare(&GridUser::new("a"), 430.0);
        let fb = s1.fairshare(&GridUser::new("b"), 430.0);
        assert!(
            fa < fb,
            "a's remote usage lowers its priority: {fa} vs {fb}"
        );
    }

    #[test]
    fn identity_resolution_through_site() {
        let mut s = site(0, ParticipationMode::Full);
        s.irs
            .store_mapping(SystemUser::new("grid7"), GridUser::new("a"));
        assert_eq!(
            s.resolve_identity(&SystemUser::new("grid7"), 0.0),
            Some(GridUser::new("a"))
        );
    }

    #[test]
    fn crash_wipes_volatile_state_and_recovery_catches_up() {
        let mut s0 = site(0, ParticipationMode::Full);
        let mut s1 = site(1, ParticipationMode::Full);
        let peers = [SiteId(0), SiteId(1)];
        let retry = RetryPolicy::default();
        s0.configure_exchange(&peers, &peers, retry, StalePolicy::ServeStale, 1);
        s1.configure_exchange(&peers, &peers, retry, StalePolicy::ServeStale, 2);
        // s0 runs a job; the exchange carries it to s1.
        s0.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s0.tick(310.0);
        s0.tick(400.0);
        let mut msgs = s0.poll_messages(400.0);
        while !msgs.is_empty() {
            let mut next = Vec::new();
            for (dest, msg) in msgs {
                let target = if dest == SiteId(0) { &mut s0 } else { &mut s1 };
                next.extend(target.deliver_message(&msg, 400.0));
            }
            msgs = next;
        }
        assert!((s1.uss.remote_usage_of(&GridUser::new("a")) - 300.0).abs() < 1e-9);
        // s1 crashes: remote view and caches are gone, local data survives.
        s1.report_completion(record(1, "b", 0.0, 100.0), 300.0);
        s1.tick(310.0);
        s1.crash(500.0);
        assert_eq!(s1.uss.remote_usage_of(&GridUser::new("a")), 0.0);
        assert!((s1.uss.local_usage_of(&GridUser::new("b")) - 100.0).abs() < 1e-9);
        assert!(s1.fairshare_tree().is_none(), "FCS tree wiped");
        // Recovery pulls a snapshot from s0.
        s1.recover(600.0);
        let mut msgs = s1.poll_messages(600.0);
        while !msgs.is_empty() {
            let mut next = Vec::new();
            for (dest, msg) in msgs {
                let target = if dest == SiteId(0) { &mut s0 } else { &mut s1 };
                next.extend(target.deliver_message(&msg, 600.0));
            }
            msgs = next;
        }
        assert!(
            (s1.uss.remote_usage_of(&GridUser::new("a")) - 300.0).abs() < 1e-9,
            "snapshot catch-up restored the remote view"
        );
    }

    #[test]
    fn store_replays_local_usage_across_crash() {
        // With a durable store, the local histogram is volatile at the
        // crash — and the WAL alone rebuilds it, bit for bit.
        let mut s = site(0, ParticipationMode::Full);
        s.enable_store(StoreConfig::default(), 42);
        s.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s.tick(310.0);
        let before = s.uss.local_usage_of(&GridUser::new("a"));
        assert!((before - 300.0).abs() < 1e-9);

        s.crash(400.0);
        assert_eq!(
            s.uss.local_usage_of(&GridUser::new("a")),
            0.0,
            "store mode: local histogram is honestly volatile"
        );
        s.recover(500.0);
        let after = s.uss.local_usage_of(&GridUser::new("a"));
        assert_eq!(before.to_bits(), after.to_bits(), "WAL replay is exact");
        assert_eq!(s.uss.records_ingested(), 1);

        let stats = s.store_stats().unwrap();
        assert_eq!(stats.torn_tails, 1, "crash left a torn tail: {stats:?}");
        assert!(stats.frames_replayed >= 1);
    }

    #[test]
    fn store_checkpoint_covers_records_and_publish_seq() {
        let mut s = site(0, ParticipationMode::Full);
        s.enable_store(
            StoreConfig {
                checkpoint_interval_s: 50.0,
                ..StoreConfig::default()
            },
            7,
        );
        s.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s.tick(310.0); // ingest + publish + checkpoint
        s.tick(400.0); // second publish (slot closed), next checkpoint
        let seq_before = s.uss.next_seq();
        let local_before = s.uss.local_usage_of(&GridUser::new("a"));
        assert!(s.store_stats().unwrap().checkpoints >= 1);

        s.crash(450.0);
        s.recover(460.0);
        assert_eq!(
            s.uss.next_seq(),
            seq_before,
            "publish cursor survives via checkpoint + Publish records"
        );
        assert_eq!(
            local_before.to_bits(),
            s.uss.local_usage_of(&GridUser::new("a")).to_bits(),
            "checkpointed local cells install bitwise exact"
        );
    }

    #[test]
    fn store_replays_peer_data_without_re_gossip() {
        let mut s0 = site(0, ParticipationMode::Full);
        let mut s1 = site(1, ParticipationMode::Full);
        s1.enable_store(StoreConfig::default(), 9);
        let peers = [SiteId(0), SiteId(1)];
        let retry = RetryPolicy::default();
        s0.configure_exchange(&peers, &peers, retry, StalePolicy::ServeStale, 1);
        s1.configure_exchange(&peers, &peers, retry, StalePolicy::ServeStale, 2);
        s0.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s0.tick(310.0);
        s0.tick(400.0);
        let mut msgs = s0.poll_messages(400.0);
        while !msgs.is_empty() {
            let mut next = Vec::new();
            for (dest, msg) in msgs {
                let target = if dest == SiteId(0) { &mut s0 } else { &mut s1 };
                next.extend(target.deliver_message(&msg, 400.0));
            }
            msgs = next;
        }
        let remote_before = s1.uss.remote_usage_of(&GridUser::new("a"));
        assert!((remote_before - 300.0).abs() < 1e-9);

        // Crash and recover *without* any message exchange: the journaled
        // peer summaries alone restore the remote view.
        s1.crash(500.0);
        assert_eq!(s1.uss.remote_usage_of(&GridUser::new("a")), 0.0);
        s1.recover(600.0);
        let remote_after = s1.uss.remote_usage_of(&GridUser::new("a"));
        assert_eq!(
            remote_before.to_bits(),
            remote_after.to_bits(),
            "WAL peer-data replay restored the remote view"
        );
    }

    #[test]
    fn store_metrics_flow_into_site_telemetry() {
        let mut s = site(0, ParticipationMode::Full);
        let t = Telemetry::enabled();
        s.set_telemetry(&t);
        s.enable_store(StoreConfig::default(), 3);
        s.report_completion(record(0, "a", 0.0, 100.0), 100.0);
        s.tick(110.0);
        s.crash(200.0);
        s.recover(300.0);
        let snap = t.snapshot().unwrap();
        assert!(
            snap.counters
                .get("aequus_store_frames_appended_total")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        assert_eq!(snap.counters.get("aequus_store_torn_tails_total"), Some(&1));
        assert!(
            snap.gauges
                .get("aequus_store_wal_bytes")
                .copied()
                .unwrap_or(0.0)
                > 0.0
        );
    }

    #[test]
    fn disjunct_site_produces_nothing() {
        let mut s = site(0, ParticipationMode::Disjunct);
        s.report_completion(record(0, "a", 0.0, 300.0), 300.0);
        s.tick(310.0);
        s.tick(500.0);
        assert!(s.take_outbox().is_empty());
    }
}
