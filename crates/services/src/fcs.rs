//! Fairshare Calculation Service (FCS): "fetches usage trees from the UMS
//! and policy trees from the PDS periodically, and pre-calculates fairshare
//! trees with the current fairshare values for all users. This way, no
//! real-time calculations need to take place when new jobs arrive" (§II-A).

use crate::pds::Pds;
use crate::ums::Ums;
use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::projection::{Projection, ProjectionKind};
use aequus_core::GridUser;
use std::collections::BTreeMap;

/// Per-site fairshare calculation service.
pub struct Fcs {
    config: FairshareConfig,
    projection_kind: ProjectionKind,
    projection: Box<dyn Projection>,
    refresh_interval_s: f64,
    tree: Option<FairshareTree>,
    factors: BTreeMap<GridUser, f64>,
    last_refresh_s: Option<f64>,
    last_policy_version: u64,
    refreshes: u64,
}

impl std::fmt::Debug for Fcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fcs")
            .field("projection", &self.projection_kind)
            .field("refresh_interval_s", &self.refresh_interval_s)
            .field("last_refresh_s", &self.last_refresh_s)
            .field("refreshes", &self.refreshes)
            .finish()
    }
}

impl Fcs {
    /// Create an FCS with the given algorithm configuration, projection
    /// choice, and refresh (cache) interval.
    pub fn new(
        config: FairshareConfig,
        projection: ProjectionKind,
        refresh_interval_s: f64,
    ) -> Self {
        Self {
            config,
            projection_kind: projection,
            projection: projection.build(),
            refresh_interval_s,
            tree: None,
            factors: BTreeMap::new(),
            last_refresh_s: None,
            last_policy_version: 0,
            refreshes: 0,
        }
    }

    /// Switch the projection algorithm at run time ("the approach to use is
    /// configurable and can be changed during run-time", §III-C). Takes
    /// effect on the next refresh.
    pub fn set_projection(&mut self, kind: ProjectionKind) {
        self.projection_kind = kind;
        self.projection = kind.build();
        self.last_refresh_s = None; // force recompute
    }

    /// The active projection algorithm.
    pub fn projection_kind(&self) -> ProjectionKind {
        self.projection_kind
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }

    /// Whether the precomputed values are stale at `now_s` (interval elapsed
    /// or the policy version moved).
    pub fn is_stale(&self, pds: &Pds, now_s: f64) -> bool {
        if pds.version() != self.last_policy_version {
            return true;
        }
        match self.last_refresh_s {
            None => true,
            Some(t) => now_s - t >= self.refresh_interval_s,
        }
    }

    /// Recompute the fairshare tree and projected factors if stale.
    /// Returns whether a recomputation happened.
    pub fn refresh(&mut self, pds: &Pds, ums: &Ums, now_s: f64) -> bool {
        if !self.is_stale(pds, now_s) {
            return false;
        }
        let tree = FairshareTree::compute(pds.policy(), ums.usage(), &self.config, now_s);
        self.factors = self.projection.project(&tree);
        self.tree = Some(tree);
        self.last_refresh_s = Some(now_s);
        self.last_policy_version = pds.version();
        self.refreshes += 1;
        true
    }

    /// Query the precomputed fairshare factor for a user — constant time,
    /// no calculation ("pre-calculated values already exist and can be
    /// assigned to the job based on the associated user identity").
    pub fn query(&self, user: &GridUser) -> Option<f64> {
        self.factors.get(user).copied()
    }

    /// The precomputed factors for all users.
    pub fn factors(&self) -> &BTreeMap<GridUser, f64> {
        &self.factors
    }

    /// The last computed fairshare tree (for metrics and vector extraction).
    pub fn tree(&self) -> Option<&FairshareTree> {
        self.tree.as_ref()
    }

    /// Number of precomputations performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participation::ParticipationMode;
    use crate::uss::Uss;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::policy::flat_policy;
    use aequus_core::usage::UsageRecord;
    use aequus_core::DecayPolicy;

    fn setup() -> (Pds, Ums, Uss) {
        let pds = Pds::new(flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap());
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 100.0,
        });
        let mut ums = Ums::new(0.0, DecayPolicy::None);
        ums.refresh(&uss, 0.0);
        (pds, ums, uss)
    }

    #[test]
    fn precomputes_factors_for_all_users() {
        let (pds, ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        assert!(fcs.query(&GridUser::new("a")).is_none(), "nothing before refresh");
        assert!(fcs.refresh(&pds, &ums, 0.0));
        let fa = fcs.query(&GridUser::new("a")).unwrap();
        let fb = fcs.query(&GridUser::new("b")).unwrap();
        assert!(fb > fa, "b has no usage → higher factor");
    }

    #[test]
    fn query_is_cached_between_refreshes() {
        let (pds, ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        fcs.refresh(&pds, &ums, 0.0);
        assert!(!fcs.refresh(&pds, &ums, 10.0));
        assert!(fcs.refresh(&pds, &ums, 31.0));
        assert_eq!(fcs.refreshes(), 2);
    }

    #[test]
    fn policy_change_invalidates_cache() {
        let (mut pds, ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 1e9);
        fcs.refresh(&pds, &ums, 0.0);
        pds.set_share(&aequus_core::EntityPath::parse("/a"), 0.9).unwrap();
        assert!(fcs.refresh(&pds, &ums, 1.0), "version bump forces recompute");
    }

    #[test]
    fn runtime_projection_switch() {
        let (pds, ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 1e9);
        fcs.refresh(&pds, &ums, 0.0);
        let percental_b = fcs.query(&GridUser::new("b")).unwrap();
        fcs.set_projection(ProjectionKind::Dictionary);
        fcs.refresh(&pds, &ums, 1.0);
        let dict_b = fcs.query(&GridUser::new("b")).unwrap();
        // Dictionary assigns rank-spaced values: 2 users → 2/3 and 1/3.
        assert!((dict_b - 2.0 / 3.0).abs() < 1e-9, "{dict_b}");
        assert_ne!(percental_b, dict_b);
    }

    #[test]
    fn unknown_user_unprioritized() {
        let (pds, ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        fcs.refresh(&pds, &ums, 0.0);
        assert!(fcs.query(&GridUser::new("ghost")).is_none());
    }
}
