//! Fairshare Calculation Service (FCS): "fetches usage trees from the UMS
//! and policy trees from the PDS periodically, and pre-calculates fairshare
//! trees with the current fairshare values for all users. This way, no
//! real-time calculations need to take place when new jobs arrive" (§II-A).
//!
//! ## Incremental refresh
//!
//! The FCS is the consumer end of the dirty-set flow USS → UMS → FCS: each
//! refresh drains the [`DirtySet`](aequus_core::arena::DirtySet)s
//! accumulated by the PDS (policy edits)
//! and UMS (usage changes) and hands them to
//! [`FairshareTree::recompute_dirty`], which re-derives only the affected
//! subtrees. A full from-scratch rebuild happens only on the first refresh,
//! after a projection switch, or when the dirty set says "all" (structural
//! policy change, non-separable decay). After the tree update, only users
//! under changed nodes are re-projected — except under projections without
//! a per-user entry point (Dictionary re-ranks globally).
//!
//! The FCS also interns users into dense [`UserId`]s so the RMS-side hot
//! path can query priorities by index instead of cloning `GridUser` keys.
//! Ids are assigned on first sight, never reused, and survive full rebuilds.

use crate::pds::Pds;
use crate::ums::Ums;
use aequus_core::arena::{RecomputeStats, UserId};
use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::projection::{Projection, ProjectionKind};
use aequus_core::GridUser;
use aequus_telemetry::{Counter, Histogram, Telemetry};
use std::collections::{BTreeMap, BTreeSet};

/// Pre-registered FCS metric handles (no-ops until wired).
#[derive(Debug, Clone, Default)]
struct FcsMetrics {
    telemetry: Telemetry,
    refreshes: Counter,
    full_refreshes: Counter,
    queries: Counter,
    /// Hot-path query counter — the id-indexed lookup gets a counter, not a
    /// clock-reading span, to stay within the telemetry overhead budget.
    id_queries: Counter,
    h_refresh_full: Histogram,
    h_refresh_incr: Histogram,
    h_query: Histogram,
}

impl FcsMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            telemetry: t.clone(),
            refreshes: t.counter("aequus_fcs_refreshes_total"),
            full_refreshes: t.counter("aequus_fcs_full_refreshes_total"),
            queries: t.counter("aequus_fcs_queries_total"),
            id_queries: t.counter("aequus_fcs_id_queries_total"),
            h_refresh_full: t.histogram("aequus_fcs_refresh_full_s"),
            h_refresh_incr: t.histogram("aequus_fcs_refresh_incremental_s"),
            h_query: t.histogram("aequus_fcs_query_s"),
        }
    }
}

/// Per-site fairshare calculation service.
pub struct Fcs {
    config: FairshareConfig,
    projection_kind: ProjectionKind,
    projection: Box<dyn Projection>,
    refresh_interval_s: f64,
    tree: Option<FairshareTree>,
    factors: BTreeMap<GridUser, f64>,
    /// Stable user interner: `GridUser` → dense id, assigned on first sight.
    user_ids: BTreeMap<GridUser, UserId>,
    users_by_id: Vec<GridUser>,
    /// Factor table indexed by [`UserId`]; `NaN` marks "no precomputed
    /// factor" (the id is interned but the user is absent from the tree).
    factor_slots: Vec<f64>,
    last_refresh_s: Option<f64>,
    last_policy_version: u64,
    /// Next refresh must rebuild from scratch (projection switch). Tracked
    /// separately from `last_refresh_s` so cadence statistics stay truthful.
    force_full: bool,
    refreshes: u64,
    full_refreshes: u64,
    incremental_refreshes: u64,
    nodes_recomputed_total: u64,
    last_recompute: RecomputeStats,
    /// Telemetry handles (no-ops until wired).
    metrics: FcsMetrics,
}

impl std::fmt::Debug for Fcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fcs")
            .field("projection", &self.projection_kind)
            .field("refresh_interval_s", &self.refresh_interval_s)
            .field("last_refresh_s", &self.last_refresh_s)
            .field("refreshes", &self.refreshes)
            .field("full_refreshes", &self.full_refreshes)
            .field("incremental_refreshes", &self.incremental_refreshes)
            .finish()
    }
}

impl Fcs {
    /// Create an FCS with the given algorithm configuration, projection
    /// choice, and refresh (cache) interval.
    pub fn new(
        config: FairshareConfig,
        projection: ProjectionKind,
        refresh_interval_s: f64,
    ) -> Self {
        Self {
            config,
            projection_kind: projection,
            projection: projection.build(),
            refresh_interval_s,
            tree: None,
            factors: BTreeMap::new(),
            user_ids: BTreeMap::new(),
            users_by_id: Vec::new(),
            factor_slots: Vec::new(),
            last_refresh_s: None,
            last_policy_version: 0,
            force_full: false,
            refreshes: 0,
            full_refreshes: 0,
            incremental_refreshes: 0,
            nodes_recomputed_total: 0,
            last_recompute: RecomputeStats::default(),
            metrics: FcsMetrics::default(),
        }
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = FcsMetrics::wire(t);
    }

    /// Switch the projection algorithm at run time ("the approach to use is
    /// configurable and can be changed during run-time", §III-C). Takes
    /// effect on the next refresh, which rebuilds from scratch; the refresh
    /// timestamp is left untouched so cadence statistics stay truthful.
    pub fn set_projection(&mut self, kind: ProjectionKind) {
        self.projection_kind = kind;
        self.projection = kind.build();
        self.force_full = true;
    }

    /// Site crash: drop the volatile fairshare state — the precomputed tree
    /// and every projected factor. The user interner survives (ids are
    /// handed out to the RMS and must stay stable across restarts; on a real
    /// deployment it would be persisted alongside the accounting database),
    /// as do the monotone refresh counters. The next refresh rebuilds from
    /// scratch.
    pub fn reset(&mut self) {
        self.tree = None;
        self.factors.clear();
        self.factor_slots.iter_mut().for_each(|v| *v = f64::NAN);
        self.last_refresh_s = None;
        self.force_full = true;
    }

    /// The active projection algorithm.
    pub fn projection_kind(&self) -> ProjectionKind {
        self.projection_kind
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &FairshareConfig {
        &self.config
    }

    /// Whether the precomputed values are stale at `now_s` (interval
    /// elapsed, the policy version moved, or a projection switch pends).
    pub fn is_stale(&self, pds: &Pds, now_s: f64) -> bool {
        if self.force_full || pds.version() != self.last_policy_version {
            return true;
        }
        match self.last_refresh_s {
            None => true,
            Some(t) => now_s - t >= self.refresh_interval_s,
        }
    }

    /// Recompute the fairshare tree and projected factors if stale, draining
    /// the PDS and UMS dirty sets. Returns whether a refresh happened.
    pub fn refresh(&mut self, pds: &mut Pds, ums: &mut Ums, now_s: f64) -> bool {
        if !self.is_stale(pds, now_s) {
            return false;
        }
        let mut dirty = pds.take_dirty();
        dirty.merge(&ums.take_dirty());
        // A version bump the dirty set cannot explain (no edited path, no
        // mark-all) means the policy changed behind our back: rebuild.
        let unexplained_version = pds.version() != self.last_policy_version
            && !dirty.is_all()
            && dirty.paths().next().is_none();
        let need_full =
            self.tree.is_none() || self.force_full || dirty.is_all() || unexplained_version;

        if need_full {
            let _span = self.metrics.h_refresh_full.start_timer();
            self.metrics.full_refreshes.inc();
            self.metrics.telemetry.event(now_s, "fcs.full_rebuild", || {
                if unexplained_version {
                    "unexplained policy version bump".to_string()
                } else if dirty.is_all() {
                    "dirty set marked all".to_string()
                } else {
                    "first refresh or projection switch".to_string()
                }
            });
            let tree = FairshareTree::compute(pds.policy(), ums.usage(), &self.config, now_s);
            self.factors = self.projection.project(&tree);
            self.last_recompute = RecomputeStats {
                full: true,
                nodes_recomputed: tree.node_count() as u64,
                shares_refreshed: tree.node_count() as u64,
                changed_elements: Vec::new(),
            };
            self.tree = Some(tree);
            self.full_refreshes += 1;
            self.force_full = false;
        } else if dirty.is_empty() {
            // Interval elapsed but nothing changed upstream: the refresh
            // happened (cadence-wise) and did zero recompute work.
            self.incremental_refreshes += 1;
            self.last_recompute = RecomputeStats::default();
            self.metrics.h_refresh_incr.record(0.0);
        } else if let Some(mut tree) = self.tree.take() {
            let _span = self.metrics.h_refresh_incr.start_timer();
            let stats = tree.recompute_dirty(pds.policy(), ums.usage(), &dirty, now_s);
            if stats.full {
                // The tree detected a structural mismatch and rebuilt.
                self.factors = self.projection.project(&tree);
                self.full_refreshes += 1;
                self.metrics.full_refreshes.inc();
                self.metrics.telemetry.event(now_s, "fcs.full_rebuild", || {
                    "structural mismatch during incremental recompute".to_string()
                });
            } else {
                // Re-project only users under nodes whose state changed.
                let mut affected: BTreeSet<GridUser> = BTreeSet::new();
                for id in &stats.changed_elements {
                    tree.users_under(*id, &mut affected);
                }
                let mut global_projection = false;
                for user in &affected {
                    match self.projection.project_user(&tree, user) {
                        Some(f) => {
                            self.factors.insert(user.clone(), f);
                        }
                        None => {
                            // No per-user entry point (Dictionary): any
                            // change can shift every rank — re-rank all.
                            global_projection = true;
                            break;
                        }
                    }
                }
                if global_projection && !affected.is_empty() {
                    self.factors = self.projection.project(&tree);
                }
                self.incremental_refreshes += 1;
            }
            self.tree = Some(tree);
            self.last_recompute = stats;
        } else {
            // `need_full` concluded a tree exists, but it does not (a state
            // a recovering site could conceivably reach). A serving site
            // must not panic: do no work now and schedule a full rebuild.
            self.force_full = true;
            self.last_recompute = RecomputeStats::default();
        }

        self.nodes_recomputed_total += self.last_recompute.nodes_recomputed;
        self.sync_factor_slots();
        self.last_refresh_s = Some(now_s);
        self.last_policy_version = pds.version();
        self.refreshes += 1;
        self.metrics.refreshes.inc();
        true
    }

    /// Rebuild the id-indexed factor table from the factor map, interning
    /// users seen for the first time. Flat `O(users)` — no tree work.
    fn sync_factor_slots(&mut self) {
        for slot in self.factor_slots.iter_mut() {
            *slot = f64::NAN;
        }
        let mut new_users: Vec<GridUser> = Vec::new();
        for (user, &factor) in &self.factors {
            match self.user_ids.get(user) {
                Some(id) => self.factor_slots[id.index()] = factor,
                None => new_users.push(user.clone()),
            }
        }
        for user in new_users {
            let factor = self.factors[&user];
            let id = self.intern_user(&user);
            self.factor_slots[id.index()] = factor;
        }
    }

    /// Intern a user, returning its stable dense id. Ids survive full
    /// rebuilds and are never reused.
    pub fn intern_user(&mut self, user: &GridUser) -> UserId {
        if let Some(id) = self.user_ids.get(user) {
            return *id;
        }
        let id = UserId(self.users_by_id.len() as u32);
        self.user_ids.insert(user.clone(), id);
        self.users_by_id.push(user.clone());
        self.factor_slots.push(f64::NAN);
        id
    }

    /// Resolve an already-interned user's id without interning.
    pub fn id_of(&self, user: &GridUser) -> Option<UserId> {
        self.user_ids.get(user).copied()
    }

    /// The user an id was assigned to.
    pub fn user_of(&self, id: UserId) -> Option<&GridUser> {
        self.users_by_id.get(id.index())
    }

    /// Query the precomputed fairshare factor for a user — constant time,
    /// no calculation ("pre-calculated values already exist and can be
    /// assigned to the job based on the associated user identity").
    pub fn query(&self, user: &GridUser) -> Option<f64> {
        let _span = self.metrics.h_query.start_timer();
        self.metrics.queries.inc();
        self.factors.get(user).copied()
    }

    /// Query by interned id: an index load instead of a map walk — the
    /// RMS-side hot path (counter-only instrumentation; see `FcsMetrics`).
    pub fn query_id(&self, id: UserId) -> Option<f64> {
        self.metrics.id_queries.inc();
        match self.factor_slots.get(id.index()) {
            Some(f) if !f.is_nan() => Some(*f),
            _ => None,
        }
    }

    /// The precomputed factors for all users.
    pub fn factors(&self) -> &BTreeMap<GridUser, f64> {
        &self.factors
    }

    /// The last computed fairshare tree (for metrics and vector extraction).
    pub fn tree(&self) -> Option<&FairshareTree> {
        self.tree.as_ref()
    }

    /// Capture the full decision provenance of `user`'s current factor under
    /// the active projection (see [`aequus_core::explain`]): policy path with
    /// per-level shares, distance decomposition, fairshare vector, and the
    /// projection inputs, replayable bit-for-bit. `None` before the first
    /// refresh or for users absent from the tree.
    pub fn explain(&self, user: &GridUser) -> Option<aequus_core::Explanation> {
        aequus_core::Explanation::capture(self.tree.as_ref()?, user, self.projection_kind)
    }

    /// When the factors were last refreshed.
    pub fn last_refresh(&self) -> Option<f64> {
        self.last_refresh_s
    }

    /// Number of precomputations performed (full + incremental).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Refreshes that rebuilt the tree from scratch.
    pub fn full_refreshes(&self) -> u64 {
        self.full_refreshes
    }

    /// Refreshes served by the incremental engine (including zero-work
    /// refreshes where nothing was dirty).
    pub fn incremental_refreshes(&self) -> u64 {
        self.incremental_refreshes
    }

    /// Total subtree-aggregate recomputations across all refreshes — the
    /// work metric the incremental engine minimizes.
    pub fn nodes_recomputed(&self) -> u64 {
        self.nodes_recomputed_total
    }

    /// What the most recent refresh did.
    pub fn last_recompute(&self) -> &RecomputeStats {
        &self.last_recompute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participation::ParticipationMode;
    use crate::uss::Uss;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::policy::{flat_policy, PolicyNode, PolicyTree};
    use aequus_core::usage::UsageRecord;
    use aequus_core::DecayPolicy;

    fn record(user: &str, start: f64, end: f64) -> UsageRecord {
        UsageRecord {
            job: JobId(1),
            user: GridUser::new(user),
            site: SiteId(0),
            cores: 1,
            start_s: start,
            end_s: end,
        }
    }

    fn setup() -> (Pds, Ums, Uss) {
        let pds = Pds::new(flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap());
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&record("a", 0.0, 100.0));
        let mut ums = Ums::new(0.0, DecayPolicy::None);
        ums.refresh(&mut uss, 0.0);
        (pds, ums, uss)
    }

    #[test]
    fn precomputes_factors_for_all_users() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        assert!(
            fcs.query(&GridUser::new("a")).is_none(),
            "nothing before refresh"
        );
        assert!(fcs.refresh(&mut pds, &mut ums, 0.0));
        let fa = fcs.query(&GridUser::new("a")).unwrap();
        let fb = fcs.query(&GridUser::new("b")).unwrap();
        assert!(fb > fa, "b has no usage → higher factor");
    }

    #[test]
    fn query_is_cached_between_refreshes() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        assert!(!fcs.refresh(&mut pds, &mut ums, 10.0));
        assert!(fcs.refresh(&mut pds, &mut ums, 31.0));
        assert_eq!(fcs.refreshes(), 2);
        // Nothing was dirty at t=31: the refresh did zero tree work.
        assert_eq!(fcs.full_refreshes(), 1);
        assert_eq!(fcs.incremental_refreshes(), 1);
        assert_eq!(fcs.last_recompute().nodes_recomputed, 0);
    }

    #[test]
    fn policy_change_invalidates_cache() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 1e9);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        pds.set_share(&aequus_core::EntityPath::parse("/a"), 0.9)
            .unwrap();
        assert!(
            fcs.refresh(&mut pds, &mut ums, 1.0),
            "version bump forces recompute"
        );
        // A share edit is served incrementally, not by a rebuild.
        assert_eq!(fcs.full_refreshes(), 1);
        assert_eq!(fcs.incremental_refreshes(), 1);
    }

    #[test]
    fn runtime_projection_switch() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 1e9);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        let percental_b = fcs.query(&GridUser::new("b")).unwrap();
        fcs.set_projection(ProjectionKind::Dictionary);
        fcs.refresh(&mut pds, &mut ums, 1.0);
        let dict_b = fcs.query(&GridUser::new("b")).unwrap();
        // Dictionary assigns rank-spaced values: 2 users → 2/3 and 1/3.
        assert!((dict_b - 2.0 / 3.0).abs() < 1e-9, "{dict_b}");
        assert_ne!(percental_b, dict_b);
    }

    #[test]
    fn projection_switch_keeps_cadence_stats_truthful() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 1e9);
        fcs.refresh(&mut pds, &mut ums, 5.0);
        fcs.set_projection(ProjectionKind::Bitwise);
        // The switch pends a rebuild without pretending no refresh ever ran.
        assert_eq!(fcs.last_refresh(), Some(5.0));
        assert!(fcs.is_stale(&pds, 6.0));
        fcs.refresh(&mut pds, &mut ums, 6.0);
        assert_eq!(fcs.last_refresh(), Some(6.0));
        assert_eq!(fcs.full_refreshes(), 2, "switch rebuilds from scratch");
    }

    #[test]
    fn unknown_user_unprioritized() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        assert!(fcs.query(&GridUser::new("ghost")).is_none());
    }

    #[test]
    fn single_user_update_recomputes_only_the_path() {
        // Acceptance criterion: one user's usage update touches exactly that
        // user's root→leaf path, observable through the FCS work counter.
        let policy = PolicyTree::new(PolicyNode::group(
            "root",
            1.0,
            vec![
                PolicyNode::group(
                    "g0",
                    0.5,
                    vec![PolicyNode::user("u0", 0.5), PolicyNode::user("u1", 0.5)],
                ),
                PolicyNode::group(
                    "g1",
                    0.5,
                    vec![PolicyNode::user("u2", 0.5), PolicyNode::user("u3", 0.5)],
                ),
            ],
        ))
        .unwrap();
        let mut pds = Pds::new(policy);
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&record("u0", 0.0, 100.0));
        uss.ingest(&record("u2", 0.0, 50.0));
        let mut ums = Ums::new(0.0, DecayPolicy::None);
        ums.refresh(&mut uss, 0.0);
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 0.0);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        assert_eq!(fcs.full_refreshes(), 1);
        let full_work = fcs.nodes_recomputed();

        // New usage for u2 only.
        uss.ingest(&record("u2", 100.0, 200.0));
        ums.refresh(&mut uss, 10.0);
        assert!(fcs.refresh(&mut pds, &mut ums, 10.0));
        assert_eq!(fcs.incremental_refreshes(), 1);
        // Exactly the path u2 → g1 → root.
        assert_eq!(fcs.last_recompute().nodes_recomputed, 3);
        assert_eq!(fcs.nodes_recomputed(), full_work + 3);
        // And the factors track the new usage: u2 fell behind u3.
        assert!(
            fcs.query(&GridUser::new("u2")).unwrap() < fcs.query(&GridUser::new("u3")).unwrap()
        );
    }

    #[test]
    fn incremental_factors_match_full_recompute() {
        // The projected factors after an incremental refresh are bit-equal
        // to a from-scratch FCS over the same state, for each projection.
        for kind in [
            ProjectionKind::Dictionary,
            ProjectionKind::Bitwise,
            ProjectionKind::Percental,
        ] {
            let (mut pds, mut ums, mut uss) = setup();
            let mut fcs = Fcs::new(FairshareConfig::default(), kind, 0.0);
            fcs.refresh(&mut pds, &mut ums, 0.0);
            uss.ingest(&record("b", 0.0, 400.0));
            ums.refresh(&mut uss, 1.0);
            pds.set_share(&aequus_core::EntityPath::parse("/a"), 0.7)
                .unwrap();
            fcs.refresh(&mut pds, &mut ums, 1.0);

            let mut fresh = Fcs::new(FairshareConfig::default(), kind, 0.0);
            fresh.refresh(&mut pds, &mut ums, 1.0);
            assert_eq!(fcs.factors().len(), fresh.factors().len());
            for (user, f) in fcs.factors() {
                assert_eq!(
                    f.to_bits(),
                    fresh.factors()[user].to_bits(),
                    "{kind:?} factor mismatch for {user:?}"
                );
            }
        }
    }

    #[test]
    fn user_ids_stable_across_rebuilds() {
        let (mut pds, mut ums, _) = setup();
        let mut fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 0.0);
        fcs.refresh(&mut pds, &mut ums, 0.0);
        let id_a = fcs.id_of(&GridUser::new("a")).unwrap();
        let id_b = fcs.id_of(&GridUser::new("b")).unwrap();
        assert_ne!(id_a, id_b);
        assert_eq!(fcs.query_id(id_a), fcs.query(&GridUser::new("a")));

        // Structural policy change forces a full rebuild; ids survive.
        pds.set_policy(flat_policy(&[("b", 0.4), ("c", 0.6)]).unwrap());
        fcs.refresh(&mut pds, &mut ums, 1.0);
        assert_eq!(fcs.id_of(&GridUser::new("b")), Some(id_b));
        assert_eq!(fcs.query_id(id_b), fcs.query(&GridUser::new("b")));
        // "a" left the policy: its id persists but no factor is published.
        assert_eq!(fcs.id_of(&GridUser::new("a")), Some(id_a));
        assert_eq!(fcs.query_id(id_a), None);
        // "c" is new and got a fresh id, not a's.
        let id_c = fcs.id_of(&GridUser::new("c")).unwrap();
        assert_ne!(id_c, id_a);
        assert_eq!(fcs.user_of(id_c), Some(&GridUser::new("c")));
    }
}
