//! Usage Monitoring Service (UMS): "gathers usage histograms from one or
//! more USSs and pre-computes usage trees based on the site-specific
//! policies" (§II-A). The UMS refresh interval is one of the cache times in
//! the §IV-A-2 delay chain.
//!
//! ## Incremental usage cache
//!
//! For *separable* decay policies ([`DecayPolicy::separable`]: none and
//! exponential), the UMS caches each user's usage weighted to a fixed
//! reference **epoch** instead of re-decaying the full histogram to `now` on
//! every refresh. Advancing time rescales every user's true decayed usage by
//! the same factor, which cancels in the fairshare tree's sibling-group
//! normalization — so cached values change *only when new usage arrives*,
//! and each refresh recomputes exactly the users the USSs marked dirty.
//! The accumulated [`DirtySet`] is drained by `Fcs::refresh`, which forwards
//! it to the incremental fairshare recompute.
//!
//! Non-separable decays (window, linear) shift the *relative* weights of
//! history slots as time passes, so every refresh re-decays everything and
//! marks the whole set dirty — correct, but never incremental.

use crate::uss::Uss;
use aequus_core::arena::DirtySet;
use aequus_core::{DecayPolicy, GridUser};
use aequus_telemetry::{Counter, Histogram, Telemetry};
use std::collections::BTreeMap;

/// Pre-registered UMS metric handles (no-ops until wired).
#[derive(Debug, Clone, Default)]
struct UmsMetrics {
    telemetry: Telemetry,
    refreshes: Counter,
    full_rebuilds: Counter,
    h_refresh: Histogram,
}

impl UmsMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            telemetry: t.clone(),
            refreshes: t.counter("aequus_ums_refreshes_total"),
            full_rebuilds: t.counter("aequus_ums_full_rebuilds_total"),
            h_refresh: t.histogram("aequus_ums_refresh_s"),
        }
    }
}

/// How many exponential half-lives the reference epoch may lag behind `now`
/// before it is rebased. Epoch weights of fresh usage grow as
/// `2^(lag / half_life)`; rebasing at 64 half-lives keeps them far away from
/// overflow (charges would need to exceed ~1e280) while making rebases —
/// each of which dirties every user once — essentially free in practice.
const REBASE_HALF_LIVES: f64 = 64.0;

/// Per-site usage monitoring service with a periodic refresh cache.
#[derive(Debug, Clone)]
pub struct Ums {
    refresh_interval_s: f64,
    decay: DecayPolicy,
    /// Per-user usage weights. For separable decays these are relative to
    /// [`epoch_s`](Self::epoch_s) (uniformly scaled, not absolute, values);
    /// otherwise they are the decayed usage as of the last refresh.
    cached: BTreeMap<GridUser, f64>,
    /// Reference epoch of the cached weights (separable decays only).
    epoch_s: Option<f64>,
    /// Users whose cached value changed since the last [`take_dirty`](Self::take_dirty).
    dirty: DirtySet,
    last_refresh_s: Option<f64>,
    refreshes: u64,
    full_rebuilds: u64,
    /// Telemetry handles (no-ops until wired).
    metrics: UmsMetrics,
}

impl Ums {
    /// Create a UMS that refreshes its usage tree every `refresh_interval_s`
    /// and ages usage with `decay`.
    pub fn new(refresh_interval_s: f64, decay: DecayPolicy) -> Self {
        Self {
            refresh_interval_s,
            decay,
            cached: BTreeMap::new(),
            epoch_s: None,
            dirty: DirtySet::new(),
            last_refresh_s: None,
            refreshes: 0,
            full_rebuilds: 0,
            metrics: UmsMetrics::default(),
        }
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = UmsMetrics::wire(t);
    }

    /// Whether the cache is stale at `now_s`.
    pub fn is_stale(&self, now_s: f64) -> bool {
        match self.last_refresh_s {
            None => true,
            Some(t) => now_s - t >= self.refresh_interval_s,
        }
    }

    /// Refresh the pre-computed per-user usage from the USS if the cache is
    /// stale, draining the USS's dirty-user set. Returns whether a refresh
    /// happened.
    pub fn refresh(&mut self, uss: &mut Uss, now_s: f64) -> bool {
        self.refresh_many(&mut [uss], now_s)
    }

    /// Refresh from several USS instances at once — "the UMS of each site
    /// gathers usage histograms from **one or more USSs**" (§II-A), e.g.
    /// a site fronting multiple clusters, each with its own statistics
    /// service. Per-user usage is summed across sources.
    pub fn refresh_many(&mut self, usses: &mut [&mut Uss], now_s: f64) -> bool {
        if !self.is_stale(now_s) {
            return false;
        }
        let _span = self.metrics.h_refresh.start_timer();
        if self.decay.separable() {
            self.refresh_separable(usses, now_s);
        } else {
            // Non-separable: relative slot weights move with time, so the
            // whole cache is re-decayed and everything is dirty.
            let mut combined: BTreeMap<GridUser, f64> = BTreeMap::new();
            for uss in usses.iter() {
                for (user, value) in uss.decayed_usage(now_s, self.decay) {
                    *combined.entry(user).or_insert(0.0) += value;
                }
            }
            self.cached = combined;
            self.dirty.mark_all();
            self.full_rebuilds += 1;
            self.metrics.full_rebuilds.inc();
            self.metrics.telemetry.event(now_s, "ums.full_rebuild", || {
                "non-separable decay: whole cache re-decayed".to_string()
            });
        }
        self.last_refresh_s = Some(now_s);
        self.refreshes += 1;
        self.metrics.refreshes.inc();
        true
    }

    fn refresh_separable(&mut self, usses: &mut [&mut Uss], now_s: f64) {
        let needs_rebase = match (self.epoch_s, self.decay) {
            (None, _) => true,
            (Some(epoch), DecayPolicy::Exponential { half_life_s }) => {
                now_s - epoch >= REBASE_HALF_LIVES * half_life_s
            }
            _ => false,
        };
        if needs_rebase {
            // Full rebuild at a fresh epoch: every weight changes at once.
            self.epoch_s = Some(now_s);
            let epoch = now_s;
            let mut combined: BTreeMap<GridUser, f64> = BTreeMap::new();
            for uss in usses.iter_mut() {
                uss.take_dirty(); // absorbed by the rebuild
                for user in uss.known_users() {
                    let value = uss.epoch_usage_of(&user, epoch, self.decay);
                    *combined.entry(user).or_insert(0.0) += value;
                }
            }
            self.cached = combined;
            self.dirty.mark_all();
            self.full_rebuilds += 1;
            self.metrics.full_rebuilds.inc();
            self.metrics.telemetry.event(now_s, "ums.full_rebuild", || {
                format!("epoch rebased to {epoch}")
            });
            return;
        }
        let epoch = self.epoch_s.expect("epoch set by rebase");
        // Incremental: only users the USSs marked dirty get re-summed.
        let mut touched: std::collections::BTreeSet<GridUser> = std::collections::BTreeSet::new();
        for uss in usses.iter_mut() {
            let drained = uss.take_dirty();
            debug_assert!(!drained.is_all(), "USS dirty sets are per-user");
            touched.extend(drained.users().cloned());
        }
        for user in touched {
            let value: f64 = usses
                .iter()
                .map(|uss| uss.epoch_usage_of(&user, epoch, self.decay))
                .sum();
            self.cached.insert(user.clone(), value);
            self.dirty.mark_user(user);
        }
    }

    /// Site crash: drop the volatile usage cache. The next refresh is a full
    /// rebuild at a fresh epoch, repopulated from the (durable) USS local
    /// histogram plus whatever remote state catch-up restores. Refresh
    /// counters survive — they are monotone sampled series, and a reset
    /// would read as telemetry going backwards.
    pub fn reset(&mut self) {
        self.cached.clear();
        self.epoch_s = None;
        self.dirty = DirtySet::new();
        self.last_refresh_s = None;
    }

    /// Export the cache for a durable-store checkpoint: the reference epoch
    /// and the per-user weights. Refresh counters are *not* exported — they
    /// are monotone telemetry series, not recoverable state.
    pub fn export_state(&self) -> (Option<f64>, BTreeMap<GridUser, f64>) {
        (self.epoch_s, self.cached.clone())
    }

    /// Install a checkpointed cache during store recovery. The whole cache
    /// is marked dirty (the FCS tree was reset by the crash and rebuilds
    /// fully anyway) and the staleness clock is cleared so the next tick
    /// refreshes immediately.
    ///
    /// Callers must only install an epoch when the feeding USS dirty set is
    /// per-user (checkpoint `dirty_users: Some(..)`): an installed epoch
    /// routes the next refresh down the incremental path, which requires
    /// per-user dirt. With an all-dirty USS, skip the install and let the
    /// first refresh rebase from scratch instead.
    pub fn install_state(&mut self, epoch_s: Option<f64>, cached: BTreeMap<GridUser, f64>) {
        self.epoch_s = epoch_s;
        self.cached = cached;
        self.dirty.mark_all();
        self.last_refresh_s = None;
    }

    /// Force an immediate refresh regardless of staleness.
    pub fn force_refresh(&mut self, uss: &mut Uss, now_s: f64) {
        self.last_refresh_s = None;
        self.refresh(uss, now_s);
    }

    /// Force an immediate multi-source refresh.
    pub fn force_refresh_many(&mut self, usses: &mut [&mut Uss], now_s: f64) {
        self.last_refresh_s = None;
        self.refresh_many(usses, now_s);
    }

    /// The pre-computed per-user usage weights. For separable decays these
    /// are relative to a fixed reference epoch — uniformly scaled across
    /// users, which is all the (normalizing) fairshare algorithm observes;
    /// otherwise they are absolute decayed totals as of the last refresh.
    pub fn usage(&self) -> &BTreeMap<GridUser, f64> {
        &self.cached
    }

    /// Users whose cached usage changed since the last drain (plus a
    /// mark-all after rebuilds), for the FCS's incremental recompute.
    pub fn take_dirty(&mut self) -> DirtySet {
        self.dirty.take()
    }

    /// The pending dirty set (inspection).
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// When the cache was last rebuilt.
    pub fn last_refresh(&self) -> Option<f64> {
        self.last_refresh_s
    }

    /// Number of refreshes performed (incremental or full).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of refreshes that re-decayed the whole cache (first refresh,
    /// epoch rebases, and every refresh under non-separable decay).
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// The reference epoch of the cached weights, when separable decay is
    /// active and at least one refresh has run.
    pub fn epoch(&self) -> Option<f64> {
        self.epoch_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participation::ParticipationMode;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::usage::UsageRecord;

    fn uss_with_usage() -> Uss {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 2,
            start_s: 0.0,
            end_s: 30.0,
        });
        uss
    }

    #[test]
    fn caches_until_interval_elapses() {
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.refresh(&mut uss, 0.0));
        assert!(!ums.refresh(&mut uss, 10.0), "within cache time");
        assert!(!ums.refresh(&mut uss, 29.9));
        assert!(ums.refresh(&mut uss, 30.0), "cache expired");
        assert_eq!(ums.refreshes(), 2);
        assert_eq!(ums.full_rebuilds(), 1, "only the first refresh rebuilds");
    }

    #[test]
    fn usage_visible_after_refresh() {
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.usage().is_empty());
        ums.refresh(&mut uss, 0.0);
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stale_cache_serves_old_data() {
        // The cache-time delay of §IV-A-2: new usage is invisible until the
        // next refresh tick.
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(100.0, DecayPolicy::None);
        ums.refresh(&mut uss, 0.0);
        uss.ingest(&UsageRecord {
            job: JobId(2),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 10.0,
            end_s: 20.0,
        });
        ums.refresh(&mut uss, 50.0); // no-op: cache still valid
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
        ums.refresh(&mut uss, 100.0);
        assert!((ums.usage()[&GridUser::new("a")] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn multi_uss_aggregation() {
        // A site with two cluster-level USSs: the UMS sums per-user usage.
        let mut uss1 = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        let mut uss2 = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss1.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 40.0,
        });
        uss2.ingest(&UsageRecord {
            job: JobId(2),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 2,
            start_s: 0.0,
            end_s: 10.0,
        });
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.refresh_many(&mut [&mut uss1, &mut uss2], 0.0));
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn force_refresh_bypasses_cache() {
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(1e9, DecayPolicy::None);
        ums.refresh(&mut uss, 0.0);
        ums.force_refresh(&mut uss, 1.0);
        assert_eq!(ums.refreshes(), 2);
    }

    #[test]
    fn incremental_refresh_marks_only_changed_users() {
        let mut uss = uss_with_usage(); // user a
        uss.ingest(&UsageRecord {
            job: JobId(3),
            user: GridUser::new("b"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 10.0,
        });
        let mut ums = Ums::new(10.0, DecayPolicy::default());
        ums.refresh(&mut uss, 0.0);
        assert!(ums.take_dirty().is_all(), "first refresh rebuilds");
        // Only b gets new usage: the next refresh touches exactly b.
        uss.ingest(&UsageRecord {
            job: JobId(4),
            user: GridUser::new("b"),
            site: SiteId(0),
            cores: 1,
            start_s: 10.0,
            end_s: 30.0,
        });
        let a_before = ums.usage()[&GridUser::new("a")];
        ums.refresh(&mut uss, 10.0);
        let dirty = ums.take_dirty();
        assert!(!dirty.is_all());
        assert_eq!(
            dirty.users().cloned().collect::<Vec<_>>(),
            vec![GridUser::new("b")]
        );
        // a's cached weight is untouched — time passing does not dirty it.
        assert_eq!(
            a_before.to_bits(),
            ums.usage()[&GridUser::new("a")].to_bits()
        );
        assert_eq!(ums.full_rebuilds(), 1);
    }

    #[test]
    fn epoch_weights_preserve_usage_ratios() {
        // Exponential decay with an epoch cache: ratios between users match
        // the truly-decayed ratios (the uniform factor cancels).
        let decay = DecayPolicy::Exponential { half_life_s: 100.0 };
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 10.0);
        for (user, start, end) in [("a", 0.0, 10.0), ("b", 200.0, 210.0)] {
            uss.ingest(&UsageRecord {
                job: JobId(0),
                user: GridUser::new(user),
                site: SiteId(0),
                cores: 1,
                start_s: start,
                end_s: end,
            });
        }
        let mut ums = Ums::new(0.0, decay);
        ums.refresh(&mut uss, 300.0);
        let cached_ratio = ums.usage()[&GridUser::new("a")] / ums.usage()[&GridUser::new("b")];
        let true_ratio = uss.decayed_usage(300.0, decay)[&GridUser::new("a")]
            / uss.decayed_usage(300.0, decay)[&GridUser::new("b")];
        assert!((cached_ratio - true_ratio).abs() < 1e-12);
    }

    #[test]
    fn epoch_rebases_after_many_half_lives() {
        let decay = DecayPolicy::Exponential { half_life_s: 1.0 };
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(0.0, decay);
        ums.refresh(&mut uss, 0.0);
        assert_eq!(ums.epoch(), Some(0.0));
        ums.refresh(&mut uss, 10.0);
        assert_eq!(ums.epoch(), Some(0.0), "within rebase horizon");
        ums.refresh(&mut uss, 100.0); // 100 half-lives: rebase
        assert_eq!(ums.epoch(), Some(100.0));
        assert!(ums.take_dirty().is_all(), "rebase dirties everything");
        assert_eq!(ums.full_rebuilds(), 2);
    }

    #[test]
    fn non_separable_decay_marks_all_every_refresh() {
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(0.0, DecayPolicy::Window { window_s: 1000.0 });
        ums.refresh(&mut uss, 0.0);
        assert!(ums.take_dirty().is_all());
        ums.refresh(&mut uss, 10.0);
        assert!(ums.take_dirty().is_all());
        assert_eq!(ums.full_rebuilds(), 2);
        assert!(ums.epoch().is_none());
    }
}
