//! Usage Monitoring Service (UMS): "gathers usage histograms from one or
//! more USSs and pre-computes usage trees based on the site-specific
//! policies" (§II-A). The UMS refresh interval is one of the cache times in
//! the §IV-A-2 delay chain.

use crate::uss::Uss;
use aequus_core::{DecayPolicy, GridUser};
use std::collections::BTreeMap;

/// Per-site usage monitoring service with a periodic refresh cache.
#[derive(Debug, Clone)]
pub struct Ums {
    refresh_interval_s: f64,
    decay: DecayPolicy,
    cached: BTreeMap<GridUser, f64>,
    last_refresh_s: Option<f64>,
    refreshes: u64,
}

impl Ums {
    /// Create a UMS that refreshes its usage tree every `refresh_interval_s`
    /// and ages usage with `decay`.
    pub fn new(refresh_interval_s: f64, decay: DecayPolicy) -> Self {
        Self {
            refresh_interval_s,
            decay,
            cached: BTreeMap::new(),
            last_refresh_s: None,
            refreshes: 0,
        }
    }

    /// Whether the cache is stale at `now_s`.
    pub fn is_stale(&self, now_s: f64) -> bool {
        match self.last_refresh_s {
            None => true,
            Some(t) => now_s - t >= self.refresh_interval_s,
        }
    }

    /// Refresh the pre-computed per-user usage from the USS if the cache is
    /// stale. Returns whether a refresh happened.
    pub fn refresh(&mut self, uss: &Uss, now_s: f64) -> bool {
        self.refresh_many(&[uss], now_s)
    }

    /// Refresh from several USS instances at once — "the UMS of each site
    /// gathers usage histograms from **one or more USSs**" (§II-A), e.g.
    /// a site fronting multiple clusters, each with its own statistics
    /// service. Per-user usage is summed across sources.
    pub fn refresh_many(&mut self, usses: &[&Uss], now_s: f64) -> bool {
        if !self.is_stale(now_s) {
            return false;
        }
        let mut combined: BTreeMap<GridUser, f64> = BTreeMap::new();
        for uss in usses {
            for (user, value) in uss.decayed_usage(now_s, self.decay) {
                *combined.entry(user).or_insert(0.0) += value;
            }
        }
        self.cached = combined;
        self.last_refresh_s = Some(now_s);
        self.refreshes += 1;
        true
    }

    /// Force an immediate refresh regardless of staleness.
    pub fn force_refresh(&mut self, uss: &Uss, now_s: f64) {
        self.last_refresh_s = None;
        self.refresh(uss, now_s);
    }

    /// Force an immediate multi-source refresh.
    pub fn force_refresh_many(&mut self, usses: &[&Uss], now_s: f64) {
        self.last_refresh_s = None;
        self.refresh_many(usses, now_s);
    }

    /// The pre-computed per-user usage totals (decayed as of last refresh).
    pub fn usage(&self) -> &BTreeMap<GridUser, f64> {
        &self.cached
    }

    /// When the cache was last rebuilt.
    pub fn last_refresh(&self) -> Option<f64> {
        self.last_refresh_s
    }

    /// Number of rebuilds performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participation::ParticipationMode;
    use aequus_core::ids::{JobId, SiteId};
    use aequus_core::usage::UsageRecord;

    fn uss_with_usage() -> Uss {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 2,
            start_s: 0.0,
            end_s: 30.0,
        });
        uss
    }

    #[test]
    fn caches_until_interval_elapses() {
        let uss = uss_with_usage();
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.refresh(&uss, 0.0));
        assert!(!ums.refresh(&uss, 10.0), "within cache time");
        assert!(!ums.refresh(&uss, 29.9));
        assert!(ums.refresh(&uss, 30.0), "cache expired");
        assert_eq!(ums.refreshes(), 2);
    }

    #[test]
    fn usage_visible_after_refresh() {
        let uss = uss_with_usage();
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.usage().is_empty());
        ums.refresh(&uss, 0.0);
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn stale_cache_serves_old_data() {
        // The cache-time delay of §IV-A-2: new usage is invisible until the
        // next refresh tick.
        let mut uss = uss_with_usage();
        let mut ums = Ums::new(100.0, DecayPolicy::None);
        ums.refresh(&uss, 0.0);
        uss.ingest(&UsageRecord {
            job: JobId(2),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 10.0,
            end_s: 20.0,
        });
        ums.refresh(&uss, 50.0); // no-op: cache still valid
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
        ums.refresh(&uss, 100.0);
        assert!((ums.usage()[&GridUser::new("a")] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn multi_uss_aggregation() {
        // A site with two cluster-level USSs: the UMS sums per-user usage.
        let mut uss1 = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        let mut uss2 = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        uss1.ingest(&UsageRecord {
            job: JobId(1),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 40.0,
        });
        uss2.ingest(&UsageRecord {
            job: JobId(2),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 2,
            start_s: 0.0,
            end_s: 10.0,
        });
        let mut ums = Ums::new(30.0, DecayPolicy::None);
        assert!(ums.refresh_many(&[&uss1, &uss2], 0.0));
        assert!((ums.usage()[&GridUser::new("a")] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn force_refresh_bypasses_cache() {
        let uss = uss_with_usage();
        let mut ums = Ums::new(1e9, DecayPolicy::None);
        ums.refresh(&uss, 0.0);
        ums.force_refresh(&uss, 1.0);
        assert_eq!(ums.refreshes(), 2);
    }
}
