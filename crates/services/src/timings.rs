//! Service timing configuration.
//!
//! §IV-A-2 enumerates the delay chain from job completion to fairshare
//! impact: "(I) reporting delay from the local resource manager to Aequus,
//! (II) cache time in USS, UMS, and FCS services, (III) cache time in
//! libaequus, (IV) local resource manager re-prioritization interval."
//! Every stage is an explicit, independently configurable parameter here —
//! the update-delay experiment (Figure 11) works by scaling the workload
//! while holding these constant.

use serde::{Deserialize, Serialize};

/// All update/processing delays in the Aequus pipeline, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceTimings {
    /// (I) Delay from job completion in the RMS until the usage record
    /// reaches the local USS.
    pub report_delay_s: f64,
    /// (II-a) USS summary publication interval (cross-site exchange period).
    pub uss_publish_interval_s: f64,
    /// (II-b) UMS usage-tree refresh interval (UMS cache time).
    pub ums_refresh_interval_s: f64,
    /// (II-c) FCS fairshare-tree precomputation interval (FCS cache time).
    pub fcs_refresh_interval_s: f64,
    /// (III) libaequus client-side cache TTL for fairshare values.
    pub lib_cache_ttl_s: f64,
    /// (III) libaequus client-side cache TTL for identity resolutions.
    pub lib_identity_ttl_s: f64,
    /// Network latency for USS↔USS summary exchange.
    pub exchange_latency_s: f64,
}

impl Default for ServiceTimings {
    /// Production-like service cadence. §IV-A-2's point is precisely that
    /// these delays "cannot be shortened with the corresponding rate" when a
    /// year's workload is compressed into six hours — so the defaults are
    /// sized like a real deployment (minutes-scale cache intervals), making
    /// the pipeline a visible fraction of the compressed tests' convergence
    /// time.
    fn default() -> Self {
        Self {
            report_delay_s: 10.0,
            uss_publish_interval_s: 180.0,
            ums_refresh_interval_s: 180.0,
            fcs_refresh_interval_s: 180.0,
            lib_cache_ttl_s: 60.0,
            lib_identity_ttl_s: 600.0,
            exchange_latency_s: 5.0,
        }
    }
}

impl ServiceTimings {
    /// Total worst-case pipeline delay from job completion to the value
    /// being visible through libaequus (excluding the RMS re-prioritization
    /// interval, which is an RMS-side parameter).
    pub fn worst_case_pipeline_s(&self) -> f64 {
        self.report_delay_s
            + self.uss_publish_interval_s
            + self.exchange_latency_s
            + self.ums_refresh_interval_s
            + self.fcs_refresh_interval_s
            + self.lib_cache_ttl_s
    }

    /// The worst-case delay contribution of each pipeline stage, in chain
    /// order, as `(stage name, seconds)` — what the fig11 companion plots
    /// the measured per-stage delays against. Stage names match the
    /// `aequus_tracer_<stage>_delay_s` histogram naming.
    pub fn stage_caps(&self) -> [(&'static str, f64); 5] {
        [
            ("report", self.report_delay_s),
            (
                "publish",
                self.uss_publish_interval_s + self.exchange_latency_s,
            ),
            ("ums", self.ums_refresh_interval_s),
            ("fcs", self.fcs_refresh_interval_s),
            ("lib", self.lib_cache_ttl_s),
        ]
    }

    /// How long a publisher should wait for a delivery acknowledgment before
    /// retrying: the exchange round trip (summary out, ack back) plus one
    /// extra latency of scheduling slack, floored at one second. The
    /// reliability layer uses this as its default backoff base
    /// (`RetryPolicy::from_timings` in `aequus-services`).
    pub fn ack_deadline_s(&self) -> f64 {
        (3.0 * self.exchange_latency_s).max(1.0)
    }

    /// Scale every delay by `factor` (used by delay-sensitivity ablations).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            report_delay_s: self.report_delay_s * factor,
            uss_publish_interval_s: self.uss_publish_interval_s * factor,
            ums_refresh_interval_s: self.ums_refresh_interval_s * factor,
            fcs_refresh_interval_s: self.fcs_refresh_interval_s * factor,
            lib_cache_ttl_s: self.lib_cache_ttl_s * factor,
            lib_identity_ttl_s: self.lib_identity_ttl_s * factor,
            exchange_latency_s: self.exchange_latency_s * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_sum_of_stages() {
        let t = ServiceTimings::default();
        let expected = 10.0 + 180.0 + 5.0 + 180.0 + 180.0 + 60.0;
        assert!((t.worst_case_pipeline_s() - expected).abs() < 1e-12);
    }

    #[test]
    fn stage_caps_sum_to_worst_case() {
        // The per-stage decomposition and the scalar bound must agree —
        // the fig11 companion relies on this when stacking stage caps.
        for timings in [
            ServiceTimings::default(),
            ServiceTimings::default().scaled(0.25),
            ServiceTimings {
                report_delay_s: 1.0,
                uss_publish_interval_s: 2.0,
                ums_refresh_interval_s: 3.0,
                fcs_refresh_interval_s: 4.0,
                lib_cache_ttl_s: 5.0,
                lib_identity_ttl_s: 6.0,
                exchange_latency_s: 7.0,
            },
        ] {
            let sum: f64 = timings.stage_caps().iter().map(|(_, s)| s).sum();
            assert!((sum - timings.worst_case_pipeline_s()).abs() < 1e-12);
        }
    }

    #[test]
    fn worst_case_excludes_identity_ttl() {
        // Identity resolution is off the fairshare-value path; its TTL must
        // not inflate the §IV-A-2 bound.
        let mut t = ServiceTimings::default();
        let before = t.worst_case_pipeline_s();
        t.lib_identity_ttl_s = 1e6;
        assert_eq!(t.worst_case_pipeline_s(), before);
    }

    #[test]
    fn zero_timings_collapse_the_pipeline() {
        let t = ServiceTimings::default().scaled(0.0);
        assert_eq!(t.worst_case_pipeline_s(), 0.0);
        assert!(t.stage_caps().iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn ack_deadline_covers_the_round_trip() {
        let t = ServiceTimings::default();
        assert!(t.ack_deadline_s() > 2.0 * t.exchange_latency_s);
        // Degenerate zero-latency deployments still get a positive deadline.
        assert_eq!(ServiceTimings::default().scaled(0.0).ack_deadline_s(), 1.0);
    }

    #[test]
    fn scaling_is_uniform() {
        let t = ServiceTimings::default().scaled(2.0);
        assert_eq!(t.report_delay_s, 20.0);
        assert_eq!(t.uss_publish_interval_s, 360.0);
        assert!(
            (t.worst_case_pipeline_s() - 2.0 * ServiceTimings::default().worst_case_pipeline_s())
                .abs()
                < 1e-9
        );
    }
}
