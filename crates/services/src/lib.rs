//! # aequus-services
//!
//! The Aequus distributed service layer (Figure 2 of the paper): per-site
//! instances of
//!
//! * [`pds::Pds`] — Policy Distribution Service (policy management and
//!   cross-PDS sub-policy mounting),
//! * [`uss::Uss`] — Usage Statistics Service (per-job ingestion, per-user
//!   histograms, compact cross-site exchange),
//! * [`ums::Ums`] — Usage Monitoring Service (pre-computed usage trees with
//!   a refresh cache),
//! * [`fcs::Fcs`] — Fairshare Calculation Service (periodic pre-computation
//!   of fairshare trees and projected factors; queries are O(log n) lookups),
//! * [`irs::Irs`] — Identity Resolution Service (reverse system-user → grid
//!   identity mapping via look-up table or site endpoint),
//!
//! plus [`libaequus::LibAequus`], the client library local resource managers
//! link against, and [`site::AequusSite`], the fully wired per-site stack.
//!
//! The paper's Java Web services communicated over SOAP/HTTP; here the
//! services are in-process state machines advanced by explicit timestamps,
//! with every delay of the §IV-A-2 chain modeled as an explicit
//! [`timings::ServiceTimings`] parameter (see DESIGN.md, substitutions).

#![warn(missing_docs)]

pub mod fcs;
pub mod irs;
pub mod libaequus;
pub mod participation;
pub mod pds;
pub mod reliability;
pub mod site;
pub mod timings;
pub mod ums;
pub mod uss;

pub use fcs::Fcs;
pub use irs::Irs;
pub use libaequus::LibAequus;
pub use participation::ParticipationMode;
pub use pds::Pds;
pub use reliability::{
    DepthReport, HealthMap, HealthReport, JitterRng, LinkObservation, LinkReport, OverlayTopology,
    RetryPolicy, StalePolicy, UssMessage,
};
pub use site::AequusSite;
pub use timings::ServiceTimings;
pub use ums::Ums;
pub use uss::{RecoveryError, Uss};

// Durable-store types downstream layers (sim, bench) configure and report.
pub use aequus_store::{StoreConfig, StoreStats};
