//! Policy Distribution Service (PDS): "responsible for managing user
//! policies both locally and globally by mounting sub-policies from other
//! sources (which may be other PDS services)" (§II-A).

use aequus_core::arena::DirtySet;
use aequus_core::ids::EntityPath;
use aequus_core::policy::{PolicyError, PolicyTree};
use aequus_telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;

/// Per-site policy distribution service.
#[derive(Debug, Clone)]
pub struct Pds {
    policy: PolicyTree,
    /// Sub-policies exported by this PDS, fetchable by other PDS instances.
    exports: BTreeMap<String, PolicyTree>,
    /// Which parts of the policy changed since the FCS last drained this
    /// service: share edits mark their path, structural changes (replace,
    /// mount) mark everything.
    dirty: DirtySet,
    /// Telemetry: policy edit counter + event ring (no-ops until wired).
    telemetry: Telemetry,
    c_edits: Counter,
}

impl Pds {
    /// Create a PDS serving the given local policy.
    pub fn new(policy: PolicyTree) -> Self {
        Self {
            policy,
            exports: BTreeMap::new(),
            dirty: DirtySet::new(),
            telemetry: Telemetry::disabled(),
            c_edits: Counter::default(),
        }
    }

    /// Wire this service into a telemetry registry; pass
    /// [`Telemetry::disabled`] to detach. PDS edits carry no domain clock,
    /// so their events use the `-1.0` no-clock timestamp.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.telemetry = t.clone();
        self.c_edits = t.counter("aequus_pds_edits_total");
    }

    /// The currently effective policy tree.
    pub fn policy(&self) -> &PolicyTree {
        &self.policy
    }

    /// The effective policy version (bumps on any change; FCS uses this to
    /// detect staleness).
    pub fn version(&self) -> u64 {
        self.policy.version()
    }

    /// Replace the whole local policy (administrative action; exercised by
    /// the non-optimal policy test where targets change relative to load).
    pub fn set_policy(&mut self, policy: PolicyTree) {
        self.policy = policy;
        self.dirty.mark_all();
        self.c_edits.inc();
        self.telemetry.event(-1.0, "pds.policy_replaced", || {
            "whole policy replaced".into()
        });
    }

    /// Change one node's share at run time.
    pub fn set_share(&mut self, path: &EntityPath, share: f64) -> Result<(), PolicyError> {
        self.policy.set_share(path, share)?;
        self.dirty.mark_path(path.clone());
        self.c_edits.inc();
        self.telemetry
            .event(-1.0, "pds.share_edit", || format!("{path:?} -> {share}"));
        Ok(())
    }

    /// Export a named sub-policy for other PDS instances to mount.
    pub fn export(&mut self, name: impl Into<String>, subtree: PolicyTree) {
        self.exports.insert(name.into(), subtree);
    }

    /// Fetch an exported sub-policy by name (what a remote PDS calls).
    pub fn fetch_export(&self, name: &str) -> Option<&PolicyTree> {
        self.exports.get(name)
    }

    /// Mount a sub-policy fetched from `provider` into the local tree at
    /// `at` (which must be a mount point naming any source).
    pub fn mount_from(
        &mut self,
        provider: &Pds,
        export_name: &str,
        at: &EntityPath,
    ) -> Result<(), PolicyError> {
        let sub = provider
            .fetch_export(export_name)
            .ok_or_else(|| PolicyError::NoSuchMountPoint(export_name.to_string()))?
            .clone();
        self.policy.mount(at, &sub)?;
        self.dirty.mark_all(); // mounting changes the tree structure
        self.c_edits.inc();
        self.telemetry.event(-1.0, "pds.mount", || {
            format!("mounted export {export_name:?} at {at:?}")
        });
        Ok(())
    }

    /// Drain the accumulated policy changes since the last drain.
    pub fn take_dirty(&mut self) -> DirtySet {
        self.dirty.take()
    }

    /// Pending policy changes (inspection).
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::policy::{flat_policy, PolicyNode, PolicyTree};

    #[test]
    fn mount_from_remote_pds() {
        // National PDS exports the grid-internal subdivision.
        let mut national = Pds::new(flat_policy(&[("placeholder", 1.0)]).unwrap());
        national.export(
            "swegrid",
            flat_policy(&[("U65", 0.65), ("U30", 0.30), ("U3", 0.05)]).unwrap(),
        );

        // Site policy reserves 40% for the grid via a mount point.
        let mut site = Pds::new(
            PolicyTree::new(PolicyNode::group(
                "root",
                1.0,
                vec![
                    PolicyNode::user("local-hpc", 0.6),
                    PolicyNode::mount_point("swegrid", 0.4, "national"),
                ],
            ))
            .unwrap(),
        );
        let v0 = site.version();
        site.mount_from(&national, "swegrid", &EntityPath::parse("/swegrid"))
            .unwrap();
        assert!(site.version() > v0);
        let share = site
            .policy()
            .absolute_share(&EntityPath::parse("/swegrid/U65"))
            .unwrap();
        assert!((share - 0.4 * 0.65).abs() < 1e-12);
    }

    #[test]
    fn missing_export_errors() {
        let national = Pds::new(flat_policy(&[("x", 1.0)]).unwrap());
        let mut site = Pds::new(
            PolicyTree::new(PolicyNode::group(
                "root",
                1.0,
                vec![PolicyNode::mount_point("g", 1.0, "national")],
            ))
            .unwrap(),
        );
        assert!(site
            .mount_from(&national, "nope", &EntityPath::parse("/g"))
            .is_err());
    }

    #[test]
    fn runtime_share_change_bumps_version() {
        let mut pds = Pds::new(flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap());
        let v0 = pds.version();
        pds.set_share(&EntityPath::parse("/a"), 0.9).unwrap();
        assert!(pds.version() > v0);
    }
}
