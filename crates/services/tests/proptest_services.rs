//! Property-based tests of the service layer: exchange conservation,
//! publication idempotence, cache-staleness bounds, and participation-mode
//! invariants under randomized job streams.

use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::UsageRecord;
use aequus_core::{DecayPolicy, GridUser};
use aequus_services::{AequusSite, ParticipationMode, ServiceTimings, Uss};
use proptest::prelude::*;

fn job_stream() -> impl Strategy<Value = Vec<(u8, f64, f64)>> {
    // (user index, start, duration)
    proptest::collection::vec((0u8..4, 0.0..5000.0f64, 1.0..500.0f64), 1..60)
}

fn record(i: usize, site: u32, user: u8, start: f64, dur: f64) -> UsageRecord {
    UsageRecord {
        job: JobId(i as u64),
        user: GridUser::new(format!("u{user}")),
        site: SiteId(site),
        cores: 1,
        start_s: start,
        end_s: start + dur,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchange_conserves_charge(jobs in job_stream()) {
        // Everything site 0 publishes is exactly what site 1 receives; no
        // charge is created or destroyed by the exchange.
        let mut a = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        let mut b = Uss::new(SiteId(1), ParticipationMode::Full, 60.0);
        let mut total = 0.0;
        for (i, &(u, start, dur)) in jobs.iter().enumerate() {
            let r = record(i, 0, u, start, dur);
            total += r.charge();
            a.ingest(&r);
        }
        // Publish far enough in the future that every slot is closed.
        let mut received = 0.0;
        while let Some(summary) = a.publish(1e7) {
            received += summary.total();
            b.receive(&summary);
        }
        prop_assert!((received - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!((b.remote_total() - total).abs() < 1e-6 * total.max(1.0));
        // Per-user views agree.
        for u in 0..4u8 {
            let user = GridUser::new(format!("u{u}"));
            let va = a.decayed_usage(1e7, DecayPolicy::None)
                .get(&user).copied().unwrap_or(0.0);
            let vb = b.decayed_usage(1e7, DecayPolicy::None)
                .get(&user).copied().unwrap_or(0.0);
            prop_assert!((va - vb).abs() < 1e-6 * va.max(1.0), "u{u}: {va} vs {vb}");
        }
    }

    #[test]
    fn publish_never_duplicates(jobs in job_stream(), checkpoints in proptest::collection::vec(0.0..2e4f64, 1..8)) {
        // Publishing at arbitrary times never double-counts a slot.
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        let mut total = 0.0;
        for (i, &(u, start, dur)) in jobs.iter().enumerate() {
            let r = record(i, 0, u, start, dur);
            total += r.charge();
            uss.ingest(&r);
        }
        let mut times = checkpoints.clone();
        times.sort_by(|x, y| x.partial_cmp(y).unwrap());
        times.push(1e7); // final flush
        let mut published = 0.0;
        for t in times {
            if let Some(s) = uss.publish(t) {
                published += s.total();
            }
        }
        prop_assert!(published <= total + 1e-6 * total.max(1.0), "{published} > {total}");
        // After the final flush everything closed was published exactly once.
        prop_assert!((published - total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn participation_modes_respect_contract(
        jobs in job_stream(),
        mode_idx in 0usize..4,
    ) {
        let mode = [
            ParticipationMode::Full,
            ParticipationMode::ReadOnly,
            ParticipationMode::LocalOnly,
            ParticipationMode::Disjunct,
        ][mode_idx];
        let mut uss = Uss::new(SiteId(0), mode, 60.0);
        for (i, &(u, start, dur)) in jobs.iter().enumerate() {
            uss.ingest(&record(i, 0, u, start, dur));
        }
        let out = uss.publish(1e7);
        prop_assert_eq!(out.is_some(), mode.contributes(), "{:?}", mode);

        // Remote data visible iff the mode reads global.
        let mut peer = Uss::new(SiteId(1), ParticipationMode::Full, 60.0);
        peer.ingest(&record(999, 1, 0, 0.0, 100.0));
        let s = peer.publish(1e7).unwrap();
        uss.receive(&s);
        let sees_remote = uss.remote_total() > 0.0;
        prop_assert_eq!(sees_remote, mode.reads_global(), "{:?}", mode);
    }

    #[test]
    fn fairshare_factor_always_unit_range(
        jobs in job_stream(),
        query_times in proptest::collection::vec(0.0..6000.0f64, 1..20),
    ) {
        let mut site = AequusSite::new(
            SiteId(0),
            flat_policy(&[("u0", 0.4), ("u1", 0.3), ("u2", 0.2), ("u3", 0.1)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            ServiceTimings {
                report_delay_s: 1.0,
                uss_publish_interval_s: 10.0,
                ums_refresh_interval_s: 10.0,
                fcs_refresh_interval_s: 10.0,
                lib_cache_ttl_s: 5.0,
                lib_identity_ttl_s: 60.0,
                exchange_latency_s: 1.0,
            },
            ParticipationMode::Full,
            60.0,
        );
        let mut events: Vec<(f64, Option<UsageRecord>)> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(u, start, dur))| {
                (start + dur, Some(record(i, 0, u, start, dur)))
            })
            .collect();
        events.extend(query_times.iter().map(|&t| (t, None)));
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, rec) in events {
            site.tick(t);
            match rec {
                Some(r) => site.report_completion(r, t),
                None => {
                    for u in 0..4 {
                        let f = site.fairshare(&GridUser::new(format!("u{u}")), t);
                        prop_assert!((0.0..=1.0).contains(&f), "factor {f}");
                    }
                }
            }
        }
    }

    #[test]
    fn stale_cache_age_bounded_by_ttls(
        ttl in 1.0..100.0f64,
        fcs_interval in 1.0..100.0f64,
    ) {
        // After a quiet period longer than TTL + FCS interval, a query must
        // reflect a recomputation (staleness bound of the §IV-A-2 chain).
        let mut site = AequusSite::new(
            SiteId(0),
            flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            ServiceTimings {
                report_delay_s: 0.0,
                uss_publish_interval_s: fcs_interval,
                ums_refresh_interval_s: fcs_interval,
                fcs_refresh_interval_s: fcs_interval,
                lib_cache_ttl_s: ttl,
                lib_identity_ttl_s: 60.0,
                exchange_latency_s: 1.0,
            },
            ParticipationMode::Full,
            10.0,
        );
        site.tick(0.0);
        let before = site.fairshare(&GridUser::new("a"), 0.0);
        site.report_completion(record(0, 0, 99, 0.0, 0.0), 0.0); // no-op charge
        site.report_completion(
            UsageRecord {
                job: JobId(1),
                user: GridUser::new("a"),
                site: SiteId(0),
                cores: 4,
                start_s: 0.0,
                end_s: 500.0,
            },
            500.0,
        );
        // Advance well past every stage of the pipeline.
        let settle = 500.0 + 3.0 * (ttl + fcs_interval) + 60.0;
        let mut t = 500.0;
        while t < settle {
            t += fcs_interval.min(ttl);
            site.tick(t);
        }
        let after = site.fairshare(&GridUser::new("a"), settle);
        prop_assert!(after < before, "usage must be visible: {after} !< {before}");
    }
}
