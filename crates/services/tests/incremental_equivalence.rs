//! Equivalence property for the incremental priority engine: under random
//! interleavings of usage-record ingests, peer-summary merges, decay-epoch
//! time advances, and policy share edits, the incrementally maintained FCS
//! factors are **bit-identical** to a from-scratch recompute over the same
//! drained state — for every projection, at every refresh point.
//!
//! The check runs after *each* time-advance refresh (not just at the end),
//! so a divergence is caught at the first refresh where it appears. The
//! debug-build `debug_assert` inside `FairshareTree::recompute_dirty` acts
//! as a second, tree-level oracle underneath this factor-level one.

use aequus_core::policy::{PolicyNode, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::{UsageRecord, UsageSummary};
use aequus_core::{DecayPolicy, EntityPath, FairshareConfig, GridUser, JobId, SiteId};
use aequus_services::{Fcs, ParticipationMode, Pds, Ums, Uss};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

const GROUPS: usize = 3;
const USERS_PER_GROUP: usize = 4;
const N_USERS: usize = GROUPS * USERS_PER_GROUP;

fn user_name(i: usize) -> String {
    format!("u{i}")
}

/// /g0, /g1, /g2, then every /g{g}/u{i} leaf — the edit targets.
fn edit_paths() -> Vec<EntityPath> {
    let mut paths: Vec<EntityPath> = (0..GROUPS)
        .map(|g| EntityPath::parse(&format!("/g{g}")))
        .collect();
    for i in 0..N_USERS {
        let g = i / USERS_PER_GROUP;
        paths.push(EntityPath::parse(&format!("/g{g}/{}", user_name(i))));
    }
    paths
}

fn nested_policy() -> PolicyTree {
    let groups = (0..GROUPS)
        .map(|g| {
            PolicyNode::group(
                format!("g{g}"),
                1.0 / GROUPS as f64,
                (0..USERS_PER_GROUP)
                    .map(|j| {
                        PolicyNode::user(
                            user_name(g * USERS_PER_GROUP + j),
                            1.0 / USERS_PER_GROUP as f64,
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    PolicyTree::new(PolicyNode::group("root", 1.0, groups)).unwrap()
}

fn decay_for(sel: u8) -> DecayPolicy {
    match sel {
        0 => DecayPolicy::None,
        1 => DecayPolicy::Exponential {
            half_life_s: 1800.0,
        },
        _ => DecayPolicy::Window { window_s: 3600.0 },
    }
}

/// One scripted operation: `(kind, selector, magnitude)`.
///
/// kind 0 — ingest a local usage record for user `selector % N_USERS`;
/// kind 1 — receive a peer summary crediting that user;
/// kind 2 — advance time by `magnitude × 4000 s`, refresh UMS + FCS
///          incrementally, and compare against a from-scratch FCS;
/// kind 3 — `set_share` on edit path `selector % paths.len()`.
type Op = (u8, u8, f64);

/// Bit-compare the incremental factor table against a fresh full rebuild
/// over the same (already drained) PDS/UMS state.
fn assert_matches_fresh(
    kind: ProjectionKind,
    fcs: &Fcs,
    pds: &mut Pds,
    ums: &mut Ums,
    now_s: f64,
) -> Result<(), String> {
    let mut fresh = Fcs::new(FairshareConfig::default(), kind, 0.0);
    fresh.refresh(pds, ums, now_s);
    let (inc, full): (&BTreeMap<GridUser, f64>, &BTreeMap<GridUser, f64>) =
        (fcs.factors(), fresh.factors());
    if inc.len() != full.len() {
        return Err(format!(
            "{kind:?} at t={now_s}: {} incremental factors vs {} full",
            inc.len(),
            full.len()
        ));
    }
    for (user, f) in inc {
        let g = full
            .get(user)
            .ok_or_else(|| format!("{kind:?} at t={now_s}: {user:?} missing from full"))?;
        if f.to_bits() != g.to_bits() {
            return Err(format!(
                "{kind:?} at t={now_s}: {user:?} incremental {f} != full {g}"
            ));
        }
    }
    Ok(())
}

/// Run one random interleaving and check the invariant at every refresh.
fn run_interleaving(kind: ProjectionKind, decay_sel: u8, ops: &[Op]) -> Result<(), String> {
    let paths = edit_paths();
    let mut pds = Pds::new(nested_policy());
    let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
    let mut ums = Ums::new(0.0, decay_for(decay_sel));
    let mut fcs = Fcs::new(FairshareConfig::default(), kind, 0.0);
    let mut now_s = 0.0;
    let mut next_job = 0u64;

    for &(op, sel, x) in ops {
        match op {
            0 => {
                let user = GridUser::new(user_name(sel as usize % N_USERS));
                next_job += 1;
                uss.ingest(&UsageRecord {
                    job: JobId(next_job),
                    user,
                    site: SiteId(0),
                    cores: 1 + (sel as u32 % 4),
                    start_s: now_s,
                    end_s: now_s + x * 500.0,
                });
            }
            1 => {
                let user = GridUser::new(user_name(sel as usize % N_USERS));
                let slot = (now_s / 60.0) as u64;
                let mut per_user = BTreeMap::new();
                per_user.insert(user, BTreeMap::from([(slot, x * 300.0)]));
                uss.receive(&UsageSummary {
                    site: SiteId(1),
                    seq: 0, // unsequenced ad-hoc summary (absolute cells)
                    slot_s: 60.0,
                    per_user,
                    relayed: BTreeMap::new(),
                });
            }
            2 => {
                now_s += x * 4000.0;
                ums.refresh(&mut uss, now_s);
                fcs.refresh(&mut pds, &mut ums, now_s);
                assert_matches_fresh(kind, &fcs, &mut pds, &mut ums, now_s)?;
            }
            _ => {
                let path = &paths[sel as usize % paths.len()];
                pds.set_share(path, 0.05 + x * 4.0)
                    .map_err(|e| format!("set_share({path:?}): {e:?}"))?;
            }
        }
    }

    // Final refresh so trailing non-refresh ops are also checked.
    now_s += 1.0;
    ums.refresh(&mut uss, now_s);
    fcs.refresh(&mut pds, &mut ums, now_s);
    assert_matches_fresh(kind, &fcs, &mut pds, &mut ums, now_s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dictionary_incremental_equals_full(
        decay_sel in 0u8..3,
        ops in vec((0u8..4, 0u8..16, 0.01..1.0f64), 1..40),
    ) {
        let r = run_interleaving(ProjectionKind::Dictionary, decay_sel, &ops);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn bitwise_incremental_equals_full(
        decay_sel in 0u8..3,
        ops in vec((0u8..4, 0u8..16, 0.01..1.0f64), 1..40),
    ) {
        let r = run_interleaving(ProjectionKind::Bitwise, decay_sel, &ops);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    #[test]
    fn percental_incremental_equals_full(
        decay_sel in 0u8..3,
        ops in vec((0u8..4, 0u8..16, 0.01..1.0f64), 1..40),
    ) {
        let r = run_interleaving(ProjectionKind::Percental, decay_sel, &ops);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }
}
