//! Property tests of the USS reliability protocol: under arbitrary
//! interleavings of publish, drop, reorder, duplication, and resync, no
//! (user, slot) charge is ever double-counted, and once the network stops
//! misbehaving every site converges to exactly the sum of the charges its
//! peers published.

use aequus_core::usage::UsageRecord;
use aequus_core::{GridUser, JobId, SiteId};
use aequus_services::{ParticipationMode, RetryPolicy, Uss, UssMessage};
use proptest::prelude::*;
use std::collections::BTreeMap;

const SITES: usize = 3;
const USERS: [&str; 3] = ["alice", "bob", "carol"];
const SLOT_S: f64 = 100.0;

/// An in-flight message: (destination, payload).
type Wire = Vec<(SiteId, UssMessage)>;

struct Grid {
    sites: Vec<Uss>,
    wire: Wire,
    now_s: f64,
}

impl Grid {
    fn new(seed: u64) -> Self {
        let peers: Vec<SiteId> = (0..SITES as u32).map(SiteId).collect();
        let retry = RetryPolicy {
            ack_timeout_s: 20.0,
            max_backoff_s: 80.0,
            jitter_frac: 0.1,
            history_cap: 4, // tiny retention: resyncs often fall back to snapshots
            outbox_cap: 4,
        };
        let sites = (0..SITES as u32)
            .map(|i| {
                let mut u = Uss::new(SiteId(i), ParticipationMode::Full, SLOT_S);
                u.set_peers(&peers, &peers);
                u.configure_reliability(retry, seed.wrapping_add(i as u64));
                u
            })
            .collect();
        Self {
            sites,
            wire: Vec::new(),
            // Start past the largest single charge so records never reach
            // back before t = 0 (the histogram clamps there).
            now_s: 200.0,
        }
    }

    fn ingest(&mut self, site: usize, user: usize, charge_s: f64) {
        let rec = UsageRecord {
            job: JobId((site as u64) << 32 | self.now_s as u64),
            user: GridUser::new(USERS[user]),
            site: SiteId(site as u32),
            cores: 1,
            start_s: self.now_s - charge_s,
            end_s: self.now_s,
        };
        self.sites[site].ingest(&rec);
    }

    /// Advance time and let every site publish + flush its retry queue onto
    /// the wire.
    fn tick(&mut self, dt: f64) {
        self.now_s += dt;
        for i in 0..SITES {
            let now = self.now_s;
            self.sites[i].publish(now);
            let out = self.sites[i].poll(now);
            self.wire.extend(out);
        }
    }

    /// Deliver the wire message at `idx`, feeding any responses (acks,
    /// resync pulls, snapshots) back onto the wire.
    fn deliver(&mut self, idx: usize) {
        if self.wire.is_empty() {
            return;
        }
        let (to, msg) = self.wire.remove(idx % self.wire.len());
        let responses = self.sites[to.0 as usize].receive_message(&msg, self.now_s);
        self.wire.extend(responses);
    }

    /// Re-deliver a message without consuming it (network duplication).
    fn duplicate(&mut self, idx: usize) {
        if self.wire.is_empty() {
            return;
        }
        let (to, msg) = self.wire[idx % self.wire.len()].clone();
        let responses = self.sites[to.0 as usize].receive_message(&msg, self.now_s);
        self.wire.extend(responses);
    }

    fn drop_message(&mut self, idx: usize) {
        if !self.wire.is_empty() {
            let i = idx % self.wire.len();
            self.wire.remove(i);
        }
    }

    fn reorder(&mut self, idx: usize) {
        if self.wire.len() > 1 {
            let i = idx % self.wire.len();
            let m = self.wire.remove(i);
            self.wire.push(m);
        }
    }

    /// What each user's fully-merged grid view must converge to: the sum of
    /// local charges across all sites.
    fn published_truth(&self) -> BTreeMap<GridUser, f64> {
        let mut truth = BTreeMap::new();
        for site in &self.sites {
            for user in USERS {
                let u = GridUser::new(user);
                *truth.entry(u.clone()).or_insert(0.0) += site.local_usage_of(&u);
            }
        }
        truth
    }

    /// The no-double-count invariant, checkable at ANY point: a site's
    /// merged remote usage for a user never exceeds what its peers actually
    /// accrued locally — retries, duplicates, snapshots, and overlapping
    /// resync ranges must never inflate a charge.
    fn assert_never_overcounts(&self) {
        for (i, site) in self.sites.iter().enumerate() {
            for user in USERS {
                let u = GridUser::new(user);
                let remote = site.remote_usage_of(&u);
                let peers_local: f64 = self
                    .sites
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, s)| s.local_usage_of(&u))
                    .sum();
                assert!(
                    remote <= peers_local + 1e-9,
                    "site {i} overcounts {user}: remote {remote} > peers' local {peers_local}"
                );
            }
        }
    }

    /// Faults stop: run publish/poll/deliver-everything rounds until the
    /// wire drains and views stop changing.
    fn quiesce(&mut self) {
        for _ in 0..200 {
            self.tick(SLOT_S);
            while !self.wire.is_empty() {
                self.deliver(0);
            }
        }
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, u16)>> {
    // (op, site, user, magnitude): op 0 = ingest, 1 = tick, 2 = deliver,
    // 3 = drop, 4 = reorder, 5 = duplicate.
    proptest::collection::vec((0u8..6, 0u8..SITES as u8, 0u8..3, 0u16..1000), 10..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_never_double_count_and_converge(
        ops in ops_strategy(),
        seed in 0u64..1000,
    ) {
        let mut grid = Grid::new(seed);
        for (op, site, user, mag) in ops {
            match op {
                0 => grid.ingest(site as usize, user as usize, 1.0 + mag as f64 / 10.0),
                1 => grid.tick(10.0 + (mag % 50) as f64),
                2 => grid.deliver(mag as usize),
                3 => grid.drop_message(mag as usize),
                4 => grid.reorder(mag as usize),
                5 => grid.duplicate(mag as usize),
                _ => unreachable!(),
            }
            grid.assert_never_overcounts();
        }
        grid.quiesce();
        grid.assert_never_overcounts();
        // Convergence: every site's merged view equals the sum of published
        // charges, exactly (within float tolerance) — dropped summaries were
        // retried, gaps resynced, nothing lost, nothing duplicated.
        let truth = grid.published_truth();
        for (i, site) in grid.sites.iter().enumerate() {
            let view = site.grid_view();
            for (user, want) in &truth {
                let got = view.get(user).copied().unwrap_or(0.0);
                prop_assert!(
                    (got - want).abs() < 1e-9,
                    "site {} view of {:?}: {} vs published {}",
                    i, user, got, want
                );
            }
        }
    }

    #[test]
    fn crash_amid_chaos_still_converges(
        ops in ops_strategy(),
        crash_at in 5usize..40,
        seed in 0u64..1000,
    ) {
        // One site crashes mid-interleaving (volatile exchange state wiped,
        // local accounting survives); on recovery it requests snapshot
        // catch-up. The same convergence bound must hold.
        let mut grid = Grid::new(seed);
        for (step, (op, site, user, mag)) in ops.into_iter().enumerate() {
            if step == crash_at {
                grid.sites[1].crash();
                grid.sites[1].request_catchup();
            }
            match op {
                0 => grid.ingest(site as usize, user as usize, 1.0 + mag as f64 / 10.0),
                1 => grid.tick(10.0 + (mag % 50) as f64),
                2 => grid.deliver(mag as usize),
                3 => grid.drop_message(mag as usize),
                4 => grid.reorder(mag as usize),
                5 => grid.duplicate(mag as usize),
                _ => unreachable!(),
            }
        }
        grid.quiesce();
        grid.assert_never_overcounts();
        let truth = grid.published_truth();
        for (i, site) in grid.sites.iter().enumerate() {
            let view = site.grid_view();
            for (user, want) in &truth {
                let got = view.get(user).copied().unwrap_or(0.0);
                prop_assert!(
                    (got - want).abs() < 1e-9,
                    "post-crash site {} view of {:?}: {} vs {}",
                    i, user, got, want
                );
            }
        }
    }
}
