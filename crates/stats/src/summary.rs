//! Robust summary statistics. Following Downey & Feitelson (cited in §IV-2),
//! the paper prefers **medians** over means/CV because medians are resilient
//! to the arbitrary outlier-removal decisions that plague trace data.

/// Median of a data set (average of the two central order statistics for an
/// even count). Returns `None` on empty input.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Empirical quantile using linear interpolation between order statistics
/// (type-7, the Matlab/NumPy default). Returns `None` on empty input.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    })
}

/// Arithmetic mean. Returns `None` on empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Population variance (divides by n). Returns `None` if fewer than 2 points.
pub fn variance(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / data.len() as f64)
}

/// Standard deviation (population). Returns `None` if fewer than 2 points.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    variance(data).map(f64::sqrt)
}

/// Coefficient of variation σ/μ. Returns `None` if undefined (μ = 0 or n < 2).
pub fn coeff_of_variation(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    if m == 0.0 {
        return None;
    }
    Some(std_dev(data)? / m)
}

/// Round to whole seconds as the paper does for median inter-arrival and
/// duration values ("the time stamps from the original trace are limited to
/// second accuracy").
pub fn to_whole_seconds(x: f64) -> u64 {
    x.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert!((quantile(&xs, 0.5).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn median_robust_to_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 1e9];
        assert_eq!(median(&clean), Some(3.0));
        assert_eq!(median(&dirty), Some(3.0));
        // Mean is destroyed by the same outlier — the paper's argument.
        assert!(mean(&dirty).unwrap() > 1e8);
    }

    #[test]
    fn variance_and_cv() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert!((coeff_of_variation(&xs).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn whole_seconds_rounding() {
        assert_eq!(to_whole_seconds(2.4), 2);
        assert_eq!(to_whole_seconds(2.5), 3);
        assert_eq!(to_whole_seconds(-1.0), 0);
    }
}
