//! Additional goodness-of-fit diagnostics beyond Kolmogorov–Smirnov:
//! the Anderson–Darling statistic (more sensitive in the tails, where the
//! duration models' heavy tails live) and quantile–quantile series for
//! visual fit inspection.

use crate::distribution::ContinuousDistribution;

/// Anderson–Darling statistic `A²` of a sample against a theoretical CDF.
///
/// `A² = −n − (1/n) Σ_{i=1..n} (2i−1)[ln F(x_(i)) + ln(1 − F(x_(n+1−i)))]`.
///
/// Larger values indicate worse fits; as a rule of thumb `A² ≳ 2.5`
/// rejects at the 5% level for a fully specified distribution. CDF values
/// are clamped away from {0, 1} so samples at the support boundary don't
/// produce infinities.
pub fn anderson_darling<F: Fn(f64) -> f64>(data: &[f64], cdf: F) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let nf = n as f64;
    let eps = 1e-12;
    let mut sum = 0.0;
    for i in 0..n {
        let fi = cdf(sorted[i]).clamp(eps, 1.0 - eps);
        let fni = cdf(sorted[n - 1 - i]).clamp(eps, 1.0 - eps);
        sum += (2.0 * i as f64 + 1.0) * (fi.ln() + (1.0 - fni).ln());
    }
    -nf - sum / nf
}

/// Anderson–Darling against a distribution object.
pub fn anderson_darling_dist<D: ContinuousDistribution>(data: &[f64], dist: &D) -> f64 {
    anderson_darling(data, |x| dist.cdf(x))
}

/// Quantile–quantile series: `points` pairs of (theoretical quantile,
/// empirical quantile) at evenly spaced probabilities — a straight line
/// indicates a good fit.
pub fn qq_series<D: ContinuousDistribution>(
    data: &[f64],
    dist: &D,
    points: usize,
) -> Vec<(f64, f64)> {
    if data.is_empty() || points == 0 {
        return vec![];
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let p = i as f64 / (points as f64 + 1.0);
            let theoretical = dist.icdf(p);
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            (theoretical, sorted[idx])
        })
        .collect()
}

/// Maximum relative deviation of a Q–Q series from the identity line, as a
/// single fit-quality number (0 = perfect).
pub fn qq_max_relative_deviation(series: &[(f64, f64)]) -> f64 {
    series
        .iter()
        .filter(|(t, _)| t.abs() > 1e-12)
        .map(|(t, e)| ((e - t) / t).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gev, Normal, Weibull};
    use crate::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ad_small_for_correct_model() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let xs = sample_n(&d, 3000, &mut rng);
        let a2 = anderson_darling_dist(&xs, &d);
        assert!(a2 < 2.5, "A² = {a2}");
    }

    #[test]
    fn ad_large_for_wrong_model() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let wrong = Normal::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs = sample_n(&d, 3000, &mut rng);
        let right = anderson_darling_dist(&xs, &d);
        let shifted = anderson_darling_dist(&xs, &wrong);
        assert!(shifted > 10.0 * right.max(0.1), "{shifted} vs {right}");
    }

    #[test]
    fn ad_sensitive_to_tail_mismatch() {
        // Same median, different tail: Weibull k=0.6 data vs k=1.2 model.
        let heavy = Weibull::new(100.0, 0.6).unwrap();
        let light = Weibull::new(100.0 * (2.0f64.ln()).powf(1.0 / 0.6 - 1.0 / 1.2), 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let xs = sample_n(&heavy, 2000, &mut rng);
        let own = anderson_darling_dist(&xs, &heavy);
        let other = anderson_darling_dist(&xs, &light);
        assert!(other > own * 5.0, "{other} vs {own}");
    }

    #[test]
    fn ad_handles_boundary_samples() {
        let d = Gev::new(-0.4, 10.0, 0.0).unwrap();
        // Samples at/near the bounded upper support must not blow up.
        let xs = vec![24.9, 25.0, 10.0, -5.0, 0.0];
        let a2 = anderson_darling_dist(&xs, &d);
        assert!(a2.is_finite());
    }

    #[test]
    fn ad_empty_is_zero() {
        assert_eq!(anderson_darling(&[], |x| x), 0.0);
    }

    #[test]
    fn qq_straight_line_for_correct_model() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let xs = sample_n(&d, 20_000, &mut rng);
        let series = qq_series(&xs, &d, 19);
        for (t, e) in &series {
            assert!((t - e).abs() < 0.08, "({t}, {e})");
        }
    }

    #[test]
    fn qq_deviation_detects_scale_error() {
        let d = Normal::new(10.0, 1.0).unwrap();
        let wrong = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let xs = sample_n(&d, 10_000, &mut rng);
        let good = qq_max_relative_deviation(&qq_series(&xs, &d, 19));
        let bad = qq_max_relative_deviation(&qq_series(&xs, &wrong, 19));
        assert!(bad > 2.0 * good, "{bad} vs {good}");
    }

    #[test]
    fn qq_empty_inputs() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!(qq_series(&[], &d, 10).is_empty());
        assert!(qq_series(&[1.0], &d, 0).is_empty());
        assert_eq!(qq_max_relative_deviation(&[]), 0.0);
    }
}
