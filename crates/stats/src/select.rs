//! Model fitting and selection: fit all 18 candidate families to a data set
//! and pick the best by the Bayesian information criterion (BIC), exactly as
//! the paper does for the job arrival and duration models (§IV-2: "the best
//! fit was found by modeling each data set using a set of 18 different
//! distributions, and choosing the best fit based on the Bayesian
//! information criterion").

use crate::dist::{
    AnyDist, BirnbaumSaunders, Burr, Exponential, Gamma, Gev, Gumbel, HalfNormal, InverseGaussian,
    LogLogistic, LogNormal, Logistic, Nakagami, Normal, Pareto, Rayleigh, TLocationScale, Uniform,
    Weibull,
};
use crate::distribution::ContinuousDistribution;
use crate::ks::ks_statistic;

/// The result of fitting one candidate family to a data set.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The fitted distribution.
    pub dist: AnyDist,
    /// Total log-likelihood of the data under the fit.
    pub log_likelihood: f64,
    /// Bayesian information criterion: `k·ln n − 2·lnL` (lower is better).
    pub bic: f64,
    /// Kolmogorov–Smirnov statistic of the fit against the data.
    pub ks: f64,
}

/// Compute the BIC for a fitted distribution on `data`.
pub fn bic<D: ContinuousDistribution>(dist: &D, data: &[f64]) -> f64 {
    let ll = dist.log_likelihood(data);
    dist.param_count() as f64 * (data.len() as f64).ln() - 2.0 * ll
}

/// Fit every candidate family that accepts the data and evaluate each fit.
///
/// Families whose support or estimators are incompatible with the data (e.g.
/// log-domain families on data containing zeros) are skipped. Fits with
/// non-finite likelihood are discarded. Results are sorted by ascending BIC.
pub fn fit_all(data: &[f64]) -> Vec<FitResult> {
    let mut candidates: Vec<AnyDist> = Vec::with_capacity(18);
    macro_rules! try_fit {
        ($ty:ident) => {
            if let Some(d) = $ty::fit(data) {
                candidates.push(AnyDist::from(d));
            }
        };
    }
    try_fit!(Normal);
    try_fit!(HalfNormal);
    try_fit!(LogNormal);
    try_fit!(Exponential);
    try_fit!(Rayleigh);
    try_fit!(Gamma);
    try_fit!(InverseGaussian);
    try_fit!(Nakagami);
    try_fit!(Gev);
    try_fit!(Gumbel);
    try_fit!(Weibull);
    try_fit!(Pareto);
    try_fit!(Burr);
    try_fit!(Logistic);
    try_fit!(LogLogistic);
    try_fit!(TLocationScale);
    try_fit!(BirnbaumSaunders);
    try_fit!(Uniform);

    let mut results: Vec<FitResult> = candidates
        .into_iter()
        .filter_map(|dist| {
            let ll = dist.log_likelihood(data);
            if !ll.is_finite() {
                return None;
            }
            let bic = dist.param_count() as f64 * (data.len() as f64).ln() - 2.0 * ll;
            let ks = ks_statistic(data, |x| dist.cdf(x));
            Some(FitResult {
                dist,
                log_likelihood: ll,
                bic,
                ks,
            })
        })
        .collect();
    results.sort_by(|a, b| a.bic.partial_cmp(&b.bic).unwrap());
    results
}

/// Fit all families and return the best fit by BIC, if any family succeeded.
pub fn select_best(data: &[f64]) -> Option<FitResult> {
    fit_all(data).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_normal_for_normal_data() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let xs = sample_n(&d, 5000, &mut rng);
        let best = select_best(&xs).unwrap();
        // Normal data can also be matched by TLocationScale (ν→∞) or GEV-ish
        // shapes, but BIC's parameter penalty should favour the 2-param family.
        assert!(
            matches!(best.dist, AnyDist::Normal(_)),
            "got {}",
            best.dist.name()
        );
        assert!(best.ks < 0.02, "ks={}", best.ks);
    }

    #[test]
    fn selects_heavy_tail_family_for_lognormal_data() {
        let d = LogNormal::new(2.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs = sample_n(&d, 4000, &mut rng);
        let best = select_best(&xs).unwrap();
        assert!(
            matches!(best.dist, AnyDist::LogNormal(_)),
            "got {}",
            best.dist.name()
        );
    }

    #[test]
    fn gev_data_prefers_gev() {
        let d = Gev::new(-0.35, 25.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let xs = sample_n(&d, 5000, &mut rng);
        let best = select_best(&xs).unwrap();
        assert_eq!(best.dist.name(), "GEV", "got {}", best.dist.name());
        assert!(best.ks < 0.03, "ks={}", best.ks);
    }

    #[test]
    fn results_sorted_by_bic() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Weibull::new(100.0, 0.8).unwrap();
        let xs = sample_n(&d, 2000, &mut rng);
        let all = fit_all(&xs);
        assert!(all.len() >= 8, "only {} fits", all.len());
        for w in all.windows(2) {
            assert!(w[0].bic <= w[1].bic);
        }
    }

    #[test]
    fn bic_penalizes_parameters() {
        // For the same likelihood, more parameters → higher BIC.
        let xs: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let n2 = Normal::fit(&xs).unwrap();
        let ll = n2.log_likelihood(&xs);
        let bic2 = 2.0 * (xs.len() as f64).ln() - 2.0 * ll;
        assert!((bic(&n2, &xs) - bic2).abs() < 1e-9);
    }

    #[test]
    fn empty_data_yields_nothing() {
        assert!(select_best(&[]).is_none());
    }
}
