//! # aequus-stats
//!
//! Statistical substrate for the Aequus reproduction: the machinery the
//! paper's workload-modeling section (§IV) relies on, implemented from
//! scratch.
//!
//! * 18 continuous distribution families with PDF/CDF/ICDF/sampling and
//!   per-family fitting ([`dist`]) — the candidate set searched when
//!   re-deriving Tables II and III.
//! * Finite mixtures for the Eq. (1) four-phase composite model of U65.
//! * BIC model selection ([`select`]), Kolmogorov–Smirnov goodness-of-fit
//!   ([`ks`]), Anderson–Darling and Q–Q diagnostics ([`gof`]), autocorrelation ([`acf`]), histograms ([`histogram`]),
//!   empirical CDFs ([`ecdf`]), robust summary statistics ([`summary`]),
//!   and range-rescaled ICDF sampling ([`truncated`]).
//!
//! Everything is deterministic given an RNG seed; no global state.

#![warn(missing_docs)]

pub mod acf;
pub mod dist;
pub mod distribution;
pub mod ecdf;
pub mod gof;
pub mod histogram;
pub mod ks;
pub mod optim;
pub mod select;
pub mod special;
pub mod summary;
pub mod truncated;

pub use distribution::{sample_n, ContinuousDistribution, Support};
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use select::{fit_all, select_best, FitResult};
pub use truncated::RangeRescaled;
