//! Range-restricted ICDF sampling.
//!
//! §IV-2: "To ensure that all samples are within the intended range, the
//! distribution of random values \[0,1\] is therefore re-scaled to fit within
//! the desired time frame. For example, in the case of U65, the effective
//! range [7.451e−3, 9.946e−1] is used to ensure all generated values are
//! within the same calendar year."
//!
//! [`RangeRescaled`] implements exactly this: instead of truncating the
//! *distribution*, the *uniform input* to the ICDF is affinely re-scaled to a
//! sub-interval `[u_lo, u_hi] ⊂ [0, 1]`, guaranteeing every sample lies in
//! `[icdf(u_lo), icdf(u_hi)]`.

use crate::distribution::ContinuousDistribution;
use rand::Rng;

/// A sampler that re-scales uniform draws into `[u_lo, u_hi]` before applying
/// a distribution's ICDF, bounding all samples to the corresponding x-range.
#[derive(Debug, Clone)]
pub struct RangeRescaled<D> {
    dist: D,
    u_lo: f64,
    u_hi: f64,
}

impl<D: ContinuousDistribution> RangeRescaled<D> {
    /// Restrict sampling to the probability sub-range `[u_lo, u_hi]`.
    ///
    /// Returns `None` unless `0 ≤ u_lo < u_hi ≤ 1` (degenerate or inverted
    /// ranges are rejected).
    pub fn new(dist: D, u_lo: f64, u_hi: f64) -> Option<Self> {
        (0.0..1.0).contains(&u_lo).then_some(())?;
        (u_hi > u_lo && u_hi <= 1.0).then_some(())?;
        Some(Self { dist, u_lo, u_hi })
    }

    /// Restrict sampling so every sample lies in `[x_lo, x_hi]` by mapping
    /// the bounds through the CDF.
    pub fn for_x_range(dist: D, x_lo: f64, x_hi: f64) -> Option<Self> {
        let u_lo = dist.cdf(x_lo).clamp(0.0, 1.0 - 1e-12);
        let u_hi = dist.cdf(x_hi).clamp(u_lo + 1e-12, 1.0);
        Self::new(dist, u_lo, u_hi)
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &D {
        &self.dist
    }

    /// The probability sub-range.
    pub fn u_range(&self) -> (f64, f64) {
        (self.u_lo, self.u_hi)
    }

    /// The x-range all samples fall into.
    pub fn x_range(&self) -> (f64, f64) {
        (
            self.dist.icdf(self.u_lo.max(1e-15)),
            self.dist.icdf(self.u_hi.min(1.0 - 1e-15)),
        )
    }

    /// Map a uniform value `u ∈ [0,1]` to a sample (deterministic transform).
    pub fn transform(&self, u: f64) -> f64 {
        let v = self.u_lo + u.clamp(0.0, 1.0) * (self.u_hi - self.u_lo);
        self.dist.icdf(v.clamp(1e-15, 1.0 - 1e-15))
    }

    /// Draw one bounded sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.transform(rng.gen::<f64>())
    }

    /// Draw `n` bounded samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Gev, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_u65_range_bounds_samples() {
        // The exact effective range quoted in the paper for U65.
        let d = Gev::new(-0.386, 19.5, 73.5).unwrap();
        let r = RangeRescaled::new(d, 7.451e-3, 9.946e-1).unwrap();
        let (x_lo, x_hi) = r.x_range();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let x = r.sample(&mut rng);
            assert!(
                x >= x_lo - 1e-9 && x <= x_hi + 1e-9,
                "{x} not in [{x_lo},{x_hi}]"
            );
        }
    }

    #[test]
    fn transform_monotone() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let r = RangeRescaled::new(d, 0.1, 0.9).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let x = r.transform(i as f64 / 20.0);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn x_range_constructor() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let r = RangeRescaled::for_x_range(d, -1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let x = r.sample(&mut rng);
            assert!((-1.0001..=1.0001).contains(&x), "{x}");
        }
    }

    #[test]
    fn rejects_bad_ranges() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!(RangeRescaled::new(d, 0.5, 0.5).is_none());
        assert!(RangeRescaled::new(d, 0.9, 0.1).is_none());
        assert!(RangeRescaled::new(d, -0.1, 0.5).is_none());
        assert!(RangeRescaled::new(d, 0.5, 1.1).is_none());
    }
}
