//! Special mathematical functions used by the distribution implementations.
//!
//! All routines are self-contained f64 implementations with accuracy targets
//! around 1e-10 relative error in their usual domains — more than enough for
//! distribution fitting and sampling, where statistical noise dominates.

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885,
        -1_259.139_216_722_403,
        771.323_428_777_653,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_312e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function Γ(x).
pub fn gamma(x: f64) -> f64 {
    if x > 0.0 {
        ln_gamma(x).exp()
    } else {
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * ln_gamma(1.0 - x).exp())
    }
}

/// Digamma function ψ(x) = d/dx ln Γ(x), for `x > 0`.
pub fn digamma(x: f64) -> f64 {
    let mut x = x;
    let mut result = 0.0;
    // Recurrence to push x above 6 where the asymptotic series is accurate.
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Error function erf(x), accurate to ~1.2e-7 absolute (sufficient here, the
/// normal CDF path below uses a higher-accuracy complementary formulation).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function erfc(x) with ~1e-12 relative accuracy, using
/// the rational Chebyshev-like expansion of W. J. Cody as adapted in
/// Numerical Recipes (`erfc_cheb`).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        0.641_969_792_356_49,
        1.947_647_320_418_583_6e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function Φ(x).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function φ(x).
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function), `Φ⁻¹(p)`.
///
/// Peter Acklam's rational approximation refined with one Halley step,
/// giving full double precision over `p ∈ (0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "std_normal_quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Regularized lower incomplete gamma function P(a, x) = γ(a, x)/Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_ga).exp()
}

/// Continued-fraction evaluation of Q(a, x), convergent for x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_ga).exp() * h
}

/// Inverse of the regularized lower incomplete gamma: find x with P(a,x)=p.
pub fn gamma_p_inv(a: f64, p: f64) -> f64 {
    assert!(a > 0.0 && (0.0..1.0).contains(&p));
    if p == 0.0 {
        return 0.0;
    }
    // Initial guess (Numerical Recipes / DiDonato-Morris style).
    let mut x = if a > 1.0 {
        let pp = if p < 0.5 { p } else { 1.0 - p };
        let t = (-2.0 * pp.ln()).sqrt();
        let mut g = (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481)) - t;
        if p < 0.5 {
            g = -g;
        }
        let a1 = 1.0 / (9.0 * a);
        (a * (1.0 - a1 + g * a1.sqrt()).powi(3)).max(1e-300)
    } else {
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - (1.0 - (p - t) / (1.0 - t)).ln()
        }
    };
    // Bracket the root, then bisect with Newton acceleration — slower than
    // a pure Halley polish but unconditionally convergent across the whole
    // (a, p) plane (small shapes make Halley steps overshoot badly).
    if !(x.is_finite() && x > 0.0) {
        x = a; // fall back to the mean as a starting point
    }
    let mut lo = x;
    let mut hi = x;
    let mut step = x.max(1e-8);
    while gamma_p(a, lo) > p && lo > 1e-300 {
        lo = (lo - step).max(lo / 2.0).max(1e-300);
        step *= 2.0;
    }
    step = x.max(1e-8);
    while gamma_p(a, hi) < p {
        hi += step;
        step *= 2.0;
        if hi > 1e300 {
            break;
        }
    }
    let ln_ga = ln_gamma(a);
    let mut mid = 0.5 * (lo + hi);
    for _ in 0..200 {
        let err = gamma_p(a, mid) - p;
        if err > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
        // Newton step from the current midpoint; keep it only if it stays
        // inside the bracket.
        let deriv = (-mid + (a - 1.0) * mid.ln() - ln_ga).exp();
        let newton = mid - err / deriv;
        mid = if deriv > 0.0 && newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) <= 1e-14 * hi.abs().max(1e-300) {
            break;
        }
    }
    mid.max(0.0)
}

/// Natural log of the beta function, ln B(a, b).
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function I_x(a, b).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a,b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let bt = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        bt * beta_cf(a, b, x) / a
    } else {
        1.0 - bt * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction core for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Inverse of the regularized incomplete beta: find x with I_x(a,b) = p.
pub fn beta_inc_inv(a: f64, b: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    // Bisection with Newton acceleration — robust over all (a, b).
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = 0.5_f64;
    for _ in 0..200 {
        let f = beta_inc(a, b, x) - p;
        if f.abs() < 1e-14 {
            break;
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step with fallback to bisection midpoint.
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta(a, b);
        let deriv = ln_pdf.exp();
        let newton = x - f / deriv;
        x = if deriv > 0.0 && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if hi - lo < 1e-15 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
    }

    #[test]
    fn gamma_reflection() {
        // Γ(x)Γ(1−x) = π/sin(πx)
        let x = 0.3;
        close(
            gamma(x) * gamma(1.0 - x),
            std::f64::consts::PI / (std::f64::consts::PI * x).sin(),
            1e-10,
        );
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.5] {
            close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-13);
        }
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            close(std_normal_cdf(std_normal_quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{-x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0] {
            for &x in &[0.2, 1.0, 5.0, 20.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_inv_roundtrip() {
        for &a in &[0.5, 1.0, 2.0, 7.5] {
            for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                let x = gamma_p_inv(a, p);
                close(gamma_p(a, x), p, 1e-8);
            }
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (5.0, 1.5, 0.7)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.5, 0.9] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn beta_inv_roundtrip() {
        for &(a, b) in &[(2.0, 5.0), (0.7, 0.7), (10.0, 2.0)] {
            for &p in &[0.05, 0.5, 0.95] {
                let x = beta_inc_inv(a, b, p);
                close(beta_inc(a, b, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.5, 1.0, 3.3, 8.0] {
            close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
        }
    }

    #[test]
    fn digamma_one_is_minus_euler_gamma() {
        close(digamma(1.0), -EULER_GAMMA, 1e-10);
    }
}
