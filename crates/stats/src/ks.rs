//! Kolmogorov–Smirnov goodness-of-fit test (§IV-2 of the paper reports KS
//! statistics for every fitted distribution in Tables II and III).

/// One-sample Kolmogorov–Smirnov statistic: `D = sup_x |F_n(x) − F(x)|`.
///
/// `cdf` is the theoretical CDF under test. Handles the standard two-sided
/// empirical-step comparison (checks both `i/n − F(x_i)` and `F(x_i) − (i−1)/n`).
pub fn ks_statistic<F: Fn(f64) -> f64>(data: &[f64], cdf: F) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let hi = (i as f64 + 1.0) / n - f;
        let lo = f - i as f64 / n;
        d = d.max(hi).max(lo);
    }
    d
}

/// Asymptotic p-value for a one-sample KS statistic `d` with sample size `n`.
///
/// Uses the Kolmogorov distribution tail
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)` with the standard
/// finite-sample correction `λ = (√n + 0.12 + 0.11/√n)·d`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample KS statistic between two empirical samples.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xa: Vec<f64> = a.to_vec();
    let mut xb: Vec<f64> = b.to_vec();
    xa.sort_by(|p, q| p.partial_cmp(q).unwrap());
    xb.sort_by(|p, q| p.partial_cmp(q).unwrap());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_small_statistic() {
        // Uniform grid against uniform CDF: D = 1/(2n) by construction... here
        // grid midpoints give D = 1/(2n).
        let n = 100;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&data, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.005).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn bad_fit_large_statistic() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        // CDF of a point mass far away: everything at F=0.
        let d = ks_statistic(&data, |_| 0.0);
        assert!(d >= 0.99);
    }

    #[test]
    fn p_value_monotone_in_d() {
        let p1 = ks_p_value(0.02, 1000);
        let p2 = ks_p_value(0.05, 1000);
        let p3 = ks_p_value(0.15, 1000);
        assert!(p1 > p2 && p2 > p3, "{p1} {p2} {p3}");
        assert!(p1 <= 1.0 && p3 >= 0.0);
    }

    #[test]
    fn p_value_extremes() {
        assert_eq!(ks_p_value(0.0, 100), 1.0);
        assert!(ks_p_value(0.9, 100) < 1e-10);
    }

    #[test]
    fn two_sample_identical_is_zero() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(ks_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn two_sample_disjoint_is_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        assert!((ks_two_sample(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(ks_statistic(&[], |x| x), 0.0);
        assert_eq!(ks_two_sample(&[], &[1.0]), 0.0);
    }
}
