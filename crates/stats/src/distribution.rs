//! The [`ContinuousDistribution`] trait: the common interface all fitted
//! distributions implement (PDF, CDF, quantile/ICDF, sampling, likelihood).

use rand::Rng;

/// Support of a continuous distribution on the real line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Support {
    /// Inclusive-ish lower bound (may be -inf).
    pub lo: f64,
    /// Inclusive-ish upper bound (may be +inf).
    pub hi: f64,
}

impl Support {
    /// Support over the whole real line.
    pub const REAL: Support = Support {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };
    /// Support on the positive half-line.
    pub const POSITIVE: Support = Support {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    /// Whether `x` lies within the support.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// A univariate continuous probability distribution.
///
/// Implementors must provide `pdf` and `cdf`; `icdf` defaults to a robust
/// numeric inversion of `cdf` but should be overridden where a closed form
/// exists (every sampling-heavy distribution in this crate does so).
pub trait ContinuousDistribution: Send + Sync + std::fmt::Debug {
    /// Human-readable distribution family name, e.g. `"GEV"`.
    fn name(&self) -> &'static str;

    /// Number of free parameters (used by BIC model selection).
    fn param_count(&self) -> usize;

    /// The distribution's parameters, for display and comparison.
    fn params(&self) -> Vec<(&'static str, f64)>;

    /// Support of the distribution.
    fn support(&self) -> Support;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x`; `-inf` where the density is zero.
    fn ln_pdf(&self, x: f64) -> f64 {
        let p = self.pdf(x);
        if p > 0.0 {
            p.ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    fn icdf(&self, p: f64) -> f64 {
        icdf_numeric(self, p)
    }

    /// Theoretical mean if finite and known, else `None`.
    fn mean(&self) -> Option<f64> {
        None
    }

    /// Theoretical variance if finite and known, else `None`.
    fn variance(&self) -> Option<f64> {
        None
    }

    /// Draw one sample using inverse-transform sampling.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        // Open interval avoids icdf(0)/icdf(1) infinities.
        let u: f64 = rng.gen_range(f64::EPSILON..(1.0 - f64::EPSILON));
        self.icdf(u)
    }

    /// Total log-likelihood of an i.i.d. data set under this distribution.
    fn log_likelihood(&self, data: &[f64]) -> f64 {
        data.iter().map(|&x| self.ln_pdf(x)).sum()
    }
}

/// Numeric quantile via bracketing + bisection on the CDF.
///
/// Works for any monotone CDF; expands the bracket geometrically from an
/// interior point until it contains `p`, then bisects to ~1e-12 relative
/// precision.
pub fn icdf_numeric<D: ContinuousDistribution + ?Sized>(dist: &D, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "icdf requires p in (0,1), got {p}");
    let sup = dist.support();
    // Establish finite bracket [lo, hi] with cdf(lo) <= p <= cdf(hi).
    let mut lo = if sup.lo.is_finite() { sup.lo } else { -1.0 };
    let mut hi = if sup.hi.is_finite() { sup.hi } else { 1.0 };
    if !sup.lo.is_finite() {
        let mut step = 1.0;
        while dist.cdf(lo) > p {
            lo -= step;
            step *= 2.0;
            if step > 1e300 {
                break;
            }
        }
    }
    if !sup.hi.is_finite() {
        let mut step = 1.0;
        while dist.cdf(hi) < p {
            hi += step;
            step *= 2.0;
            if step > 1e300 {
                break;
            }
        }
    }
    // Bisect.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if !mid.is_finite() || mid == lo || mid == hi {
            break;
        }
        if dist.cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() <= 1e-12 * (1.0 + mid.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Draw `n` samples into a vector.
pub fn sample_n<D: ContinuousDistribution, R: Rng + ?Sized>(
    dist: &D,
    n: usize,
    rng: &mut R,
) -> Vec<f64> {
    (0..n).map(|_| dist.sample(rng)).collect()
}
