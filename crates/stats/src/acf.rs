//! Autocorrelation analysis (§IV-2: "The trace has been analyzed for
//! periodicity using auto correlation functions, searching for daily, weekly,
//! and monthly patterns for each user").

/// Sample autocorrelation function at lags `0..=max_lag`.
///
/// Uses the standard biased estimator
/// `r_k = Σ_{t} (x_t − x̄)(x_{t+k} − x̄) / Σ_t (x_t − x̄)²`, which guarantees
/// `|r_k| ≤ 1` and `r_0 = 1`.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n == 0 {
        return vec![];
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    let max_lag = max_lag.min(n.saturating_sub(1));
    if denom == 0.0 {
        // Constant series: define r_0 = 1, the rest 0.
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    (0..=max_lag)
        .map(|k| {
            let num: f64 = (0..n - k)
                .map(|t| (series[t] - mean) * (series[t + k] - mean))
                .sum();
            num / denom
        })
        .collect()
}

/// Detect periodicity: return the lag in `1..=max_lag` with the highest
/// autocorrelation, together with that correlation, if it exceeds the 95%
/// white-noise significance band `±1.96/√n`.
pub fn dominant_period(series: &[f64], max_lag: usize) -> Option<(usize, f64)> {
    let r = acf(series, max_lag);
    if r.len() < 2 {
        return None;
    }
    let threshold = 1.96 / (series.len() as f64).sqrt();
    r.iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .filter(|(_, &v)| v > threshold)
        .map(|(k, &v)| (k, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let r = acf(&xs, 3);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_bounded() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 7919) % 101) as f64).collect();
        for &v in &acf(&xs, 50) {
            assert!(v.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn periodic_series_detected() {
        // Strong period-7 signal ("weekly pattern").
        let xs: Vec<f64> = (0..700)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 7.0).sin())
            .collect();
        let (lag, r) = dominant_period(&xs, 30).unwrap();
        assert_eq!(lag, 7, "r={r}");
        assert!(r > 0.9);
    }

    #[test]
    fn white_noise_has_no_dominant_period() {
        // Deterministic pseudo-noise that decorrelates quickly.
        let xs: Vec<f64> = (0..2000)
            .map(|i| {
                // splitmix64 finalizer: full avalanche, decorrelated output.
                let mut h = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                (h >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        // May occasionally squeak over the band; require no strong period.
        if let Some((_, r)) = dominant_period(&xs, 50) {
            assert!(r < 0.15, "spurious correlation {r}");
        }
    }

    #[test]
    fn constant_series() {
        let xs = [2.0; 10];
        let r = acf(&xs, 4);
        assert_eq!(r[0], 1.0);
        assert!(r[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_series() {
        assert!(acf(&[], 5).is_empty());
        assert!(dominant_period(&[], 5).is_none());
    }
}
