//! Empirical cumulative distribution functions (used to reproduce Figures 6
//! and 7: empirical vs fitted CDFs for job arrival and job size).

/// An empirical CDF built from a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF; non-finite values are dropped.
    pub fn new(data: &[f64]) -> Self {
        let mut sorted: Vec<f64> = data.iter().cloned().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F_n(x)`: fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point returns the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: smallest sample x with F_n(x) ≥ p.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// Evaluate the ECDF on a uniform grid of `points` x-values spanning the
    /// data — the series used when printing figure data.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return vec![];
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let x = lo + span * i as f64 / (points.max(2) - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The sorted sample values.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.25), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(40.0));
        assert_eq!(e.quantile(1.5), None);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn monotone_series() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let s = e.series(50);
        assert_eq!(s.len(), 50);
        for w in s.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_safe() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.quantile(0.5).is_none());
        assert!(e.series(10).is_empty());
    }
}
