//! The distribution zoo: the 18 continuous families used in the paper's
//! model-selection step (§IV-2: "modeling each data set using a set of 18
//! different distributions, and choosing the best fit based on the Bayesian
//! information criterion"), plus finite mixtures for the Eq. (1) composite.

pub mod bs;
pub mod exponential;
pub mod extreme;
pub mod heavy;
pub mod mixture;
pub mod normal;
pub mod uniform;

pub use bs::BirnbaumSaunders;
pub use exponential::{Exponential, Gamma, InverseGaussian, Nakagami, Rayleigh};
pub use extreme::{Gev, Gumbel, Weibull};
pub use heavy::{Burr, LogLogistic, Logistic, Pareto, TLocationScale};
pub use mixture::Mixture;
pub use normal::{HalfNormal, LogNormal, Normal};
pub use uniform::Uniform;

use crate::distribution::{ContinuousDistribution, Support};

/// A closed enum over every distribution family in the crate.
///
/// `AnyDist` lets fitted models be stored uniformly (e.g. in model-selection
/// results or mixture components) while remaining `Clone` and concrete —
/// no trait objects, no allocation per distribution.
#[derive(Debug, Clone)]
pub enum AnyDist {
    /// Normal (Gaussian).
    Normal(Normal),
    /// Half-normal.
    HalfNormal(HalfNormal),
    /// Log-normal.
    LogNormal(LogNormal),
    /// Exponential.
    Exponential(Exponential),
    /// Rayleigh.
    Rayleigh(Rayleigh),
    /// Gamma.
    Gamma(Gamma),
    /// Inverse Gaussian (Wald).
    InverseGaussian(InverseGaussian),
    /// Nakagami.
    Nakagami(Nakagami),
    /// Generalized Extreme Value.
    Gev(Gev),
    /// Gumbel (type-I extreme value).
    Gumbel(Gumbel),
    /// Weibull.
    Weibull(Weibull),
    /// Pareto type I.
    Pareto(Pareto),
    /// Burr type XII.
    Burr(Burr),
    /// Logistic.
    Logistic(Logistic),
    /// Log-logistic (Fisk).
    LogLogistic(LogLogistic),
    /// Student-t location-scale.
    TLocationScale(TLocationScale),
    /// Birnbaum–Saunders.
    BirnbaumSaunders(BirnbaumSaunders),
    /// Continuous uniform.
    Uniform(Uniform),
    /// Finite mixture of other distributions.
    Mixture(Box<Mixture>),
}

macro_rules! dispatch {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            AnyDist::Normal($d) => $body,
            AnyDist::HalfNormal($d) => $body,
            AnyDist::LogNormal($d) => $body,
            AnyDist::Exponential($d) => $body,
            AnyDist::Rayleigh($d) => $body,
            AnyDist::Gamma($d) => $body,
            AnyDist::InverseGaussian($d) => $body,
            AnyDist::Nakagami($d) => $body,
            AnyDist::Gev($d) => $body,
            AnyDist::Gumbel($d) => $body,
            AnyDist::Weibull($d) => $body,
            AnyDist::Pareto($d) => $body,
            AnyDist::Burr($d) => $body,
            AnyDist::Logistic($d) => $body,
            AnyDist::LogLogistic($d) => $body,
            AnyDist::TLocationScale($d) => $body,
            AnyDist::BirnbaumSaunders($d) => $body,
            AnyDist::Uniform($d) => $body,
            AnyDist::Mixture($d) => $body,
        }
    };
}

impl ContinuousDistribution for AnyDist {
    fn name(&self) -> &'static str {
        dispatch!(self, d => d.name())
    }
    fn param_count(&self) -> usize {
        dispatch!(self, d => d.param_count())
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        dispatch!(self, d => d.params())
    }
    fn support(&self) -> Support {
        dispatch!(self, d => d.support())
    }
    fn pdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.pdf(x))
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.ln_pdf(x))
    }
    fn cdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.cdf(x))
    }
    fn icdf(&self, p: f64) -> f64 {
        dispatch!(self, d => d.icdf(p))
    }
    fn mean(&self) -> Option<f64> {
        dispatch!(self, d => d.mean())
    }
    fn variance(&self) -> Option<f64> {
        dispatch!(self, d => d.variance())
    }
}

macro_rules! any_from {
    ($($variant:ident : $ty:ty),* $(,)?) => {
        $(impl From<$ty> for AnyDist {
            fn from(d: $ty) -> Self {
                AnyDist::$variant(d)
            }
        })*
    };
}

any_from!(
    Normal: Normal,
    HalfNormal: HalfNormal,
    LogNormal: LogNormal,
    Exponential: Exponential,
    Rayleigh: Rayleigh,
    Gamma: Gamma,
    InverseGaussian: InverseGaussian,
    Nakagami: Nakagami,
    Gev: Gev,
    Gumbel: Gumbel,
    Weibull: Weibull,
    Pareto: Pareto,
    Burr: Burr,
    Logistic: Logistic,
    LogLogistic: LogLogistic,
    TLocationScale: TLocationScale,
    BirnbaumSaunders: BirnbaumSaunders,
    Uniform: Uniform,
);

impl From<Mixture> for AnyDist {
    fn from(d: Mixture) -> Self {
        AnyDist::Mixture(Box::new(d))
    }
}

/// A one-line human-readable description of a distribution with parameters,
/// e.g. `GEV(k = -0.386, sigma = 19.5, mu = 73500)` — the formatting used in
/// the Table II / Table III reproductions.
pub fn describe<D: ContinuousDistribution>(d: &D) -> String {
    let params: Vec<String> = d
        .params()
        .iter()
        .map(|(n, v)| format!("{n} = {}", fmt_sig(*v, 4)))
        .collect();
    format!("{}({})", d.name(), params.join(", "))
}

/// Format `v` with `sig` significant digits, switching to scientific notation
/// for very large/small magnitudes (a `%g`-style formatter).
pub fn fmt_sig(v: f64, sig: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs().log10().floor() as i32;
    if !(-4..6).contains(&mag) {
        format!("{v:.*e}", sig.saturating_sub(1))
    } else {
        let decimals = (sig as i32 - 1 - mag).max(0) as usize;
        let s = format!("{v:.decimals$}");
        // Trim trailing zeros after a decimal point.
        if s.contains('.') {
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anydist_delegates() {
        let d = AnyDist::from(Normal::new(0.0, 1.0).unwrap());
        assert_eq!(d.name(), "Normal");
        assert_eq!(d.param_count(), 2);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((d.icdf(0.5)).abs() < 1e-9);
    }

    #[test]
    fn describe_formats() {
        let s = describe(&Gev::new(-0.386, 19.5, 7.35e4).unwrap());
        assert!(s.starts_with("GEV("), "{s}");
        assert!(s.contains("k = -0.386"), "{s}");
    }

    #[test]
    fn eighteen_families() {
        // The "set of 18 different distributions" of §IV-2: each enum variant
        // except Mixture is a fit candidate.
        let families = [
            "Normal",
            "HalfNormal",
            "LogNormal",
            "Exponential",
            "Rayleigh",
            "Gamma",
            "InverseGaussian",
            "Nakagami",
            "GEV",
            "Gumbel",
            "Weibull",
            "Pareto",
            "Burr",
            "Logistic",
            "LogLogistic",
            "TLocationScale",
            "BirnbaumSaunders",
            "Uniform",
        ];
        assert_eq!(families.len(), 18);
    }
}
