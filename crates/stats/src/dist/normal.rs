//! Normal-family distributions: [`Normal`], [`HalfNormal`], [`LogNormal`].

use crate::distribution::{ContinuousDistribution, Support};
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};

/// Normal (Gaussian) distribution N(μ, σ²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Location (mean).
    pub mu: f64,
    /// Scale (standard deviation), > 0.
    pub sigma: f64,
}

impl Normal {
    /// Create a normal distribution; returns `None` if `sigma <= 0` or
    /// parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma > 0.0 && mu.is_finite() && sigma.is_finite()).then_some(Self { mu, sigma })
    }

    /// Maximum-likelihood fit (sample mean / uncorrected std deviation).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Self::new(mean, var.sqrt())
    }
}

impl ContinuousDistribution for Normal {
    fn name(&self) -> &'static str {
        "Normal"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("sigma", self.sigma)]
    }
    fn support(&self) -> Support {
        Support::REAL
    }
    fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }
    fn icdf(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.sigma * self.sigma)
    }
}

/// Half-normal distribution: |Z|·σ for Z standard normal. Support x ≥ 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfNormal {
    /// Scale σ > 0 of the underlying normal.
    pub sigma: f64,
}

impl HalfNormal {
    /// Create a half-normal distribution; `None` if `sigma <= 0`.
    pub fn new(sigma: f64) -> Option<Self> {
        (sigma > 0.0 && sigma.is_finite()).then_some(Self { sigma })
    }

    /// MLE: σ² = mean of squares.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|&x| x < 0.0) {
            return None;
        }
        let ms = data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64;
        Self::new(ms.sqrt())
    }
}

impl ContinuousDistribution for HalfNormal {
    fn name(&self) -> &'static str {
        "HalfNormal"
    }
    fn param_count(&self) -> usize {
        1
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("sigma", self.sigma)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            2.0 * std_normal_pdf(x / self.sigma) / self.sigma
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            2.0 * std_normal_cdf(x / self.sigma) - 1.0
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        self.sigma * std_normal_quantile(0.5 * (p + 1.0))
    }
    fn mean(&self) -> Option<f64> {
        Some(self.sigma * (2.0 / std::f64::consts::PI).sqrt())
    }
    fn variance(&self) -> Option<f64> {
        Some(self.sigma * self.sigma * (1.0 - 2.0 / std::f64::consts::PI))
    }
}

/// Log-normal distribution: exp(N(μ, σ²)). Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location of ln X.
    pub mu: f64,
    /// Scale of ln X, > 0.
    pub sigma: f64,
}

impl LogNormal {
    /// Create a log-normal distribution; `None` if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        (sigma > 0.0 && mu.is_finite() && sigma.is_finite()).then_some(Self { mu, sigma })
    }

    /// MLE on log-transformed data; requires strictly positive samples.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Self::new(mean, var.sqrt())
    }
}

impl ContinuousDistribution for LogNormal {
    fn name(&self) -> &'static str {
        "LogNormal"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("sigma", self.sigma)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_pdf((x.ln() - self.mu) / self.sigma) / (x * self.sigma)
        }
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.mu + 0.5 * self.sigma * self.sigma).exp())
    }
    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma * self.sigma;
        Some((s2.exp() - 1.0) * (2.0 * self.mu + s2).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_pdf_integrates_via_cdf() {
        let d = Normal::new(2.0, 3.0).unwrap();
        assert!((d.cdf(2.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(5.0) - 0.841_344_746).abs() < 1e-6);
    }

    #[test]
    fn normal_fit_recovers_params() {
        let d = Normal::new(-1.0, 2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let xs = sample_n(&d, 20_000, &mut rng);
        let f = Normal::fit(&xs).unwrap();
        assert!((f.mu + 1.0).abs() < 0.08, "{f:?}");
        assert!((f.sigma - 2.5).abs() < 0.08, "{f:?}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(f64::NAN, 1.0).is_none());
    }

    #[test]
    fn halfnormal_icdf_roundtrip() {
        let d = HalfNormal::new(1.7).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.9, 0.999] {
            let x = d.icdf(p);
            assert!((d.cdf(x) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn halfnormal_fit_recovers_scale() {
        let d = HalfNormal::new(0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let xs = sample_n(&d, 20_000, &mut rng);
        let f = HalfNormal::fit(&xs).unwrap();
        assert!((f.sigma - 0.8).abs() < 0.03, "{f:?}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::new(1.2, 0.9).unwrap();
        assert!((d.icdf(0.5) - 1.2f64.exp()).abs() < 1e-8);
    }

    #[test]
    fn lognormal_fit_recovers_params() {
        let d = LogNormal::new(0.5, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let xs = sample_n(&d, 20_000, &mut rng);
        let f = LogNormal::fit(&xs).unwrap();
        assert!((f.mu - 0.5).abs() < 0.05, "{f:?}");
        assert!((f.sigma - 1.1).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn lognormal_zero_density_outside_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(0.0), f64::NEG_INFINITY);
    }
}
