//! Heavy-tailed distributions: [`Pareto`], [`Burr`] (type XII), [`Logistic`],
//! [`LogLogistic`], [`TLocationScale`].
//!
//! The paper's Table II fits the U30 inter-arrival data with a Burr
//! distribution; we follow the Matlab `burr` (Burr XII / Singh–Maddala)
//! parameterization: scale `α`, shapes `c` and `k`, CDF
//! `1 − (1 + (x/α)^c)^(−k)`.

use crate::distribution::{ContinuousDistribution, Support};
use crate::optim::nelder_mead;
use crate::special::{beta_inc, beta_inc_inv, ln_beta};

/// Pareto (type I) distribution with minimum x_m and tail index α.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale/minimum x_m > 0.
    pub xm: f64,
    /// Tail index α > 0.
    pub alpha: f64,
}

impl Pareto {
    /// Create a Pareto distribution; `None` unless both parameters > 0.
    pub fn new(xm: f64, alpha: f64) -> Option<Self> {
        (xm > 0.0 && alpha > 0.0 && xm.is_finite() && alpha.is_finite())
            .then_some(Self { xm, alpha })
    }

    /// Closed-form MLE: x_m = min, α = n / Σ ln(x/x_m).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let xm = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let s: f64 = data.iter().map(|&x| (x / xm).ln()).sum();
        if s <= 0.0 {
            return None;
        }
        Self::new(xm, data.len() as f64 / s)
    }
}

impl ContinuousDistribution for Pareto {
    fn name(&self) -> &'static str {
        "Pareto"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("xm", self.xm), ("alpha", self.alpha)]
    }
    fn support(&self) -> Support {
        Support {
            lo: self.xm,
            hi: f64::INFINITY,
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        self.xm / (1.0 - p).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.xm / (self.alpha - 1.0))
    }
    fn variance(&self) -> Option<f64> {
        (self.alpha > 2.0).then(|| {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        })
    }
}

/// Burr type XII (Singh–Maddala) distribution, Matlab parameterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burr {
    /// Scale α > 0.
    pub alpha: f64,
    /// First shape c > 0.
    pub c: f64,
    /// Second shape k > 0.
    pub k: f64,
}

impl Burr {
    /// Create a Burr XII distribution; `None` unless all parameters > 0.
    pub fn new(alpha: f64, c: f64, k: f64) -> Option<Self> {
        (alpha > 0.0 && c > 0.0 && k > 0.0 && alpha.is_finite() && c.is_finite() && k.is_finite())
            .then_some(Self { alpha, c, k })
    }

    /// MLE via Nelder–Mead over (ln α, ln c, ln k) from several starts.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 3 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = sorted[sorted.len() / 2].max(1e-12);
        let mut best: Option<(f64, Burr)> = None;
        for &(c0, k0) in &[(1.0f64, 1.0f64), (2.0, 0.5), (0.5, 2.0), (5.0, 0.2)] {
            let m = nelder_mead(
                |p| match Burr::new(p[0].exp(), p[1].exp(), p[2].exp()) {
                    Some(d) => -d.log_likelihood(data),
                    None => f64::INFINITY,
                },
                &[med.ln(), c0.ln(), k0.ln()],
                &[0.5, 0.3, 0.3],
                8000,
            );
            if let Some(d) = Burr::new(m.x[0].exp(), m.x[1].exp(), m.x[2].exp()) {
                if m.fx.is_finite() && best.as_ref().is_none_or(|(b, _)| m.fx < *b) {
                    best = Some((m.fx, d));
                }
            }
        }
        best.map(|(_, d)| d)
    }
}

impl ContinuousDistribution for Burr {
    fn name(&self) -> &'static str {
        "Burr"
    }
    fn param_count(&self) -> usize {
        3
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("alpha", self.alpha), ("c", self.c), ("k", self.k)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = x / self.alpha;
        let zc = z.powf(self.c);
        (self.k * self.c / self.alpha).ln() + (self.c - 1.0) * z.ln() - (self.k + 1.0) * zc.ln_1p()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let zc = (x / self.alpha).powf(self.c);
        1.0 - (-self.k * zc.ln_1p()).exp()
    }
    fn icdf(&self, p: f64) -> f64 {
        self.alpha * ((1.0 - p).powf(-1.0 / self.k) - 1.0).powf(1.0 / self.c)
    }
    fn mean(&self) -> Option<f64> {
        // E[X] = α k B(k − 1/c, 1 + 1/c) when ck > 1.
        (self.c * self.k > 1.0)
            .then(|| self.alpha * self.k * ln_beta(self.k - 1.0 / self.c, 1.0 + 1.0 / self.c).exp())
    }
}

/// Logistic distribution with location μ and scale s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Logistic {
    /// Location μ (also mean and median).
    pub mu: f64,
    /// Scale s > 0.
    pub s: f64,
}

impl Logistic {
    /// Create a logistic distribution; `None` if `s <= 0`.
    pub fn new(mu: f64, s: f64) -> Option<Self> {
        (s > 0.0 && mu.is_finite() && s.is_finite()).then_some(Self { mu, s })
    }

    /// MLE via Nelder–Mead from moments initialization.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let s0 = (var.sqrt() * 3.0f64.sqrt() / std::f64::consts::PI).max(1e-9);
        let m = nelder_mead(
            |p| match Logistic::new(p[0], p[1].exp()) {
                Some(d) => -d.log_likelihood(data),
                None => f64::INFINITY,
            },
            &[mean, s0.ln()],
            &[0.5 * s0, 0.2],
            4000,
        );
        Logistic::new(m.x[0], m.x[1].exp())
    }
}

impl ContinuousDistribution for Logistic {
    fn name(&self) -> &'static str {
        "Logistic"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("s", self.s)]
    }
    fn support(&self) -> Support {
        Support::REAL
    }
    fn pdf(&self, x: f64) -> f64 {
        let z = ((x - self.mu) / self.s).abs();
        let e = (-z).exp();
        e / (self.s * (1.0 + e).powi(2))
    }
    fn cdf(&self, x: f64) -> f64 {
        1.0 / (1.0 + (-(x - self.mu) / self.s).exp())
    }
    fn icdf(&self, p: f64) -> f64 {
        self.mu + self.s * (p / (1.0 - p)).ln()
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
    fn variance(&self) -> Option<f64> {
        let pi = std::f64::consts::PI;
        Some(self.s * self.s * pi * pi / 3.0)
    }
}

/// Log-logistic (Fisk) distribution: exp(Logistic(μ, s)). Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLogistic {
    /// Location of ln X.
    pub mu: f64,
    /// Scale of ln X, > 0.
    pub s: f64,
}

impl LogLogistic {
    /// Create a log-logistic distribution; `None` if `s <= 0`.
    pub fn new(mu: f64, s: f64) -> Option<Self> {
        (s > 0.0 && mu.is_finite() && s.is_finite()).then_some(Self { mu, s })
    }

    /// Fit by fitting a logistic to log-transformed data.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
        let l = Logistic::fit(&logs)?;
        Self::new(l.mu, l.s)
    }
}

impl ContinuousDistribution for LogLogistic {
    fn name(&self) -> &'static str {
        "LogLogistic"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("s", self.s)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let inner = Logistic {
            mu: self.mu,
            s: self.s,
        };
        inner.pdf(x.ln()) / x
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 / (1.0 + (-(x.ln() - self.mu) / self.s).exp())
    }
    fn icdf(&self, p: f64) -> f64 {
        (self.mu + self.s * (p / (1.0 - p)).ln()).exp()
    }
    fn mean(&self) -> Option<f64> {
        // Finite when s < 1: E[X] = e^μ · πs / sin(πs).
        (self.s < 1.0).then(|| {
            let pis = std::f64::consts::PI * self.s;
            self.mu.exp() * pis / pis.sin()
        })
    }
}

/// Student-t location-scale distribution (Matlab `tlocationscale`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TLocationScale {
    /// Location μ.
    pub mu: f64,
    /// Scale σ > 0.
    pub sigma: f64,
    /// Degrees of freedom ν > 0.
    pub nu: f64,
}

impl TLocationScale {
    /// Create a t location-scale distribution; `None` unless σ, ν > 0.
    pub fn new(mu: f64, sigma: f64, nu: f64) -> Option<Self> {
        (sigma > 0.0 && nu > 0.0 && mu.is_finite() && sigma.is_finite() && nu.is_finite())
            .then_some(Self { mu, sigma, nu })
    }

    /// MLE via Nelder–Mead; ν initialized at 5.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 3 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let s0 = var.sqrt().max(1e-9);
        let m = nelder_mead(
            |p| match TLocationScale::new(p[0], p[1].exp(), p[2].exp()) {
                Some(d) => -d.log_likelihood(data),
                None => f64::INFINITY,
            },
            &[mean, s0.ln(), 5.0f64.ln()],
            &[0.5 * s0, 0.2, 0.3],
            8000,
        );
        TLocationScale::new(m.x[0], m.x[1].exp(), m.x[2].exp())
    }
}

impl ContinuousDistribution for TLocationScale {
    fn name(&self) -> &'static str {
        "TLocationScale"
    }
    fn param_count(&self) -> usize {
        3
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("sigma", self.sigma), ("nu", self.nu)]
    }
    fn support(&self) -> Support {
        Support::REAL
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        let nu = self.nu;
        -ln_beta(0.5, nu / 2.0)
            - 0.5 * nu.ln()
            - self.sigma.ln()
            - (nu + 1.0) / 2.0 * (z * z / nu).ln_1p()
    }
    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        let nu = self.nu;
        let t = nu / (nu + z * z);
        let half_tail = 0.5 * beta_inc(nu / 2.0, 0.5, t);
        if z >= 0.0 {
            1.0 - half_tail
        } else {
            half_tail
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        let nu = self.nu;
        let (pp, sign) = if p < 0.5 { (p, -1.0) } else { (1.0 - p, 1.0) };
        let t = beta_inc_inv(nu / 2.0, 0.5, 2.0 * pp);
        let z = (nu * (1.0 - t) / t).sqrt();
        self.mu + self.sigma * sign * z
    }
    fn mean(&self) -> Option<f64> {
        (self.nu > 1.0).then_some(self.mu)
    }
    fn variance(&self) -> Option<f64> {
        (self.nu > 2.0).then(|| self.sigma * self.sigma * self.nu / (self.nu - 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_icdf_roundtrip() {
        let d = Pareto::new(2.0, 1.5).unwrap();
        for &p in &[0.01, 0.5, 0.99] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pareto_fit() {
        let d = Pareto::new(1.0, 2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let xs = sample_n(&d, 20_000, &mut rng);
        let f = Pareto::fit(&xs).unwrap();
        assert!((f.alpha - 2.5).abs() < 0.1, "{f:?}");
        assert!((f.xm - 1.0).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn burr_cdf_icdf_roundtrip_paper_params() {
        // Table II: U30 Burr(α=7.4e4, c=8.6e-4, k=0.08)-ish shapes are extreme;
        // validate the machinery with moderate params plus the paper's.
        for d in [
            Burr::new(1.0, 2.0, 3.0).unwrap(),
            Burr::new(7.4e4, 0.86, 0.08).unwrap(),
        ] {
            for &p in &[0.05, 0.5, 0.95] {
                let x = d.icdf(p);
                assert!((d.cdf(x) - p).abs() < 1e-9, "{d:?} p={p}");
            }
        }
    }

    #[test]
    fn burr_loglogistic_special_case() {
        // Burr with k = 1 equals log-logistic with e^μ = α, s = 1/c.
        let b = Burr::new(2.0, 3.0, 1.0).unwrap();
        let ll = LogLogistic::new(2.0f64.ln(), 1.0 / 3.0).unwrap();
        for &x in &[0.5, 1.0, 2.0, 8.0] {
            assert!((b.cdf(x) - ll.cdf(x)).abs() < 1e-10, "x={x}");
            assert!((b.pdf(x) - ll.pdf(x)).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn burr_fit_recovers() {
        let d = Burr::new(2.0, 3.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let xs = sample_n(&d, 8000, &mut rng);
        let f = Burr::fit(&xs).unwrap();
        // Burr parameters are weakly identified; check distributional closeness
        // at quantiles instead of raw parameter values.
        for &p in &[0.1, 0.5, 0.9] {
            let rel = (f.icdf(p) / d.icdf(p) - 1.0).abs();
            assert!(rel < 0.1, "p={p} rel={rel} {f:?}");
        }
    }

    #[test]
    fn logistic_symmetry() {
        let d = Logistic::new(1.0, 2.0).unwrap();
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(3.0) + d.cdf(-1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loglogistic_median() {
        let d = LogLogistic::new(1.5, 0.5).unwrap();
        assert!((d.icdf(0.5) - 1.5f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn tlocationscale_large_nu_approaches_normal() {
        let t = TLocationScale::new(0.0, 1.0, 1e6).unwrap();
        let n = crate::dist::normal::Normal::new(0.0, 1.0).unwrap();
        for &x in &[-2.0, 0.0, 1.5] {
            assert!((t.pdf(x) - n.pdf(x)).abs() < 1e-4, "x={x}");
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-4, "x={x}");
        }
    }

    #[test]
    fn tlocationscale_icdf_roundtrip() {
        let d = TLocationScale::new(2.0, 1.5, 4.0).unwrap();
        for &p in &[0.01, 0.3, 0.5, 0.8, 0.99] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn tlocationscale_fit() {
        let d = TLocationScale::new(1.0, 2.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = TLocationScale::fit(&xs).unwrap();
        assert!((f.mu - 1.0).abs() < 0.1, "{f:?}");
        assert!((f.sigma - 2.0).abs() < 0.15, "{f:?}");
    }
}
