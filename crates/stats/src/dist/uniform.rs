//! Continuous uniform distribution on `[a, b]`.

use crate::distribution::{ContinuousDistribution, Support};

/// Uniform distribution on the interval `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Lower bound.
    pub a: f64,
    /// Upper bound (> a).
    pub b: f64,
}

impl Uniform {
    /// Create a uniform distribution; `None` unless `a < b` and both finite.
    pub fn new(a: f64, b: f64) -> Option<Self> {
        (a < b && a.is_finite() && b.is_finite()).then_some(Self { a, b })
    }

    /// MLE: a = min, b = max (slightly widened to keep all samples interior).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let pad = 1e-12 * (hi - lo).abs().max(1.0);
        Self::new(lo - pad, hi + pad)
    }
}

impl ContinuousDistribution for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("a", self.a), ("b", self.b)]
    }
    fn support(&self) -> Support {
        Support {
            lo: self.a,
            hi: self.b,
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            1.0 / (self.b - self.a)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.a {
            0.0
        } else if x >= self.b {
            1.0
        } else {
            (x - self.a) / (self.b - self.a)
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        self.a + p * (self.b - self.a)
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.a + self.b))
    }
    fn variance(&self) -> Option<f64> {
        Some((self.b - self.a).powi(2) / 12.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let d = Uniform::new(-1.0, 3.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.25);
        assert_eq!(d.pdf(5.0), 0.0);
        assert_eq!(d.cdf(1.0), 0.5);
        assert_eq!(d.icdf(0.5), 1.0);
        assert_eq!(d.mean(), Some(1.0));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Uniform::new(1.0, 1.0).is_none());
        assert!(Uniform::new(2.0, 1.0).is_none());
    }

    #[test]
    fn fit_covers_data() {
        let data = [0.5, 0.9, 0.1, 0.7];
        let d = Uniform::fit(&data).unwrap();
        assert!(d.a <= 0.1 && d.b >= 0.9);
        for &x in &data {
            assert!(d.pdf(x) > 0.0);
        }
    }
}
