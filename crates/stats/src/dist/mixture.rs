//! Finite mixture distributions.
//!
//! Equation (1) of the paper defines the U65 job-arrival model as a
//! usage-weighted mixture of four per-phase GEV fits:
//! `PDF(x) = Σ_n (phase_usage_n / total_usage) · PDF_pn(x)`.
//! [`Mixture`] implements exactly that construction for arbitrary
//! components.

use crate::dist::AnyDist;
use crate::distribution::{icdf_numeric, ContinuousDistribution, Support};

/// A finite mixture of component distributions with non-negative weights.
///
/// Weights are normalized to sum to 1 at construction time.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<(f64, AnyDist)>,
}

impl Mixture {
    /// Build a mixture from `(weight, component)` pairs.
    ///
    /// Returns `None` if empty, any weight is negative/non-finite, or the
    /// total weight is zero.
    pub fn new(components: Vec<(f64, AnyDist)>) -> Option<Self> {
        if components.is_empty() {
            return None;
        }
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        if !total.is_finite() || total <= 0.0 || components.iter().any(|(w, _)| *w < 0.0) {
            return None;
        }
        Some(Self {
            components: components
                .into_iter()
                .map(|(w, d)| (w / total, d))
                .collect(),
        })
    }

    /// The normalized `(weight, component)` pairs.
    pub fn components(&self) -> &[(f64, AnyDist)] {
        &self.components
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl ContinuousDistribution for Mixture {
    fn name(&self) -> &'static str {
        "Mixture"
    }
    fn param_count(&self) -> usize {
        // Component parameters plus (len − 1) free weights.
        self.components
            .iter()
            .map(|(_, d)| d.param_count())
            .sum::<usize>()
            + self.components.len()
            - 1
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::new();
        for (w, d) in &self.components {
            out.push(("weight", *w));
            out.extend(d.params());
        }
        out
    }
    fn support(&self) -> Support {
        let lo = self
            .components
            .iter()
            .map(|(_, d)| d.support().lo)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .components
            .iter()
            .map(|(_, d)| d.support().hi)
            .fold(f64::NEG_INFINITY, f64::max);
        Support { lo, hi }
    }
    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pdf(x)).sum()
    }
    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.cdf(x)).sum()
    }
    fn icdf(&self, p: f64) -> f64 {
        icdf_numeric(self, p)
    }
    fn mean(&self) -> Option<f64> {
        let mut acc = 0.0;
        for (w, d) in &self.components {
            acc += w * d.mean()?;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::normal::Normal;

    fn two_normals() -> Mixture {
        Mixture::new(vec![
            (0.3, AnyDist::from(Normal::new(-2.0, 1.0).unwrap())),
            (0.7, AnyDist::from(Normal::new(3.0, 0.5).unwrap())),
        ])
        .unwrap()
    }

    #[test]
    fn weights_normalize() {
        let m = Mixture::new(vec![
            (2.0, AnyDist::from(Normal::new(0.0, 1.0).unwrap())),
            (6.0, AnyDist::from(Normal::new(1.0, 1.0).unwrap())),
        ])
        .unwrap();
        let ws: Vec<f64> = m.components().iter().map(|(w, _)| *w).collect();
        assert!((ws[0] - 0.25).abs() < 1e-12);
        assert!((ws[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let m = two_normals();
        let n1 = Normal::new(-2.0, 1.0).unwrap();
        let n2 = Normal::new(3.0, 0.5).unwrap();
        for &x in &[-3.0, 0.0, 2.0, 4.0] {
            let expected = 0.3 * n1.cdf(x) + 0.7 * n2.cdf(x);
            assert!((m.cdf(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn icdf_roundtrip() {
        let m = two_normals();
        for &p in &[0.05, 0.3, 0.5, 0.9] {
            let x = m.icdf(p);
            assert!((m.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn mean_is_weighted() {
        let m = two_normals();
        assert!((m.mean().unwrap() - (0.3 * -2.0 + 0.7 * 3.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(Mixture::new(vec![]).is_none());
        assert!(
            Mixture::new(vec![(-1.0, AnyDist::from(Normal::new(0.0, 1.0).unwrap()))]).is_none()
        );
        assert!(Mixture::new(vec![(0.0, AnyDist::from(Normal::new(0.0, 1.0).unwrap()))]).is_none());
    }
}
