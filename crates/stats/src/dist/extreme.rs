//! Extreme-value distributions: [`Gev`], [`Gumbel`], [`Weibull`].
//!
//! The paper's Table II fits most job inter-arrival data sets with the
//! Generalized Extreme Value (GEV) distribution, so the GEV implementation
//! follows the Matlab parameterization used there: shape `k`, scale `σ`,
//! location `μ`, with CDF `exp(−(1 + k·(x−μ)/σ)^(−1/k))`.

use crate::distribution::{ContinuousDistribution, Support};
use crate::optim::nelder_mead;
use crate::special::EULER_GAMMA;

/// Generalized Extreme Value distribution (Matlab `gev` parameterization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    /// Shape k (any finite real; k = 0 degenerates to Gumbel and is handled).
    pub k: f64,
    /// Scale σ > 0.
    pub sigma: f64,
    /// Location μ.
    pub mu: f64,
}

impl Gev {
    /// Create a GEV distribution; `None` if `sigma <= 0` or non-finite params.
    pub fn new(k: f64, sigma: f64, mu: f64) -> Option<Self> {
        (sigma > 0.0 && k.is_finite() && sigma.is_finite() && mu.is_finite()).then_some(Self {
            k,
            sigma,
            mu,
        })
    }

    /// Standardized variable t(x) = 1 + k (x − μ)/σ; support requires t > 0.
    #[inline]
    fn t(&self, x: f64) -> f64 {
        1.0 + self.k * (x - self.mu) / self.sigma
    }

    /// MLE via Nelder–Mead with a Gumbel-moments initialization.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 3 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let s0 = (var.sqrt() * 6.0f64.sqrt() / std::f64::consts::PI).max(1e-9);
        let m0 = mean - EULER_GAMMA * s0;
        // Try several shape starts; GEV likelihood surfaces are multimodal.
        let mut best: Option<(f64, Gev)> = None;
        for &k0 in &[-0.3, -0.1, 0.0, 0.1, 0.3] {
            let m = nelder_mead(
                |p| {
                    let (k, s, mu) = (p[0], p[1].exp(), p[2]);
                    match Gev::new(k, s, mu) {
                        Some(d) => -d.log_likelihood(data),
                        None => f64::INFINITY,
                    }
                },
                &[k0, s0.ln(), m0],
                &[0.1, 0.2, 0.5 * s0.max(1e-6)],
                6000,
            );
            if let Some(d) = Gev::new(m.x[0], m.x[1].exp(), m.x[2]) {
                let nll = m.fx;
                if nll.is_finite() && best.as_ref().is_none_or(|(b, _)| nll < *b) {
                    best = Some((nll, d));
                }
            }
        }
        best.map(|(_, d)| d)
    }
}

impl ContinuousDistribution for Gev {
    fn name(&self) -> &'static str {
        "GEV"
    }
    fn param_count(&self) -> usize {
        3
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("k", self.k), ("sigma", self.sigma), ("mu", self.mu)]
    }
    fn support(&self) -> Support {
        if self.k > 0.0 {
            Support {
                lo: self.mu - self.sigma / self.k,
                hi: f64::INFINITY,
            }
        } else if self.k < 0.0 {
            Support {
                lo: f64::NEG_INFINITY,
                hi: self.mu - self.sigma / self.k,
            }
        } else {
            Support::REAL
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if self.k.abs() < 1e-12 {
            // Gumbel limit.
            let z = (x - self.mu) / self.sigma;
            return -z - (-z).exp() - self.sigma.ln();
        }
        let t = self.t(x);
        if t <= 0.0 {
            return f64::NEG_INFINITY;
        }
        -(1.0 + 1.0 / self.k) * t.ln() - t.powf(-1.0 / self.k) - self.sigma.ln()
    }
    fn cdf(&self, x: f64) -> f64 {
        if self.k.abs() < 1e-12 {
            let z = (x - self.mu) / self.sigma;
            return (-(-z).exp()).exp();
        }
        let t = self.t(x);
        if t <= 0.0 {
            return if self.k > 0.0 { 0.0 } else { 1.0 };
        }
        (-t.powf(-1.0 / self.k)).exp()
    }
    fn icdf(&self, p: f64) -> f64 {
        if self.k.abs() < 1e-12 {
            return self.mu - self.sigma * (-p.ln()).ln();
        }
        self.mu + self.sigma * ((-p.ln()).powf(-self.k) - 1.0) / self.k
    }
    fn mean(&self) -> Option<f64> {
        if self.k.abs() < 1e-12 {
            return Some(self.mu + self.sigma * EULER_GAMMA);
        }
        if self.k >= 1.0 {
            return None; // infinite mean
        }
        let g1 = crate::special::gamma(1.0 - self.k);
        Some(self.mu + self.sigma * (g1 - 1.0) / self.k)
    }
    fn variance(&self) -> Option<f64> {
        if self.k.abs() < 1e-12 {
            let pi = std::f64::consts::PI;
            return Some(self.sigma * self.sigma * pi * pi / 6.0);
        }
        if self.k >= 0.5 {
            return None; // infinite variance
        }
        let g1 = crate::special::gamma(1.0 - self.k);
        let g2 = crate::special::gamma(1.0 - 2.0 * self.k);
        Some(self.sigma * self.sigma * (g2 - g1 * g1) / (self.k * self.k))
    }
}

/// Gumbel (type-I extreme value, maximum convention) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    /// Location μ.
    pub mu: f64,
    /// Scale β > 0.
    pub beta: f64,
}

impl Gumbel {
    /// Create a Gumbel distribution; `None` if `beta <= 0`.
    pub fn new(mu: f64, beta: f64) -> Option<Self> {
        (beta > 0.0 && mu.is_finite() && beta.is_finite()).then_some(Self { mu, beta })
    }

    /// MLE via Nelder–Mead from moments initialization.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let b0 = (var.sqrt() * 6.0f64.sqrt() / std::f64::consts::PI).max(1e-9);
        let m0 = mean - EULER_GAMMA * b0;
        let m = nelder_mead(
            |p| match Gumbel::new(p[0], p[1].exp()) {
                Some(d) => -d.log_likelihood(data),
                None => f64::INFINITY,
            },
            &[m0, b0.ln()],
            &[0.5 * b0.max(1e-6), 0.2],
            4000,
        );
        Gumbel::new(m.x[0], m.x[1].exp())
    }
}

impl ContinuousDistribution for Gumbel {
    fn name(&self) -> &'static str {
        "Gumbel"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("beta", self.beta)]
    }
    fn support(&self) -> Support {
        Support::REAL
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        -z - (-z).exp() - self.beta.ln()
    }
    fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }
    fn icdf(&self, p: f64) -> f64 {
        self.mu - self.beta * (-p.ln()).ln()
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu + self.beta * EULER_GAMMA)
    }
    fn variance(&self) -> Option<f64> {
        let pi = std::f64::consts::PI;
        Some(pi * pi / 6.0 * self.beta * self.beta)
    }
}

/// Weibull distribution with scale λ and shape k. Support x ≥ 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Scale λ > 0.
    pub lambda: f64,
    /// Shape k > 0.
    pub k: f64,
}

impl Weibull {
    /// Create a Weibull distribution; `None` unless both parameters > 0.
    pub fn new(lambda: f64, k: f64) -> Option<Self> {
        (lambda > 0.0 && k > 0.0 && lambda.is_finite() && k.is_finite())
            .then_some(Self { lambda, k })
    }

    /// MLE via Nelder–Mead; shape initialized from the CV heuristic
    /// `k ≈ CV^(−1.086)`, scale from mean / Γ(1 + 1/k).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cv = (var.sqrt() / mean).max(1e-6);
        let k0 = cv.powf(-1.086).clamp(0.05, 50.0);
        let l0 = mean / crate::special::gamma(1.0 + 1.0 / k0);
        let m = nelder_mead(
            |p| match Weibull::new(p[0].exp(), p[1].exp()) {
                Some(d) => -d.log_likelihood(data),
                None => f64::INFINITY,
            },
            &[l0.ln(), k0.ln()],
            &[0.2, 0.2],
            4000,
        );
        Weibull::new(m.x[0].exp(), m.x[1].exp())
    }
}

impl ContinuousDistribution for Weibull {
    fn name(&self) -> &'static str {
        "Weibull"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("lambda", self.lambda), ("k", self.k)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 || (x == 0.0 && self.k < 1.0) {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            return if self.k == 1.0 {
                -self.lambda.ln()
            } else {
                f64::NEG_INFINITY
            };
        }
        let z = x / self.lambda;
        self.k.ln() - self.lambda.ln() + (self.k - 1.0) * z.ln() - z.powf(self.k)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.lambda).powf(self.k)).exp_m1()
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        self.lambda * (-(-p).ln_1p()).powf(1.0 / self.k)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.lambda * crate::special::gamma(1.0 + 1.0 / self.k))
    }
    fn variance(&self) -> Option<f64> {
        let g1 = crate::special::gamma(1.0 + 1.0 / self.k);
        let g2 = crate::special::gamma(1.0 + 2.0 / self.k);
        Some(self.lambda * self.lambda * (g2 - g1 * g1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gev_zero_shape_matches_gumbel() {
        let g = Gev::new(0.0, 2.0, 1.0).unwrap();
        let gu = Gumbel::new(1.0, 2.0).unwrap();
        for &x in &[-3.0, 0.0, 1.0, 5.0] {
            assert!((g.pdf(x) - gu.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - gu.cdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn gev_icdf_roundtrip_negative_shape() {
        // Paper's U65 fits have k ≈ −0.3..−0.46.
        let d = Gev::new(-0.386, 19.5, 100.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = d.icdf(p);
            assert!((d.cdf(x) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn gev_support_bounded_above_for_negative_shape() {
        let d = Gev::new(-0.4, 10.0, 0.0).unwrap();
        let sup = d.support();
        assert!(sup.hi.is_finite());
        assert!((sup.hi - 25.0).abs() < 1e-9); // μ − σ/k = 0 + 10/0.4
        assert_eq!(d.cdf(sup.hi + 1.0), 1.0);
        assert_eq!(d.pdf(sup.hi + 1.0), 0.0);
    }

    #[test]
    fn gev_fit_recovers_params() {
        let d = Gev::new(-0.3, 20.0, 50.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let xs = sample_n(&d, 8000, &mut rng);
        let f = Gev::fit(&xs).unwrap();
        assert!((f.k + 0.3).abs() < 0.08, "{f:?}");
        assert!((f.sigma - 20.0).abs() < 1.5, "{f:?}");
        assert!((f.mu - 50.0).abs() < 1.5, "{f:?}");
    }

    #[test]
    fn gumbel_icdf_roundtrip() {
        let d = Gumbel::new(-2.0, 0.7).unwrap();
        for &p in &[0.001, 0.5, 0.999] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-11);
        }
    }

    #[test]
    fn gumbel_fit() {
        let d = Gumbel::new(3.0, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = Gumbel::fit(&xs).unwrap();
        assert!((f.mu - 3.0).abs() < 0.08, "{f:?}");
        assert!((f.beta - 1.2).abs() < 0.06, "{f:?}");
    }

    #[test]
    fn weibull_exponential_special_case() {
        // Weibull(λ, 1) == Exponential(1/λ)
        let w = Weibull::new(2.0, 1.0).unwrap();
        for &x in &[0.1, 1.0, 3.0] {
            let expected = 0.5 * (-x / 2.0f64).exp();
            assert!((w.pdf(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn weibull_fit_paper_duration_params() {
        // Table III: U30 duration Weibull(λ=5.49e4, k=0.637).
        let d = Weibull::new(5.49e4, 0.637).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = Weibull::fit(&xs).unwrap();
        assert!((f.k - 0.637).abs() < 0.03, "{f:?}");
        assert!((f.lambda / 5.49e4 - 1.0).abs() < 0.08, "{f:?}");
    }

    #[test]
    fn weibull_median() {
        let d = Weibull::new(1.0, 2.0).unwrap();
        assert!((d.icdf(0.5) - 2.0f64.ln().sqrt()).abs() < 1e-12);
    }
}
