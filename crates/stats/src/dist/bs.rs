//! Birnbaum–Saunders (fatigue-life) distribution.
//!
//! Table III of the paper fits the job durations of U65 and U_oth with
//! Birnbaum–Saunders distributions (`BS(β, γ)`), following the Matlab
//! parameterization: scale β (the median) and shape γ.

use crate::distribution::{ContinuousDistribution, Support};
use crate::optim::nelder_mead;
use crate::special::{std_normal_cdf, std_normal_pdf, std_normal_quantile};

/// Birnbaum–Saunders distribution with scale β and shape γ. Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirnbaumSaunders {
    /// Scale β > 0 (equals the distribution median).
    pub beta: f64,
    /// Shape γ > 0.
    pub gamma: f64,
}

impl BirnbaumSaunders {
    /// Create a BS distribution; `None` unless both parameters > 0.
    pub fn new(beta: f64, gamma: f64) -> Option<Self> {
        (beta > 0.0 && gamma > 0.0 && beta.is_finite() && gamma.is_finite())
            .then_some(Self { beta, gamma })
    }

    /// Standardizing transform ξ(x) = (√(x/β) − √(β/x)) / γ.
    #[inline]
    fn xi(&self, x: f64) -> f64 {
        ((x / self.beta).sqrt() - (self.beta / x).sqrt()) / self.gamma
    }

    /// Modified-moment initialization refined by Nelder–Mead MLE.
    ///
    /// Initialization: with arithmetic mean `s` and harmonic mean `r`,
    /// `β₀ = √(s·r)` and `γ₀ = √(2(√(s/r) − 1))`.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = data.len() as f64;
        let s = data.iter().sum::<f64>() / n;
        let r = n / data.iter().map(|&x| 1.0 / x).sum::<f64>();
        let beta0 = (s * r).sqrt();
        let gamma0 = (2.0 * ((s / r).sqrt() - 1.0)).max(1e-6).sqrt();
        let m = nelder_mead(
            |p| match BirnbaumSaunders::new(p[0].exp(), p[1].exp()) {
                Some(d) => -d.log_likelihood(data),
                None => f64::INFINITY,
            },
            &[beta0.ln(), gamma0.ln()],
            &[0.2, 0.2],
            5000,
        );
        BirnbaumSaunders::new(m.x[0].exp(), m.x[1].exp())
    }
}

impl ContinuousDistribution for BirnbaumSaunders {
    fn name(&self) -> &'static str {
        "BirnbaumSaunders"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("beta", self.beta), ("gamma", self.gamma)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // d/dx ξ(x) = (1/(2γ)) (1/√(xβ) + √β / x^{3/2})
        let dxi =
            (1.0 / (x * self.beta).sqrt() + self.beta.sqrt() / x.powf(1.5)) / (2.0 * self.gamma);
        std_normal_pdf(self.xi(x)) * dxi
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf(self.xi(x))
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        // Invert: ξ = Φ⁻¹(p); x = β (γξ/2 + √((γξ/2)² + 1))².
        let t = self.gamma * std_normal_quantile(p) / 2.0;
        self.beta * (t + (t * t + 1.0).sqrt()).powi(2)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.beta * (1.0 + self.gamma * self.gamma / 2.0))
    }
    fn variance(&self) -> Option<f64> {
        let g2 = self.gamma * self.gamma;
        Some(self.beta * self.beta * g2 * (1.0 + 5.0 * g2 / 4.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn median_equals_beta() {
        let d = BirnbaumSaunders::new(1.76e4, 3.53).unwrap(); // paper's U65 fit
        assert!((d.icdf(0.5) / 1.76e4 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn icdf_roundtrip() {
        let d = BirnbaumSaunders::new(2.0, 1.5).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn pdf_is_cdf_derivative_numerically() {
        let d = BirnbaumSaunders::new(3.0, 0.8).unwrap();
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            let h = 1e-6 * x;
            let num = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
            assert!(
                (d.pdf(x) - num).abs() < 1e-6 * (1.0 + num.abs()),
                "x={x}: {} vs {num}",
                d.pdf(x)
            );
        }
    }

    #[test]
    fn fit_recovers_params() {
        let d = BirnbaumSaunders::new(5.0, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = BirnbaumSaunders::fit(&xs).unwrap();
        assert!((f.beta - 5.0).abs() < 0.3, "{f:?}");
        assert!((f.gamma - 1.2).abs() < 0.08, "{f:?}");
    }

    #[test]
    fn fit_extreme_shape_like_paper() {
        // U_oth durations: BS(β=3.02e4, γ=7.91) — very heavy shape.
        let d = BirnbaumSaunders::new(3.02e4, 7.91).unwrap();
        let mut rng = StdRng::seed_from_u64(56);
        let xs = sample_n(&d, 8000, &mut rng);
        let f = BirnbaumSaunders::fit(&xs).unwrap();
        assert!((f.gamma / 7.91 - 1.0).abs() < 0.15, "{f:?}");
    }

    #[test]
    fn zero_outside_support() {
        let d = BirnbaumSaunders::new(1.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }
}
