//! Exponential-family positive distributions: [`Exponential`], [`Rayleigh`],
//! [`Gamma`], [`InverseGaussian`], [`Nakagami`].

use crate::distribution::{icdf_numeric, ContinuousDistribution, Support};
use crate::optim::nelder_mead;
use crate::special::{gamma_p, gamma_p_inv, ln_gamma, std_normal_cdf};

/// Exponential distribution with rate λ (mean 1/λ). Support x ≥ 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate λ > 0.
    pub lambda: f64,
}

impl Exponential {
    /// Create an exponential distribution; `None` if `lambda <= 0`.
    pub fn new(lambda: f64) -> Option<Self> {
        (lambda > 0.0 && lambda.is_finite()).then_some(Self { lambda })
    }

    /// MLE: λ = 1/mean. Requires non-negative data with positive mean.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|&x| x < 0.0) {
            return None;
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        (mean > 0.0).then(|| Self { lambda: 1.0 / mean })
    }
}

impl ContinuousDistribution for Exponential {
    fn name(&self) -> &'static str {
        "Exponential"
    }
    fn param_count(&self) -> usize {
        1
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("lambda", self.lambda)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.lambda.ln() - self.lambda * x
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.lambda * x).exp_m1()
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        -(-p).ln_1p() / self.lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.lambda * self.lambda))
    }
}

/// Rayleigh distribution with scale σ. Support x ≥ 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rayleigh {
    /// Scale σ > 0.
    pub sigma: f64,
}

impl Rayleigh {
    /// Create a Rayleigh distribution; `None` if `sigma <= 0`.
    pub fn new(sigma: f64) -> Option<Self> {
        (sigma > 0.0 && sigma.is_finite()).then_some(Self { sigma })
    }

    /// MLE: σ² = Σx²/(2n).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.is_empty() || data.iter().any(|&x| x < 0.0) {
            return None;
        }
        let s2 = data.iter().map(|x| x * x).sum::<f64>() / (2.0 * data.len() as f64);
        Self::new(s2.sqrt())
    }
}

impl ContinuousDistribution for Rayleigh {
    fn name(&self) -> &'static str {
        "Rayleigh"
    }
    fn param_count(&self) -> usize {
        1
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("sigma", self.sigma)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let s2 = self.sigma * self.sigma;
        x / s2 * (-x * x / (2.0 * s2)).exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-x * x / (2.0 * self.sigma * self.sigma)).exp_m1()
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        self.sigma * (-2.0 * (-p).ln_1p()).sqrt()
    }
    fn mean(&self) -> Option<f64> {
        Some(self.sigma * (std::f64::consts::PI / 2.0).sqrt())
    }
    fn variance(&self) -> Option<f64> {
        Some((2.0 - std::f64::consts::PI / 2.0) * self.sigma * self.sigma)
    }
}

/// Gamma distribution with shape k and scale θ. Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape k > 0.
    pub shape: f64,
    /// Scale θ > 0.
    pub scale: f64,
}

impl Gamma {
    /// Create a gamma distribution; `None` unless both parameters are > 0.
    pub fn new(shape: f64, scale: f64) -> Option<Self> {
        (shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite())
            .then_some(Self { shape, scale })
    }

    /// MLE via Nelder–Mead, initialized from method-of-moments.
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        if var <= 0.0 {
            return None;
        }
        let k0 = (mean * mean / var).max(1e-3);
        let th0 = var / mean;
        let m = nelder_mead(
            |p| {
                let (k, th) = (p[0].exp(), p[1].exp());
                match Gamma::new(k, th) {
                    Some(d) => -d.log_likelihood(data),
                    None => f64::INFINITY,
                }
            },
            &[k0.ln(), th0.ln()],
            &[0.2, 0.2],
            4000,
        );
        Gamma::new(m.x[0].exp(), m.x[1].exp())
    }
}

impl ContinuousDistribution for Gamma {
    fn name(&self) -> &'static str {
        "Gamma"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("shape", self.shape), ("scale", self.scale)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (k, th) = (self.shape, self.scale);
        (k - 1.0) * x.ln() - x / th - ln_gamma(k) - k * th.ln()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        gamma_p_inv(self.shape, p) * self.scale
    }
    fn mean(&self) -> Option<f64> {
        Some(self.shape * self.scale)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.shape * self.scale * self.scale)
    }
}

/// Inverse Gaussian (Wald) distribution with mean μ and shape λ. Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverseGaussian {
    /// Mean μ > 0.
    pub mu: f64,
    /// Shape λ > 0.
    pub lambda: f64,
}

impl InverseGaussian {
    /// Create an inverse-Gaussian distribution; `None` unless μ, λ > 0.
    pub fn new(mu: f64, lambda: f64) -> Option<Self> {
        (mu > 0.0 && lambda > 0.0 && mu.is_finite() && lambda.is_finite())
            .then_some(Self { mu, lambda })
    }

    /// Closed-form MLE: μ = mean, 1/λ = mean(1/x − 1/μ).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = data.len() as f64;
        let mu = data.iter().sum::<f64>() / n;
        let inv_lambda = data.iter().map(|&x| 1.0 / x - 1.0 / mu).sum::<f64>() / n;
        if inv_lambda <= 0.0 {
            return None;
        }
        Self::new(mu, 1.0 / inv_lambda)
    }
}

impl ContinuousDistribution for InverseGaussian {
    fn name(&self) -> &'static str {
        "InverseGaussian"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("mu", self.mu), ("lambda", self.lambda)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (mu, l) = (self.mu, self.lambda);
        0.5 * (l / (2.0 * std::f64::consts::PI * x.powi(3))).ln()
            - l * (x - mu).powi(2) / (2.0 * mu * mu * x)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (mu, l) = (self.mu, self.lambda);
        let s = (l / x).sqrt();
        let a = std_normal_cdf(s * (x / mu - 1.0));
        let b = (2.0 * l / mu).exp() * std_normal_cdf(-s * (x / mu + 1.0));
        (a + b).clamp(0.0, 1.0)
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
    fn variance(&self) -> Option<f64> {
        Some(self.mu.powi(3) / self.lambda)
    }
}

/// Nakagami distribution with shape m ≥ 0.5 and spread Ω. Support x > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nakagami {
    /// Shape m ≥ 0.5.
    pub m: f64,
    /// Spread Ω > 0 (mean of x²).
    pub omega: f64,
}

impl Nakagami {
    /// Create a Nakagami distribution; `None` unless m ≥ 0.5 and Ω > 0.
    pub fn new(m: f64, omega: f64) -> Option<Self> {
        (m >= 0.5 && omega > 0.0 && m.is_finite() && omega.is_finite()).then_some(Self { m, omega })
    }

    /// Inverse-normalized-variance estimator: Ω = E\[x²\], m = Ω²/Var(x²).
    pub fn fit(data: &[f64]) -> Option<Self> {
        if data.len() < 2 || data.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = data.len() as f64;
        let x2: Vec<f64> = data.iter().map(|x| x * x).collect();
        let omega = x2.iter().sum::<f64>() / n;
        let var2 = x2.iter().map(|v| (v - omega).powi(2)).sum::<f64>() / n;
        if var2 <= 0.0 {
            return None;
        }
        Self::new((omega * omega / var2).max(0.5), omega)
    }
}

impl ContinuousDistribution for Nakagami {
    fn name(&self) -> &'static str {
        "Nakagami"
    }
    fn param_count(&self) -> usize {
        2
    }
    fn params(&self) -> Vec<(&'static str, f64)> {
        vec![("m", self.m), ("omega", self.omega)]
    }
    fn support(&self) -> Support {
        Support::POSITIVE
    }
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (m, w) = (self.m, self.omega);
        (2.0f64).ln() + m * (m / w).ln() - ln_gamma(m) + (2.0 * m - 1.0) * x.ln() - m * x * x / w
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.m, self.m * x * x / self.omega)
        }
    }
    fn icdf(&self, p: f64) -> f64 {
        (gamma_p_inv(self.m, p) * self.omega / self.m).sqrt()
    }
    fn mean(&self) -> Option<f64> {
        let m = self.m;
        Some((ln_gamma(m + 0.5) - ln_gamma(m)).exp() * (self.omega / m).sqrt())
    }
    fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(self.omega - mean * mean)
    }
}

/// Expose the generic numeric ICDF for distributions lacking a closed form.
impl InverseGaussian {
    /// Quantile by numeric inversion of the closed-form CDF.
    pub fn quantile(&self, p: f64) -> f64 {
        icdf_numeric(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_n;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_icdf_roundtrip() {
        let d = Exponential::new(0.37).unwrap();
        for &p in &[0.01, 0.5, 0.99] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_fit() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let xs = sample_n(&d, 30_000, &mut rng);
        let f = Exponential::fit(&xs).unwrap();
        assert!((f.lambda - 2.0).abs() < 0.05, "{f:?}");
    }

    #[test]
    fn rayleigh_median() {
        // median = σ√(2 ln 2)
        let d = Rayleigh::new(3.0).unwrap();
        assert!((d.icdf(0.5) - 3.0 * (2.0 * 2.0f64.ln()).sqrt()).abs() < 1e-10);
    }

    #[test]
    fn gamma_exponential_special_case() {
        // Gamma(1, θ) == Exponential(1/θ)
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 4.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_fit_recovers() {
        let d = Gamma::new(3.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = Gamma::fit(&xs).unwrap();
        assert!((f.shape - 3.0).abs() < 0.25, "{f:?}");
        assert!((f.scale - 1.5).abs() < 0.15, "{f:?}");
    }

    #[test]
    fn inverse_gaussian_cdf_at_mean_below_one() {
        let d = InverseGaussian::new(2.0, 4.0).unwrap();
        let c = d.cdf(2.0);
        assert!(c > 0.4 && c < 0.8, "{c}");
        // CDF monotone
        assert!(d.cdf(1.0) < d.cdf(2.0));
        assert!(d.cdf(2.0) < d.cdf(5.0));
    }

    #[test]
    fn inverse_gaussian_fit() {
        let d = InverseGaussian::new(1.5, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let xs = sample_n(&d, 10_000, &mut rng);
        let f = InverseGaussian::fit(&xs).unwrap();
        assert!((f.mu - 1.5).abs() < 0.1, "{f:?}");
        assert!((f.lambda - 3.0).abs() < 0.4, "{f:?}");
    }

    #[test]
    fn nakagami_half_is_halfnormal_shape() {
        // m = 0.5 reduces to half-normal with σ² = Ω.
        let d = Nakagami::new(0.5, 1.0).unwrap();
        let hn = crate::dist::normal::HalfNormal::new(1.0).unwrap();
        for &x in &[0.2, 1.0, 2.0] {
            assert!((d.pdf(x) - hn.pdf(x)).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn nakagami_icdf_roundtrip() {
        let d = Nakagami::new(2.0, 3.0).unwrap();
        for &p in &[0.05, 0.5, 0.95] {
            assert!((d.cdf(d.icdf(p)) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn nakagami_fit() {
        let d = Nakagami::new(1.8, 2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let xs = sample_n(&d, 20_000, &mut rng);
        let f = Nakagami::fit(&xs).unwrap();
        assert!((f.m - 1.8).abs() < 0.2, "{f:?}");
        assert!((f.omega - 2.5).abs() < 0.1, "{f:?}");
    }
}
