//! Fixed-width histograms (the paper's Figures 4 and 5 bin job arrivals with
//! a bin size of one day; the USS service produces per-user usage histograms
//! over configurable intervals).

/// A fixed-bin-width histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or at/above `hi`.
    outliers: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
            total: 0,
        }
    }

    /// Build a histogram from data with the given bin count, range spanning
    /// the data (empty data gets a unit range).
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo.is_finite() && hi.is_finite() && lo < hi {
            (lo, hi + (hi - lo) * 1e-9)
        } else if lo.is_finite() {
            (lo, lo + 1.0)
        } else {
            (0.0, 1.0)
        };
        let mut h = Self::new(lo, hi, bins);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / w) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Record a weighted observation by adding `w` to the bin count
    /// (weights are rounded into the u64 counter; use density() for ratios).
    pub fn add_count(&mut self, x: f64, count: u64) {
        for _ in 0..count {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Total observations added (including outliers).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Probability-density estimate per bin: count / (total · width), so the
    /// histogram integrates to (1 − outlier fraction).
    pub fn density(&self) -> Vec<f64> {
        let norm = self.total.max(1) as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Fraction of in-range observations per bin.
    pub fn fractions(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(1.5);
        h.add(1.7);
        h.add(9.99);
        assert_eq!(h.counts(), &[1, 2, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn outliers_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_data(&data, 20);
        let integral: f64 = h.density().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-9, "{integral}");
    }

    #[test]
    fn from_data_spans_range() {
        let data = [3.0, 7.0, 5.0];
        let h = Histogram::from_data(&data, 2);
        assert_eq!(h.outliers(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }
}
