//! A small, dependency-free Nelder–Mead simplex minimizer used for
//! maximum-likelihood fitting where no closed-form estimator exists.

/// Result of a Nelder–Mead minimization.
#[derive(Debug, Clone)]
pub struct Minimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations performed.
    pub evals: usize,
    /// Whether the simplex contracted below tolerance before the eval budget.
    pub converged: bool,
}

/// Minimize `f` starting from `x0` using the Nelder–Mead simplex method.
///
/// `scale` sets the initial simplex edge length per dimension (a reasonable
/// default is ~10% of the parameter magnitude). Non-finite objective values
/// are treated as +inf, so callers can encode hard constraints by returning
/// `f64::INFINITY` outside the feasible region.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], scale: &[f64], max_evals: usize) -> Minimum
where
    F: FnMut(&[f64]) -> f64,
{
    assert_eq!(x0.len(), scale.len());
    let n = x0.len();
    assert!(n >= 1, "need at least one dimension");

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Build initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let s = if scale[i] != 0.0 { scale[i] } else { 0.1 };
        v[i] += s;
        simplex.push(v);
    }
    let mut fvals: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    // Standard coefficients.
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut converged = false;
    while evals < max_evals {
        // Order vertices by objective value.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| fvals[a].partial_cmp(&fvals[b]).unwrap());
        let best = idx[0];
        let worst = idx[n];
        let second_worst = idx[n - 1];

        // Convergence: small spread of objective values and simplex size.
        let spread = fvals[worst] - fvals[best];
        let size: f64 = (0..n)
            .map(|d| (simplex[worst][d] - simplex[best][d]).abs())
            .fold(0.0, f64::max);
        if spread.abs() < 1e-12 * (1.0 + fvals[best].abs()) && size < 1e-10 {
            converged = true;
            break;
        }

        // Centroid of all but worst.
        let mut centroid = vec![0.0; n];
        for (i, v) in simplex.iter().enumerate() {
            if i != worst {
                for d in 0..n {
                    centroid[d] += v[d];
                }
            }
        }
        for c in centroid.iter_mut() {
            *c /= n as f64;
        }

        let point = |coef: f64| -> Vec<f64> {
            (0..n)
                .map(|d| centroid[d] + coef * (centroid[d] - simplex[worst][d]))
                .collect()
        };

        // Reflection.
        let xr = point(ALPHA);
        let fr = eval(&xr, &mut evals);
        if fr < fvals[best] {
            // Expansion.
            let xe = point(GAMMA);
            let fe = eval(&xe, &mut evals);
            if fe < fr {
                simplex[worst] = xe;
                fvals[worst] = fe;
            } else {
                simplex[worst] = xr;
                fvals[worst] = fr;
            }
        } else if fr < fvals[second_worst] {
            simplex[worst] = xr;
            fvals[worst] = fr;
        } else {
            // Contraction (outside if reflected point improved on worst).
            let (xc, fc) = if fr < fvals[worst] {
                let xc = point(ALPHA * RHO);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            } else {
                let xc = point(-RHO);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            };
            if fc < fvals[worst].min(fr) {
                simplex[worst] = xc;
                fvals[worst] = fc;
            } else {
                // Shrink toward best.
                let best_v = simplex[best].clone();
                for i in 0..=n {
                    if i == best {
                        continue;
                    }
                    for d in 0..n {
                        simplex[i][d] = best_v[d] + SIGMA * (simplex[i][d] - best_v[d]);
                    }
                    fvals[i] = eval(&simplex[i].clone(), &mut evals);
                }
            }
        }
    }

    let mut best_i = 0;
    for i in 1..=n {
        if fvals[i] < fvals[best_i] {
            best_i = i;
        }
    }
    Minimum {
        x: simplex[best_i].clone(),
        fx: fvals[best_i],
        evals,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let m = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.5).powi(2),
            &[0.0, 0.0],
            &[0.5, 0.5],
            2000,
        );
        assert!((m.x[0] - 3.0).abs() < 1e-5, "{:?}", m);
        assert!((m.x[1] + 1.5).abs() < 1e-5, "{:?}", m);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let m = nelder_mead(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            &[0.1, 0.1],
            20_000,
        );
        assert!((m.x[0] - 1.0).abs() < 1e-3, "{:?}", m);
        assert!((m.x[1] - 1.0).abs() < 1e-3, "{:?}", m);
    }

    #[test]
    fn respects_infinite_barrier() {
        // Constrain x > 0 via +inf barrier; minimum of (x-(-2))^2 on x>0 is x→0.
        let m = nelder_mead(
            |x| {
                if x[0] <= 0.0 {
                    f64::INFINITY
                } else {
                    (x[0] + 2.0).powi(2)
                }
            },
            &[1.0],
            &[0.3],
            5000,
        );
        assert!(m.x[0] > 0.0);
        assert!(m.x[0] < 1e-3, "{:?}", m);
    }

    #[test]
    fn one_dimensional() {
        let m = nelder_mead(|x| (x[0] - 7.0).powi(2) + 2.0, &[0.0], &[1.0], 2000);
        assert!((m.x[0] - 7.0).abs() < 1e-5);
        assert!((m.fx - 2.0).abs() < 1e-9);
    }
}
