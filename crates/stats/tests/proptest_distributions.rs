//! Property-based tests of the distribution zoo: CDF monotonicity, PDF
//! non-negativity, ICDF round-trips, and sampling bounds — for every family
//! and randomized parameters.

use aequus_stats::dist::*;
use aequus_stats::{ContinuousDistribution, RangeRescaled};
use proptest::prelude::*;

/// Check the universal distribution laws on one instance.
fn check_laws<D: ContinuousDistribution>(d: &D, probe_points: &[f64]) {
    let sup = d.support();
    let mut prev_cdf = 0.0f64;
    let mut prev_x = f64::NEG_INFINITY;
    for &x in probe_points {
        let pdf = d.pdf(x);
        let cdf = d.cdf(x);
        prop_assert2(pdf >= 0.0, &format!("{}: pdf({x}) = {pdf} < 0", d.name()));
        prop_assert2(
            (0.0..=1.0 + 1e-9).contains(&cdf),
            &format!("{}: cdf({x}) = {cdf} outside [0,1]", d.name()),
        );
        if x > prev_x {
            prop_assert2(
                cdf >= prev_cdf - 1e-9,
                &format!("{}: cdf not monotone at {x}", d.name()),
            );
        }
        if !sup.contains(x) {
            prop_assert2(
                pdf == 0.0,
                &format!("{}: pdf({x}) = {pdf} outside support", d.name()),
            );
        }
        prev_cdf = cdf;
        prev_x = x;
    }
}

/// Plain panic helper so `check_laws` works from both proptest closures and
/// ordinary tests.
fn prop_assert2(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

fn icdf_roundtrip<D: ContinuousDistribution>(d: &D, ps: &[f64], tol: f64) {
    for &p in ps {
        let x = d.icdf(p);
        let back = d.cdf(x);
        assert!(
            (back - p).abs() < tol,
            "{}: cdf(icdf({p})) = {back}",
            d.name()
        );
    }
}

const PROBE_PS: [f64; 7] = [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999];

fn probes_for<D: ContinuousDistribution>(d: &D) -> Vec<f64> {
    // Probe quantile locations plus points just outside the support.
    let mut xs: Vec<f64> = PROBE_PS.iter().map(|&p| d.icdf(p)).collect();
    let sup = d.support();
    if sup.lo.is_finite() {
        xs.insert(0, sup.lo - 1.0);
    }
    if sup.hi.is_finite() {
        xs.push(sup.hi + 1.0);
    }
    xs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_laws(mu in -100.0..100.0f64, sigma in 0.01..50.0f64) {
        let d = Normal::new(mu, sigma).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn lognormal_laws(mu in -3.0..5.0f64, sigma in 0.05..3.0f64) {
        let d = LogNormal::new(mu, sigma).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn exponential_laws(lambda in 0.001..100.0f64) {
        let d = Exponential::new(lambda).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn gamma_laws(shape in 0.1..20.0f64, scale in 0.01..100.0f64) {
        let d = Gamma::new(shape, scale).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-6);
    }

    #[test]
    fn weibull_laws(lambda in 0.1..1e5f64, k in 0.2..8.0f64) {
        let d = Weibull::new(lambda, k).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn gev_laws(k in -0.9..0.9f64, sigma in 0.1..100.0f64, mu in -100.0..100.0f64) {
        let d = Gev::new(k, sigma, mu).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn gumbel_laws(mu in -50.0..50.0f64, beta in 0.05..20.0f64) {
        let d = Gumbel::new(mu, beta).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn burr_laws(alpha in 0.1..1e6f64, c in 0.2..15.0f64, k in 0.02..5.0f64) {
        let d = Burr::new(alpha, c, k).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn birnbaum_saunders_laws(beta in 0.1..1e6f64, gamma in 0.1..10.0f64) {
        let d = BirnbaumSaunders::new(beta, gamma).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn pareto_laws(xm in 0.01..1e4f64, alpha in 0.1..10.0f64) {
        let d = Pareto::new(xm, alpha).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn logistic_laws(mu in -100.0..100.0f64, s in 0.01..50.0f64) {
        let d = Logistic::new(mu, s).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn loglogistic_laws(mu in -3.0..6.0f64, s in 0.05..2.0f64) {
        let d = LogLogistic::new(mu, s).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn tlocationscale_laws(mu in -50.0..50.0f64, sigma in 0.05..20.0f64, nu in 0.5..50.0f64) {
        let d = TLocationScale::new(mu, sigma, nu).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-6);
    }

    #[test]
    fn rayleigh_laws(sigma in 0.01..100.0f64) {
        let d = Rayleigh::new(sigma).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-9);
    }

    #[test]
    fn halfnormal_laws(sigma in 0.01..100.0f64) {
        let d = HalfNormal::new(sigma).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-8);
    }

    #[test]
    fn nakagami_laws(m in 0.5..20.0f64, omega in 0.01..1e4f64) {
        let d = Nakagami::new(m, omega).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-6);
    }

    #[test]
    fn inverse_gaussian_laws(mu in 0.05..100.0f64, lambda in 0.05..100.0f64) {
        let d = InverseGaussian::new(mu, lambda).unwrap();
        check_laws(&d, &probes_for(&d));
        // Numeric ICDF: slightly looser tolerance.
        icdf_roundtrip(&d, &PROBE_PS, 1e-6);
    }

    #[test]
    fn uniform_laws(a in -100.0..100.0f64, w in 0.01..200.0f64) {
        let d = Uniform::new(a, a + w).unwrap();
        check_laws(&d, &probes_for(&d));
        icdf_roundtrip(&d, &PROBE_PS, 1e-12);
    }

    #[test]
    fn mixture_laws(
        mu1 in -50.0..0.0f64,
        mu2 in 0.0..50.0f64,
        s in 0.1..10.0f64,
        w in 0.05..0.95f64,
    ) {
        let m = Mixture::new(vec![
            (w, AnyDist::from(Normal::new(mu1, s).unwrap())),
            (1.0 - w, AnyDist::from(Normal::new(mu2, s).unwrap())),
        ])
        .unwrap();
        check_laws(&m, &probes_for(&m));
        icdf_roundtrip(&m, &[0.05, 0.5, 0.95], 1e-6);
    }

    #[test]
    fn range_rescaled_always_in_bounds(
        k in -0.5..0.5f64,
        sigma in 1.0..100.0f64,
        u in 0.0..1.0f64,
        lo_frac in 0.01..0.4f64,
        hi_frac in 0.6..0.99f64,
    ) {
        let d = Gev::new(k, sigma, 0.0).unwrap();
        let r = RangeRescaled::new(d, lo_frac, hi_frac).unwrap();
        let (x_lo, x_hi) = r.x_range();
        let x = r.transform(u);
        prop_assert!(x >= x_lo - 1e-6 * (1.0 + x_lo.abs()), "{x} < {x_lo}");
        prop_assert!(x <= x_hi + 1e-6 * (1.0 + x_hi.abs()), "{x} > {x_hi}");
    }

    #[test]
    fn sampling_respects_support(k in -0.8..0.8f64, sigma in 0.1..50.0f64, seed in 0u64..1000) {
        use rand::SeedableRng;
        let d = Gev::new(k, sigma, 10.0).unwrap();
        let sup = d.support();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for x in aequus_stats::sample_n(&d, 64, &mut rng) {
            prop_assert!(sup.contains(x) || (x - sup.lo).abs() < 1e-9 || (x - sup.hi).abs() < 1e-9,
                "sample {x} outside support [{}, {}]", sup.lo, sup.hi);
        }
    }
}
