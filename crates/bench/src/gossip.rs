//! The scale-out gossip sweep: convergence time vs bytes-on-wire trade-off
//! curves across the overlay topologies (`FullMesh`, `Tree`, `Hub`) and the
//! two wire encodings (`Dense`, `Delta`).
//!
//! Every point runs the same bounded workload on the same seed, so the
//! *views* are directly comparable: the defining invariant is that every
//! overlay/encoding combination ends with per-user usage views within 1e-9
//! of the full-mesh run's at every site — topology and codec change how the
//! bytes move, never what the grid believes. The bytes and convergence
//! numbers are the trade-off: hierarchical overlays cut the O(sites²) link
//! count (and per-hop aggregation dedups the payloads) at the price of
//! multi-hop propagation latency.

use crate::sweep::{cycle_trace, parallel_sweep, synthetic_users, ScenarioBuilder};
use aequus_core::codec::Encoding;
use aequus_services::OverlayTopology;
use aequus_sim::{GridSimulation, SimResult};

/// Shape of the gossip trade-off sweep.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Policy leaves (synthetic equal-share users; the trace cycles through
    /// them, so `min(users, jobs)` of them are active).
    pub users: usize,
    /// Sites in the fleet.
    pub sites: usize,
    /// Hosts per site.
    pub nodes_per_site: u32,
    /// Jobs submitted over the first [`SUBMIT_WINDOW_S`] seconds — sized
    /// well under capacity so the workload quiesces and the drain tail
    /// measures pure gossip convergence.
    pub jobs: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Shard-worker threads (results are thread-count independent).
    pub threads: usize,
}

/// Jobs submit inside this window; the rest of [`HORIZON_S`] is drain.
pub const SUBMIT_WINDOW_S: f64 = 600.0;

/// Simulated horizon of every sweep point.
pub const HORIZON_S: f64 = 1800.0;

impl GossipConfig {
    /// The headline shape: 100k users over 32 sites (1024 cores), the
    /// ROADMAP's first waypoint past the paper's 7-machine test bed. Job
    /// count keeps offered load near 70% of capacity so the grid quiesces
    /// with ≥600 s of gossip-only drain.
    pub fn full() -> Self {
        Self {
            users: 100_000,
            sites: 32,
            nodes_per_site: 32,
            jobs: 3_200,
            seed: 42,
            threads: 1,
        }
    }

    /// CI-sized smoke shape: small enough for the gate on any machine, big
    /// enough that Tree and Hub have real interior structure (8 sites:
    /// fanout-4 tree with two interior nodes, 4 meshed hubs).
    pub fn smoke() -> Self {
        Self {
            users: 2_000,
            sites: 8,
            nodes_per_site: 8,
            jobs: 200,
            seed: 42,
            threads: 1,
        }
    }

    /// Distinct users the cycling trace actually activates.
    pub fn active_users(&self) -> usize {
        self.users.min(self.jobs).max(1)
    }
}

/// The overlay topologies every sweep measures, full mesh first (it is the
/// baseline the others are compared against).
pub const OVERLAYS: [OverlayTopology; 3] = [
    OverlayTopology::FullMesh,
    OverlayTopology::Tree { fanout: 4 },
    OverlayTopology::Hub { hubs: 4 },
];

/// One measured point of the trade-off surface.
#[derive(Debug, Clone)]
pub struct GossipPoint {
    /// Overlay topology of this run.
    pub overlay: OverlayTopology,
    /// Wire encoding of this run.
    pub encoding: Encoding,
    /// Total codec-encoded bytes put on the wire.
    pub gossip_bytes: u64,
    /// [`gossip_bytes`](Self::gossip_bytes) per active user.
    pub bytes_per_user: f64,
    /// First time the cross-site view divergence fell (and stayed) ≤ 1e-6.
    pub convergence_s: Option<f64>,
    /// Worst per-user absolute difference of any site's final view from the
    /// full-mesh baseline's (same encoding-independent views).
    pub divergence_vs_mesh: f64,
    /// Jobs completed (identical across points, or the comparison is void).
    pub completed: u64,
}

/// The sweep outcome: one point per overlay × encoding, row-major in
/// [`OVERLAYS`] then `[Dense, Delta]` order.
#[derive(Debug, Clone)]
pub struct GossipSweep {
    /// Measured points.
    pub points: Vec<GossipPoint>,
}

impl GossipSweep {
    /// The point for a given overlay/encoding combination.
    pub fn point(&self, overlay: OverlayTopology, encoding: Encoding) -> Option<&GossipPoint> {
        self.points
            .iter()
            .find(|p| p.overlay == overlay && p.encoding == encoding)
    }

    /// Full-mesh bytes ratio Dense / Delta — the codec's compression factor
    /// with the topology held fixed.
    pub fn dense_over_delta(&self) -> f64 {
        let dense = self.point(OverlayTopology::FullMesh, Encoding::Dense);
        let delta = self.point(OverlayTopology::FullMesh, Encoding::Delta);
        match (dense, delta) {
            (Some(d), Some(v)) if v.gossip_bytes > 0 => {
                d.gossip_bytes as f64 / v.gossip_bytes as f64
            }
            _ => 0.0,
        }
    }

    /// Worst view divergence from the full-mesh baseline across all points.
    pub fn worst_divergence(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.divergence_vs_mesh)
            .fold(0.0, f64::max)
    }

    /// Worst (latest) convergence time across points, `None` if any point
    /// never converged.
    pub fn worst_convergence_s(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.convergence_s)
            .try_fold(0.0f64, |acc, c| c.map(|c| acc.max(c)))
    }
}

/// Worst per-user absolute difference between two runs' final site views.
fn view_gap(a: &SimResult, b: &SimResult) -> f64 {
    let mut worst = 0.0f64;
    for (ga, gb) in a.site_usage_views.iter().zip(&b.site_usage_views) {
        for user in ga.keys().chain(gb.keys()) {
            let x = ga.get(user).copied().unwrap_or(0.0);
            let y = gb.get(user).copied().unwrap_or(0.0);
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

/// Run the full overlay × encoding grid on `cfg`'s shape. Every run shares
/// the trace and seed; only the overlay and the wire encoding vary. The
/// publish cadence is tightened to 60 s (refreshes stay at the production
/// 180 s) so multi-hop propagation completes well inside the drain tail.
pub fn run_gossip_sweep(cfg: &GossipConfig) -> GossipSweep {
    let users = synthetic_users(cfg.users);
    let trace = cycle_trace(
        &users,
        cfg.jobs,
        |i| i as f64 * SUBMIT_WINDOW_S / cfg.jobs.max(1) as f64,
        |_| 120.0,
    );
    let combos: Vec<(OverlayTopology, Encoding)> = OVERLAYS
        .iter()
        .flat_map(|&o| [(o, Encoding::Dense), (o, Encoding::Delta)])
        .collect();
    let results = parallel_sweep(&combos, |&(overlay, encoding)| {
        let mut sc = ScenarioBuilder::equal_share_users(cfg.users, cfg.seed)
            .sites(cfg.sites)
            .nodes_per_site(cfg.nodes_per_site)
            .metrics_user_cap(8)
            .threads(cfg.threads)
            .build()
            .with_overlay(overlay)
            .with_encoding(encoding);
        sc.timings.uss_publish_interval_s = 60.0;
        GridSimulation::new(sc).run(&trace, HORIZON_S)
    });
    let baseline = &results[0]; // FullMesh / Dense
    let points = combos
        .iter()
        .zip(&results)
        .map(|(&(overlay, encoding), result)| {
            let gossip_bytes = result.metrics.total_gossip_bytes();
            GossipPoint {
                overlay,
                encoding,
                gossip_bytes,
                bytes_per_user: gossip_bytes as f64 / cfg.active_users() as f64,
                convergence_s: result.metrics.view_convergence_time(1e-6),
                divergence_vs_mesh: view_gap(result, baseline),
                completed: result.total_completed(),
            }
        })
        .collect();
    GossipSweep { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep: the views agree across every topology/encoding,
    /// Delta is strictly smaller than Dense, and hierarchies use fewer
    /// bytes than the mesh.
    #[test]
    fn tiny_sweep_holds_the_invariants() {
        let cfg = GossipConfig {
            users: 64,
            sites: 8,
            nodes_per_site: 2,
            jobs: 64,
            seed: 7,
            threads: 1,
        };
        let sweep = run_gossip_sweep(&cfg);
        assert_eq!(sweep.points.len(), 6);
        let completed = sweep.points[0].completed;
        assert!(completed > 0);
        for p in &sweep.points {
            assert_eq!(p.completed, completed, "{:?}/{:?}", p.overlay, p.encoding);
            assert!(
                p.divergence_vs_mesh <= 1e-9,
                "{:?}/{:?} diverged by {}",
                p.overlay,
                p.encoding,
                p.divergence_vs_mesh
            );
            assert!(
                p.convergence_s.is_some(),
                "{:?}/{:?}",
                p.overlay,
                p.encoding
            );
            assert!(p.gossip_bytes > 0);
        }
        assert!(sweep.dense_over_delta() > 1.0);
        // At 8 sites only the tree's link cut outweighs relay duplication;
        // the hub overlay's multi-path hub↔hub sections need the O(sites²)
        // mesh cost of larger fleets to pay off, so it is reported here but
        // only gated at the sweep's real shapes.
        let mesh = sweep
            .point(OverlayTopology::FullMesh, Encoding::Delta)
            .unwrap();
        let tree = sweep.point(OVERLAYS[1], Encoding::Delta).unwrap();
        assert!(
            tree.gossip_bytes < mesh.gossip_bytes,
            "tree must beat the mesh: {} !< {}",
            tree.gossip_bytes,
            mesh.gossip_bytes
        );
    }
}
