//! Gossip trade-off sweep: bytes-on-wire vs convergence time for every
//! overlay topology (`FullMesh`, `Tree`, `Hub`) × wire encoding (`Dense`,
//! `Delta`) combination, on one shared workload and seed.
//!
//! Usage: `gossip_sweep [--check] [USERS SITES NODES JOBS]`
//!
//! Without flags the headline configuration runs — 100k users × 32 sites,
//! the ROADMAP's first waypoint — and the table prints each point's total
//! wire bytes, bytes per active user, convergence time, and worst per-user
//! view difference from the full-mesh baseline. Four positional numbers
//! override the shape. With `--check` a CI-sized smoke configuration runs
//! instead and the binary exits non-zero if (a) any topology/encoding point
//! ends with views differing from the full-mesh baseline beyond 1e-9 —
//! routing and encoding must never change what the grid believes, (b) any
//! point fails to converge inside the horizon, or (c) the Delta encoding's
//! full-mesh compression factor falls below the shape's gate (≥3× at the
//! headline shape, where per-user payloads amortize the frame; ≥2× at
//! smoke scale).

use aequus_bench::gossip::OVERLAYS;
use aequus_bench::{run_gossip_sweep, GossipConfig};
use aequus_core::codec::Encoding;

/// Codec compression gates: Dense/Delta full-mesh bytes ratio.
const FACTOR_FULL: f64 = 3.0;
const FACTOR_SMOKE: f64 = 2.0;

/// Cross-topology view-equivalence gate.
const VIEW_EPS: f64 = 1e-9;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut cfg = if check {
        GossipConfig::smoke()
    } else {
        GossipConfig::full()
    };
    let shape: Vec<usize> = std::env::args()
        .skip(1)
        .filter(|a| a != "--check")
        .filter_map(|a| a.parse().ok())
        .collect();
    if let [users, sites, nodes, jobs] = shape[..] {
        cfg.users = users;
        cfg.sites = sites.max(1);
        cfg.nodes_per_site = nodes.max(1) as u32;
        cfg.jobs = jobs;
    }
    let factor_gate = if cfg.users >= 100_000 {
        FACTOR_FULL
    } else {
        FACTOR_SMOKE
    };
    println!(
        "# Gossip sweep: {} users x {} sites x {} hosts, {} jobs{}",
        cfg.users,
        cfg.sites,
        cfg.nodes_per_site,
        cfg.jobs,
        if check { " [smoke]" } else { "" }
    );

    let sweep = run_gossip_sweep(&cfg);
    println!(
        "{:<22} {:<8} {:>14} {:>12} {:>12} {:>14}",
        "overlay", "codec", "wire_bytes", "bytes/user", "converge_s", "vs_mesh"
    );
    for p in &sweep.points {
        println!(
            "{:<22} {:<8} {:>14} {:>12.1} {:>12} {:>14.2e}",
            format!("{:?}", p.overlay),
            format!("{:?}", p.encoding),
            p.gossip_bytes,
            p.bytes_per_user,
            p.convergence_s
                .map_or("never".into(), |t| format!("{t:.0}")),
            p.divergence_vs_mesh,
        );
    }

    let mut failed = false;
    let worst = sweep.worst_divergence();
    if worst <= VIEW_EPS {
        println!("OK: every topology/encoding matches the full-mesh views (worst {worst:.2e})");
    } else {
        eprintln!("FAIL: views diverged from the full-mesh baseline by {worst:.2e} > {VIEW_EPS}");
        failed = true;
    }
    match sweep.worst_convergence_s() {
        Some(t) => println!("OK: every point converged (worst {t:.0} s)"),
        None => {
            eprintln!("FAIL: at least one point never converged inside the horizon");
            failed = true;
        }
    }
    let factor = sweep.dense_over_delta();
    if factor >= factor_gate {
        println!("OK: Delta cuts full-mesh bytes {factor:.2}x vs Dense (gate {factor_gate}x)");
    } else {
        eprintln!("FAIL: Delta compression {factor:.2}x below the {factor_gate}x gate");
        failed = true;
    }
    // The curve itself: cheapest hierarchy vs the mesh, both on Delta.
    let mesh = sweep.point(OVERLAYS[0], Encoding::Delta);
    let best_hier = OVERLAYS[1..]
        .iter()
        .filter_map(|&o| sweep.point(o, Encoding::Delta))
        .min_by_key(|p| p.gossip_bytes);
    if let (Some(mesh), Some(hier)) = (mesh, best_hier) {
        println!(
            "note: best hierarchy ({:?}) moves {:.1}% of the mesh's Delta bytes",
            hier.overlay,
            100.0 * hier.gossip_bytes as f64 / mesh.gossip_bytes.max(1) as f64
        );
    }

    if failed {
        std::process::exit(1);
    }
}
