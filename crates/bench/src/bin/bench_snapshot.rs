//! Machine-readable benchmark snapshot: writes `BENCH_PR10.json` with the
//! headline numbers of this revision (fairshare refresh latency, query p99,
//! gossip convergence under faults, the wire codec's bytes-per-user and the
//! overlay convergence time from the gossip sweep, causal-tracing overhead,
//! crash recovery with/without the durable store, the sharded engine's
//! smoke-sized scaling numbers, the fairness-health subsystem's
//! staleness/alert-lag/depth-rollup figures, and the PR-10 backfill
//! matrix's utilization/slowdown/convergence/predictor-accuracy headline
//! cells) plus `PROFILE_PR10.json`, the
//! continuous-profiler run profile that `bench_diff` uses to attribute
//! wall-clock regressions to a pipeline stage. With `--check` it compares each key against the most
//! recent previous `BENCH_*.json` in the working directory (shared gate
//! table: [`aequus_bench::snapshot`]) and exits non-zero on a regression
//! beyond tolerance. A missing previous snapshot (or a key absent from it)
//! passes with a note, so the gate bootstraps cleanly.
//!
//! The tracing ratios changed definition in PR 7. Previously they divided
//! the traced run's wall clock by a *no-telemetry* baseline, so they mostly
//! measured the metrics registry (PR 6 recorded 1.79× / 2.10× against a
//! ≤5% tracing budget — the two numbers weren't in the same unit). Now both
//! divide by the **telemetry-only** wall clock, isolating the tracing +
//! provenance increment the `telemetry_overhead` gate actually budgets.
//! See `crates/bench/README.md` for the unit definitions.
//!
//! Usage: `bench_snapshot [JOBS] [--check]` (default 4,000 jobs).

use aequus_bench::snapshot::{compare, host_cores, previous_snapshot, skip_scaling_keys};
use aequus_bench::{
    baseline_trace, jobs_arg, run_gossip_sweep, run_health_chaos, run_matrix,
    run_prediction_comparison, run_recovery_sweep, run_scale_sweep, run_with_faults,
    BackfillConfig, GossipConfig, ScaleConfig, ScenarioBuilder,
};
use aequus_core::projection::ProjectionKind;
use aequus_rms::DispatchOrder;
use aequus_sim::{GridScenario, GridSimulation, SimResult};
use aequus_workload::users::baseline_policy_shares;
use std::time::Instant;

const OUT: &str = "BENCH_PR10.json";
const PROFILE_OUT: &str = "PROFILE_PR10.json";

/// The compact two-cluster testbed used for the timing ratios, so the
/// telemetry-only / unsampled / fully-traced runs are strictly comparable.
fn two_cluster_scenario(seed: u64) -> GridScenario {
    ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
        .sites(2)
        .build()
}

/// The tracing stack wired (tracer + provenance recorder attached to every
/// site) but with span sampling off — the "enabled but unsampled" mode whose
/// cost is the per-report sampling branch, not span capture.
fn unsampled_scenario(seed: u64) -> GridScenario {
    let mut sc = two_cluster_scenario(seed).with_tracing(0);
    sc.capture_provenance = true;
    sc
}

fn timed_run(scenario: GridScenario, jobs: usize, seed: u64) -> (f64, SimResult) {
    let trace = baseline_trace(jobs, seed);
    let start = Instant::now();
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);
    (start.elapsed().as_secs_f64(), result)
}

/// Merge the FCS refresh histograms (full + incremental) across all sites
/// into (mean, max p99); query p99 is the max across sites.
fn refresh_and_query_stats(result: &SimResult) -> (f64, f64, f64) {
    let (mut sum, mut count, mut refresh_p99, mut query_p99) = (0.0, 0u64, 0.0f64, 0.0f64);
    for snap in &result.site_telemetry {
        for name in [
            "aequus_fcs_refresh_full_s",
            "aequus_fcs_refresh_incremental_s",
        ] {
            if let Some(h) = snap.histograms.get(name) {
                sum += h.sum;
                count += h.count;
                refresh_p99 = refresh_p99.max(h.p99);
            }
        }
        if let Some(h) = snap.histograms.get("aequus_fcs_query_s") {
            query_p99 = query_p99.max(h.p99);
        }
    }
    let mean = if count > 0 { sum / count as f64 } else { 0.0 };
    (mean, refresh_p99, query_p99)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let jobs = jobs_arg(4_000);
    let seed = 42;
    let cores = host_cores();

    // Interleave the three timed configurations and compare minima, the
    // noise-robust statistic (same harness shape as the overhead gates) —
    // one-shot walls made the PR6 ratios swing with whichever run paid the
    // cache warmup. The first (untimed) run doubles as the warmup and the
    // telemetry source for the latency stats.
    let (_, telem) = timed_run(two_cluster_scenario(seed).with_telemetry(), jobs, seed);
    let (mut telem_wall, mut unsampled_wall, mut full_wall) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        telem_wall =
            telem_wall.min(timed_run(two_cluster_scenario(seed).with_telemetry(), jobs, seed).0);
        unsampled_wall = unsampled_wall.min(timed_run(unsampled_scenario(seed), jobs, seed).0);
        full_wall =
            full_wall.min(timed_run(two_cluster_scenario(seed).with_full_tracing(), jobs, seed).0);
    }
    let (refresh_mean, refresh_p99, query_p99) = refresh_and_query_stats(&telem);
    // Gossip convergence under a 10% drop fault plan: total seconds the
    // cross-site usage views spent divergent (> 1e-6). Lower means the
    // reliability layer reconverges the views faster.
    let faulted = run_with_faults(jobs, 0.1, seed);
    let series = faulted.metrics.view_divergence_series();
    let mut divergent_s = 0.0;
    for w in series.windows(2) {
        if w[0].1 >= 1e-6 {
            divergent_s += w[1].0 - w[0].0;
        }
    }
    // Whole-simulation tracing cost relative to the telemetry-only run
    // (same scenario, same trace): ~1.0 is healthy, and the unit finally
    // matches the tracing increment the overhead gates budget.
    let unsampled_ratio = unsampled_wall / telem_wall;
    let full_ratio = full_wall / telem_wall;
    // Crash recovery: the chaos-suite crash plan with and without the
    // durable store. WAL replay must reconverge the crashed site's views
    // earlier than the surcharged snapshot-only path; both times gate.
    let recovery = &run_recovery_sweep(48, &[seed])[0];
    let recovery_wal = recovery.durable_convergence_s.unwrap_or(-1.0);
    let recovery_snap = recovery.volatile_convergence_s.unwrap_or(-1.0);
    // Scale-out gossip, smoke-sized (the 100k-user × 32-site curves are
    // `gossip_sweep`'s job): bytes-per-active-user of the production
    // configuration (full mesh on the Delta codec) and the latest
    // convergence time across the hierarchical overlays — both
    // lower-is-better, both quantized to the 60 s sample cadence.
    let gossip = run_gossip_sweep(&GossipConfig::smoke());
    let gossip_bytes_per_user = gossip
        .point(
            aequus_services::OverlayTopology::FullMesh,
            aequus_core::codec::Encoding::Delta,
        )
        .map_or(-1.0, |p| p.bytes_per_user);
    let overlay_convergence = gossip.worst_convergence_s().unwrap_or(-1.0);
    if gossip.worst_divergence() > 1e-9 {
        eprintln!(
            "FAIL: gossip smoke sweep views diverged from the full mesh by {:.2e}",
            gossip.worst_divergence()
        );
        std::process::exit(1);
    }
    // Sharded-engine scaling, smoke-sized (the full 100k-user × 32-site
    // sweep is `scale_sweep`'s job): events/second serial and on 8 workers,
    // plus the best wall-clock speedup. Honest numbers — on a single-core
    // host the speedup sits at or below 1×, and the shared gate table
    // skips the thread-scaling keys there entirely (`host_cores` below
    // records which kind of host produced this snapshot).
    let scale = run_scale_sweep(&ScaleConfig::smoke());
    if let Some(why) = &scale.mismatch {
        eprintln!("FAIL: scale smoke run not thread-count deterministic: {why}");
        std::process::exit(1);
    }
    if let Some(why) = scale.folded_mismatch() {
        eprintln!("FAIL: profiler not thread-count deterministic: {why}");
        std::process::exit(1);
    }
    let scale_eps_1t = scale.events_per_sec(1).unwrap_or(-1.0);
    let scale_eps_8t = scale.events_per_sec(8).unwrap_or(-1.0);
    let scale_speedup = scale.best_speedup();
    // Fairness-health figures from the chaos-calibration grid (the same
    // runs `aequus-health --check` gates): worst per-link staleness p99 and
    // the staleness alert's detection lag on the full mesh, plus the
    // depth-2 convergence-lag rollup on a fanout-2 tree overlay. All three
    // are sim-time-deterministic per revision; −1.0 marks "did not fire /
    // no depth-2 links", which the gate table skips.
    let health = run_health_chaos(seed, 3, None);
    let health_report = health.health_report.as_ref().expect("health run reports");
    let staleness_p99 = health_report
        .links
        .iter()
        .map(|l| l.staleness_p99_s)
        .fold(0.0f64, f64::max);
    let alert_detection_lag = health
        .alerts
        .iter()
        .find(|a| a.transition == "firing" && a.rule.starts_with("staleness:"))
        .map_or(-1.0, |a| a.t_s - 300.0);
    let tree = run_health_chaos(
        seed,
        6,
        Some(aequus_services::OverlayTopology::Tree { fanout: 2 }),
    );
    let depth2_lag = tree
        .health_report
        .as_ref()
        .and_then(|r| r.depth_lag(2))
        .unwrap_or(-1.0);
    // Backfill dispatch matrix, smoke-sized (the full 6k-job sweep is
    // `backfill_sweep`'s job): FIFO and EASY utilization, EASY bounded
    // slowdown and convergence time on the Percental column of the bursty
    // mixed-width workload, plus the running-average predictor's accuracy
    // under 3×-padded requests. All sim-time-deterministic per revision;
    // convergence uses the −1.0 sentinel when the cell never balances.
    let backfill_cfg = BackfillConfig::smoke();
    let matrix = run_matrix(&backfill_cfg);
    let backfill_cell = |order: DispatchOrder| {
        matrix
            .iter()
            .find(|c| c.order == order && c.projection == ProjectionKind::Percental)
            .expect("full matrix")
    };
    let backfill_fifo_util = 100.0 * backfill_cell(DispatchOrder::Fifo).utilization;
    let easy = backfill_cell(DispatchOrder::Easy);
    let backfill_easy_util = 100.0 * easy.utilization;
    let backfill_easy_slowdown = easy.mean_slowdown;
    let backfill_easy_conv = easy.converge_s.unwrap_or(-1.0);
    let backfill_predict_err = run_prediction_comparison(&backfill_cfg).avg_err;

    // The serial smoke run's profile is this snapshot's attribution
    // sidecar: when a later `bench_diff` sees a wall-clock key regress, it
    // diffs the two PROFILE files' stage shares to name the culprit.
    if let Some((_, profile)) = scale.profiles.first() {
        std::fs::write(PROFILE_OUT, profile.to_json()).expect("write profile sidecar");
        println!("wrote {PROFILE_OUT}");
    }

    let json = format!(
        "{{\n  \"pr\": 10,\n  \"jobs\": {jobs},\n  \"host_cores\": {cores},\n  \
         \"refresh_mean_s\": {refresh_mean:?},\n  \
         \"refresh_p99_s\": {refresh_p99:?},\n  \"query_p99_s\": {query_p99:?},\n  \
         \"gossip_divergent_s\": {divergent_s:?},\n  \
         \"gossip_bytes_per_user\": {gossip_bytes_per_user:?},\n  \
         \"overlay_convergence_s\": {overlay_convergence:?},\n  \
         \"tracing_unsampled_ratio\": {unsampled_ratio:?},\n  \
         \"tracing_full_ratio\": {full_ratio:?},\n  \
         \"recovery_wal_replay_s\": {recovery_wal:?},\n  \
         \"recovery_snapshot_only_s\": {recovery_snap:?},\n  \
         \"scale_speedup_x\": {scale_speedup:?},\n  \
         \"events_per_sec_1t\": {scale_eps_1t:?},\n  \
         \"events_per_sec_8t\": {scale_eps_8t:?},\n  \
         \"staleness_p99_s\": {staleness_p99:?},\n  \
         \"alert_detection_lag_s\": {alert_detection_lag:?},\n  \
         \"depth2_convergence_lag_s\": {depth2_lag:?},\n  \
         \"backfill_fifo_util_pct\": {backfill_fifo_util:?},\n  \
         \"backfill_easy_util_pct\": {backfill_easy_util:?},\n  \
         \"backfill_easy_slowdown\": {backfill_easy_slowdown:?},\n  \
         \"backfill_easy_conv_s\": {backfill_easy_conv:?},\n  \
         \"backfill_predict_rel_err\": {backfill_predict_err:?}\n}}\n"
    );
    std::fs::write(OUT, &json).expect("write benchmark snapshot");
    println!("wrote {OUT}:");
    print!("{json}");

    if !check {
        return;
    }
    let Some((prev_name, prev)) = previous_snapshot(OUT) else {
        println!("OK: no previous BENCH_*.json to compare against; gate passes");
        return;
    };
    println!("comparing against {prev_name}");
    let failures = compare(&prev, &json, skip_scaling_keys(&prev, &json));
    for f in &failures {
        eprintln!(
            "  FAIL {}: {:?} -> {:?} exceeds tolerance x{}",
            f.key, f.prev, f.cur, f.tol
        );
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    println!("OK: within tolerance of {prev_name}");
}
