//! Machine-readable benchmark snapshot: writes `BENCH_PR6.json` with the
//! headline numbers of this revision (fairshare refresh latency, query p99,
//! gossip convergence under faults, causal-tracing overhead, crash recovery
//! with/without the durable store, and the sharded engine's smoke-sized
//! scaling numbers), then — with `--check` — compares each key against the
//! most recent previous `BENCH_*.json` in the working directory and exits
//! non-zero on a regression beyond tolerance. A missing previous snapshot
//! (or a key absent from it, as the scale keys are on the first PR6 run)
//! passes with a note, so the gate bootstraps cleanly.
//!
//! Usage: `bench_snapshot [JOBS] [--check]` (default 4,000 jobs).

use aequus_bench::{
    baseline_trace, jobs_arg, run_recovery_sweep, run_scale_sweep, run_with_faults, ScaleConfig,
    ScenarioBuilder,
};
use aequus_sim::{GridScenario, GridSimulation, SimResult};
use aequus_workload::users::baseline_policy_shares;
use std::time::Instant;

const OUT: &str = "BENCH_PR6.json";

/// The compact two-cluster testbed used for the timing ratios, so the
/// untraced / unsampled / fully-traced runs are strictly comparable.
fn two_cluster_scenario(seed: u64) -> GridScenario {
    ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
        .sites(2)
        .build()
}

fn timed_run(scenario: GridScenario, jobs: usize, seed: u64) -> (f64, SimResult) {
    let trace = baseline_trace(jobs, seed);
    let start = Instant::now();
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);
    (start.elapsed().as_secs_f64(), result)
}

/// Merge the FCS refresh histograms (full + incremental) across all sites
/// into (mean, max p99); query p99 is the max across sites.
fn refresh_and_query_stats(result: &SimResult) -> (f64, f64, f64) {
    let (mut sum, mut count, mut refresh_p99, mut query_p99) = (0.0, 0u64, 0.0f64, 0.0f64);
    for snap in &result.site_telemetry {
        for name in [
            "aequus_fcs_refresh_full_s",
            "aequus_fcs_refresh_incremental_s",
        ] {
            if let Some(h) = snap.histograms.get(name) {
                sum += h.sum;
                count += h.count;
                refresh_p99 = refresh_p99.max(h.p99);
            }
        }
        if let Some(h) = snap.histograms.get("aequus_fcs_query_s") {
            query_p99 = query_p99.max(h.p99);
        }
    }
    let mean = if count > 0 { sum / count as f64 } else { 0.0 };
    (mean, refresh_p99, query_p99)
}

/// Pull the numeric value of `"key": <number>` out of a flat JSON document
/// without a parser; every snapshot key is globally unique by construction.
fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Newest previous snapshot (`BENCH_*.json` other than this PR's output).
fn previous_snapshot() -> Option<(String, String)> {
    let mut candidates: Vec<(std::time::SystemTime, String)> = std::fs::read_dir(".")
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if name.starts_with("BENCH_") && name.ends_with(".json") && name != OUT {
                Some((e.metadata().ok()?.modified().ok()?, name))
            } else {
                None
            }
        })
        .collect();
    candidates.sort();
    let (_, name) = candidates.pop()?;
    let body = std::fs::read_to_string(&name).ok()?;
    Some((name, body))
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let jobs = jobs_arg(4_000);
    let seed = 42;

    let (base_wall, _) = timed_run(two_cluster_scenario(seed), jobs, seed);
    let (telem_wall, telem) = timed_run(two_cluster_scenario(seed).with_telemetry(), jobs, seed);
    let (full_wall, _) = timed_run(two_cluster_scenario(seed).with_full_tracing(), jobs, seed);
    let (refresh_mean, refresh_p99, query_p99) = refresh_and_query_stats(&telem);
    // Gossip convergence under a 10% drop fault plan: total seconds the
    // cross-site usage views spent divergent (> 1e-6). Lower means the
    // reliability layer reconverges the views faster.
    let faulted = run_with_faults(jobs, 0.1, seed);
    let series = faulted.metrics.view_divergence_series();
    let mut divergent_s = 0.0;
    for w in series.windows(2) {
        if w[0].1 >= 1e-6 {
            divergent_s += w[1].0 - w[0].0;
        }
    }
    let unsampled_ratio = telem_wall / base_wall;
    let full_ratio = full_wall / base_wall;
    // Crash recovery: the chaos-suite crash plan with and without the
    // durable store. WAL replay must reconverge the crashed site's views
    // earlier than the surcharged snapshot-only path; both times gate.
    let recovery = &run_recovery_sweep(48, &[seed])[0];
    let recovery_wal = recovery.durable_convergence_s.unwrap_or(-1.0);
    let recovery_snap = recovery.volatile_convergence_s.unwrap_or(-1.0);
    // Sharded-engine scaling, smoke-sized (the full 100k-user × 32-site
    // sweep is `scale_sweep`'s job): events/second serial and on 8 workers,
    // plus the best wall-clock speedup. Honest numbers — on a single-core
    // host the speedup sits at or below 1×, and the gate below is
    // direction- and tolerance-aware about it.
    let scale = run_scale_sweep(&ScaleConfig::smoke());
    if let Some(why) = &scale.mismatch {
        eprintln!("FAIL: scale smoke run not thread-count deterministic: {why}");
        std::process::exit(1);
    }
    let scale_eps_1t = scale.events_per_sec(1).unwrap_or(-1.0);
    let scale_eps_8t = scale.events_per_sec(8).unwrap_or(-1.0);
    let scale_speedup = scale.best_speedup();

    let json = format!(
        "{{\n  \"pr\": 6,\n  \"jobs\": {jobs},\n  \"refresh_mean_s\": {refresh_mean:?},\n  \
         \"refresh_p99_s\": {refresh_p99:?},\n  \"query_p99_s\": {query_p99:?},\n  \
         \"gossip_divergent_s\": {divergent_s:?},\n  \
         \"tracing_unsampled_ratio\": {unsampled_ratio:?},\n  \
         \"tracing_full_ratio\": {full_ratio:?},\n  \
         \"recovery_wal_replay_s\": {recovery_wal:?},\n  \
         \"recovery_snapshot_only_s\": {recovery_snap:?},\n  \
         \"scale_speedup_x\": {scale_speedup:?},\n  \
         \"events_per_sec_1t\": {scale_eps_1t:?},\n  \
         \"events_per_sec_8t\": {scale_eps_8t:?}\n}}\n"
    );
    std::fs::write(OUT, &json).expect("write benchmark snapshot");
    println!("wrote {OUT}:");
    print!("{json}");

    if !check {
        return;
    }
    let Some((prev_name, prev)) = previous_snapshot() else {
        println!("OK: no previous BENCH_*.json to compare against; gate passes");
        return;
    };
    println!("comparing against {prev_name}");
    /// Which way a metric regresses.
    #[derive(Clone, Copy)]
    enum Dir {
        /// Latency-shaped: regression = current grew past tolerance.
        LowerIsBetter,
        /// Throughput-shaped: regression = current shrank past tolerance.
        HigherIsBetter,
    }
    use Dir::{HigherIsBetter, LowerIsBetter};
    // (key, direction, relative tolerance, absolute slack) — a regression
    // must exceed both `prev * tol` (or fall below `prev / tol`) and the
    // absolute slack, so noise near zero never trips.
    let gates = [
        ("refresh_mean_s", LowerIsBetter, 1.5, 0.005),
        ("refresh_p99_s", LowerIsBetter, 1.5, 0.005),
        ("query_p99_s", LowerIsBetter, 1.5, 0.005),
        ("gossip_divergent_s", LowerIsBetter, 1.25, 300.0),
        ("tracing_unsampled_ratio", LowerIsBetter, 1.5, 0.25),
        ("tracing_full_ratio", LowerIsBetter, 1.5, 0.25),
        // Convergence times quantize to the 60 s sample interval; one
        // extra sample of drift is tolerated, two is a regression.
        ("recovery_wal_replay_s", LowerIsBetter, 1.2, 90.0),
        ("recovery_snapshot_only_s", LowerIsBetter, 1.2, 90.0),
        // Scaling keys are wall-clock-derived and shared-CI noisy, so the
        // tolerances are wide; the hard ≥4×-on-8-cores acceptance gate
        // lives in `scale_sweep --check`, which knows the host's core
        // count.
        ("scale_speedup_x", HigherIsBetter, 1.5, 0.5),
        ("events_per_sec_1t", HigherIsBetter, 2.0, 50_000.0),
        ("events_per_sec_8t", HigherIsBetter, 2.0, 50_000.0),
    ];
    let mut failed = false;
    for (key, dir, tol, slack) in gates {
        let (Some(prev_v), Some(cur_v)) = (extract(&prev, key), extract(&json, key)) else {
            println!("  {key}: missing in previous snapshot, skipped");
            continue;
        };
        if prev_v < 0.0 || cur_v < 0.0 {
            println!("  {key}: not measured on one side ({prev_v:?} -> {cur_v:?}), skipped");
            continue;
        }
        let regressed = match dir {
            LowerIsBetter => cur_v > prev_v * tol && cur_v > prev_v + slack,
            HigherIsBetter => cur_v < prev_v / tol && cur_v < prev_v - slack,
        };
        if regressed {
            eprintln!("  FAIL {key}: {prev_v:?} -> {cur_v:?} exceeds tolerance x{tol}");
            failed = true;
        } else {
            println!("  ok {key}: {prev_v:?} -> {cur_v:?}");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: within tolerance of {prev_name}");
}
