//! Ablation: the §IV-A-2 delay chain — scale all service cache times and the
//! libaequus TTL together and observe the effect on convergence.

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    println!("# Ablation: delay-chain scale (all cache times + TTLs x factor)");
    println!(
        "{:<8} {:>18} {:>14} {:>16}",
        "factor", "pipeline delay(s)", "converge(min)", "final deviation"
    );
    let factors = [0.2, 0.5, 1.0, 2.0, 5.0, 10.0];
    let results = aequus_bench::parallel_sweep(&factors, |&factor| {
        let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        scenario.timings = scenario.timings.scaled(factor);
        let result = GridSimulation::new(scenario.clone()).run(&trace, 1800.0);
        (scenario.timings.worst_case_pipeline_s(), result)
    });
    for (factor, (pipeline, result)) in factors.iter().zip(&results) {
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        println!(
            "{:<8.1} {:>18.0} {:>14} {:>16.3}",
            factor,
            pipeline,
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            result.metrics.final_deviation()
        );
    }
    println!("\nexpected: longer pipelines delay (and eventually destabilize) convergence");
}
