//! Figure 11 companion: *measured* pipeline update delay vs the configured
//! §IV-A-2 worst case. The update-delay experiment (`fig11_update_delay`)
//! varies the delay chain's *relative* magnitude; this binary instruments
//! the baseline with the pipeline-delay tracer and reports, per stage, the
//! empirical delay distribution next to its configured cap — showing how
//! much of the worst-case budget `worst_case_pipeline_s()` the deployment
//! actually consumes.

use aequus_bench::{baseline_trace, jobs_arg, report, PAPER_JOBS};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_telemetry::HistogramSnapshot;
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let seed = 42;
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), seed).with_telemetry();
    let timings = scenario.timings;
    eprintln!("running instrumented baseline ({jobs} jobs)...");
    let trace = baseline_trace(jobs, seed);
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    // Aggregate one stage histogram across sites: total count plus the
    // worst site's quantiles (quantiles are not mergeable; the max is the
    // conservative cross-site bound).
    let stage_stats = |name: &str| -> (u64, Option<HistogramSnapshot>) {
        let total = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.histograms.get(name).map(|h| h.count))
            .sum();
        let worst = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.histograms.get(name))
            .filter(|h| h.count > 0)
            .max_by(|a, b| a.p99.partial_cmp(&b.p99).expect("finite quantiles"))
            .copied();
        (total, worst)
    };

    println!("# Figure 11 companion: measured pipeline delay vs configured caps");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "stage", "traces", "p50(s)", "p99(s)", "max(s)", "cap(s)", "p99/cap"
    );
    for (stage, cap_s) in timings.stage_caps() {
        let (count, worst) = stage_stats(&format!("aequus_tracer_{stage}_delay_s"));
        match worst {
            Some(h) => println!(
                "{stage:>8} {count:>8} {:>10.1} {:>10.1} {:>10.1} {cap_s:>12.1} {:>7.0}%",
                h.p50,
                h.p99,
                h.max,
                100.0 * h.p99 / cap_s.max(f64::MIN_POSITIVE)
            ),
            None => println!("{stage:>8} {count:>8} {:>43} {cap_s:>12.1}", "(no samples)"),
        }
    }
    let bound = timings.worst_case_pipeline_s();
    let (count, e2e) = stage_stats("aequus_tracer_end_to_end_s");
    match e2e {
        Some(h) => println!(
            "{:>8} {count:>8} {:>10.1} {:>10.1} {:>10.1} {bound:>12.1} {:>7.0}%",
            "e2e",
            h.p50,
            h.p99,
            h.max,
            100.0 * h.p99 / bound.max(f64::MIN_POSITIVE)
        ),
        None => println!(
            "{:>8} {count:>8} {:>43} {bound:>12.1}",
            "e2e", "(no samples)"
        ),
    }
    println!(
        "\nNotes: stage delays are measured at cluster-tick granularity, so the\n\
         report stage can read a few seconds over its cap. The lib stage measures\n\
         *observed* visibility — it includes the wait for the traced user's next\n\
         uncached fairshare fetch, so at low per-user load it exceeds the pure TTL\n\
         cap; the end-to-end p99 is the figure to hold against the {bound:.0} s\n\
         worst-case budget (at the paper's 95% load it sits well inside it)."
    );

    println!();
    println!("{}", report::render_telemetry(&result));
}
