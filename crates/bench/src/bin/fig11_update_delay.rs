//! Figure 11 reproduction: impact of update delay. The baseline is
//! time-scaled ×10 while the absolute service delays stay fixed, making the
//! delays a magnitude shorter relative to the workload. Paper: "a magnitude
//! shorter update and delay times contribute to a 10%–15% shorter
//! convergence time compared with the baseline case."

use aequus_bench::{jobs_arg, parallel_sweep, run_update_delay};

fn main() {
    let jobs = jobs_arg(20_000);
    let seeds: Vec<u64> = (40..48).collect();
    eprintln!(
        "running baseline + 10x-scaled pairs ({jobs} jobs, {} seeds, in parallel)...",
        seeds.len()
    );
    let outcomes = parallel_sweep(&seeds, |&seed| run_update_delay(jobs, 10.0, seed));
    println!("# Figure 11: relative convergence time (fraction of test length)");
    println!(
        "{:>6} {:>10} {:>10} {:>13}",
        "seed", "baseline", "scaled", "improvement"
    );
    let mut improvements = Vec::new();
    for (seed, o) in seeds.iter().zip(&outcomes) {
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>12.1}%",
            seed,
            o.baseline_fraction,
            o.scaled_fraction,
            100.0 * o.relative_improvement()
        );
        improvements.push(o.relative_improvement());
    }
    // Median, not mean — the paper's own §IV-2 argument (after Downey &
    // Feitelson): convergence-onset estimates have occasional outliers that
    // make the mean "completely arbitrary", while the median is resilient.
    improvements.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = improvements[improvements.len() / 2];
    println!(
        "\nmedian relative improvement over {} seeds: {:.1}% (paper: 10–15%)",
        seeds.len(),
        100.0 * median
    );
}
