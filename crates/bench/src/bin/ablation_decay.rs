//! Ablation: usage decay functions (none / exponential half-life sweep /
//! sliding window) — §II-A's "different usage decay functions to control how
//! the impact of previous usage is decreased over time".

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_core::DecayPolicy;
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    let cases: Vec<(String, DecayPolicy)> = vec![
        ("none".into(), DecayPolicy::None),
        (
            "exp half-life 10min".into(),
            DecayPolicy::Exponential { half_life_s: 600.0 },
        ),
        (
            "exp half-life 30min".into(),
            DecayPolicy::Exponential {
                half_life_s: 1800.0,
            },
        ),
        (
            "exp half-life 2h".into(),
            DecayPolicy::Exponential {
                half_life_s: 7200.0,
            },
        ),
        (
            "window 30min".into(),
            DecayPolicy::Window { window_s: 1800.0 },
        ),
        ("window 2h".into(), DecayPolicy::Window { window_s: 7200.0 }),
        ("linear 1h".into(), DecayPolicy::Linear { span_s: 3600.0 }),
    ];
    println!("# Ablation: decay function (measurement + prioritization window)");
    println!(
        "{:<22} {:>14} {:>16}",
        "decay", "converge(min)", "final deviation"
    );
    for (name, decay) in cases {
        let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        scenario.fairshare.decay = decay;
        let result = GridSimulation::new(scenario).run(&trace, 1800.0);
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        println!(
            "{:<22} {:>14} {:>16.3}",
            name,
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            result.metrics.final_deviation()
        );
    }
    println!("\nexpected: no decay accumulates history and reacts sluggishly;");
    println!("short windows/half-lives track the instantaneous mix with more noise.");
}
