//! Reliability fault sweep: convergence of cross-site usage views vs the
//! exchange drop rate. For each drop probability the run measures when every
//! site's per-user view of grid usage settles to the same values (within
//! 1e-6 core-seconds) and how much retry / gap / resync / snapshot traffic
//! the reliability layer spent getting there. The 0% row doubles as the
//! regression baseline: it must show zero protocol traffic.
//!
//! The scenarios come from the shared sweep builder and the drop rates run
//! concurrently (`parallel_sweep`) — each rate is an independent,
//! internally deterministic simulation.

use aequus_bench::{jobs_arg, run_fault_sweep};

fn main() {
    let jobs = jobs_arg(4000);
    let drops = [0.0, 0.05, 0.10, 0.20, 0.30];
    let points = run_fault_sweep(jobs, &drops, 42);

    println!("# Fault sweep: view convergence vs exchange drop rate ({jobs} jobs, seed 42)");
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>10} {:>10} {:>16}",
        "drop", "converged_at_s", "retries", "seq_gaps", "resyncs", "snapshots", "final_div_cs"
    );
    for p in &points {
        let conv = p
            .convergence_s
            .map(|t| format!("{t:.0}"))
            .unwrap_or_else(|| "never".to_string());
        println!(
            "{:<8} {:>14} {:>10} {:>10} {:>10} {:>10} {:>16.3e}",
            format!("{:.0}%", p.drop_probability * 100.0),
            conv,
            p.retries,
            p.seq_gaps,
            p.resyncs,
            p.snapshots,
            p.final_divergence,
        );
    }
    if let Some(clean) = points.first() {
        assert_eq!(
            (clean.retries, clean.resyncs, clean.snapshots),
            (0, 0, 0),
            "faults-disabled run must show zero reliability traffic"
        );
    }
}
