//! Table II reproduction: job-arrival medians, BIC-selected distributions,
//! and KS goodness-of-fit values, re-derived from a synthetic year trace.

use aequus_bench::jobs_arg;
use aequus_workload::characterize::{render_rows, table2_arrival};
use aequus_workload::synthetic_year;

fn main() {
    let jobs = jobs_arg(200_000);
    eprintln!("generating {jobs}-job synthetic year trace + fitting (BIC over 18 families)...");
    let trace = synthetic_year(jobs, 2012);
    let rows = table2_arrival(&trace);
    println!(
        "{}",
        render_rows(
            "Table II: Job arrival — median inter-arrival (s), best fitted distribution, KS",
            &rows
        )
    );
    println!("paper (shape targets): GEV best for U65 phases/U3/Uoth, Burr for U30;");
    println!("KS in the 0.02–0.15 band; composite Eq.(1) fit best of the U65 rows.");
}
