//! Table I reproduction: measured property matrix of the fairshare-vector
//! representation and the three projection algorithms.

use aequus_core::projection::properties::table1;

fn main() {
    println!("Table I: Overview of algorithms projecting fairshare vectors to singular numerical values.");
    println!(
        "{:<22} {:>8} {:>12} {:>19} {:>13} {:>11}",
        "", "∞ Depth", "∞ Precision", "Subgroup Isolation", "Proportional", "Combinable"
    );
    for (label, props) in table1() {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        let r = props.row();
        println!(
            "{:<22} {:>7} {:>12} {:>19} {:>13} {:>11}",
            label,
            mark(r[0]),
            mark(r[1]),
            mark(r[2]),
            mark(r[3]),
            mark(r[4])
        );
    }
    println!();
    println!("(every cell is *measured* by adversarial probes, not hard-coded;");
    println!(" see aequus_core::projection::properties)");
}
