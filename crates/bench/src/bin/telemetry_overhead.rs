//! Telemetry overhead smoke check: the RMS dispatch hot path (a full
//! `SchedulerCore::advance` over a loaded queue) with a wired telemetry
//! domain must stay within 5% of the disabled-telemetry baseline. Three
//! instrumented modes are gated: metrics-only, causal tracing + provenance
//! enabled-but-unsampled, and full capture (every report traced, provenance
//! recorded). Run with `--check` to exit non-zero when any mode exceeds the
//! budget (the CI gate).

use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::UsageRecord;
use aequus_core::{GridUser, SystemUser};
use aequus_rms::{
    FactorConfig, Job, LocalFairshare, NodePool, PriorityWeights, ReprioritizePolicy, SchedulerCore,
};
use aequus_services::{AequusSite, ParticipationMode, ServiceTimings};
use aequus_telemetry::tracer::TracerConfig;
use aequus_telemetry::{SpanConfig, Telemetry};
use std::hint::black_box;
use std::time::Instant;

const QUEUE: usize = 2_000;
const ROUNDS: usize = 60;
const WARMUP: usize = 5;
const BUDGET: f64 = 1.05;

fn loaded_scheduler(telemetry: &Telemetry) -> (SchedulerCore, LocalFairshare) {
    let mut sched = SchedulerCore::new(
        SiteId(0),
        NodePool::new(40, 1),
        PriorityWeights::fairshare_only(),
        FactorConfig::default(),
        ReprioritizePolicy::Interval(30.0),
    );
    sched.set_telemetry(telemetry);
    let mut src = LocalFairshare::new(
        flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        60.0,
    );
    src.map_identity(SystemUser::new("sa"), GridUser::new("a"));
    src.map_identity(SystemUser::new("sb"), GridUser::new("b"));
    for i in 0..QUEUE as u64 {
        let sys = if i % 2 == 0 { "sa" } else { "sb" };
        sched.submit(
            Job::new(JobId(i), SystemUser::new(sys), 1, 0.0, 500.0),
            &mut src,
            0.0,
        );
    }
    (sched, src)
}

/// One sample: a fresh loaded scheduler, timed through a single advance
/// (prioritization pass + dispatch with backfill). Setup excluded.
fn sample_ns(telemetry: &Telemetry) -> f64 {
    let (mut sched, mut src) = loaded_scheduler(telemetry);
    let start = Instant::now();
    sched.advance(black_box(&mut src), 1.0);
    black_box(&sched);
    start.elapsed().as_nanos() as f64
}

/// A scheduler whose fairshare source is a full Aequus site with a primed
/// pipeline (tree computed, and in full-capture mode a pending serving
/// trace), so the advance path exercises the span/provenance branches.
fn loaded_site(telemetry: &Telemetry) -> (SchedulerCore, AequusSite) {
    let mut site = AequusSite::new(
        SiteId(0),
        flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        ServiceTimings::default(),
        ParticipationMode::Full,
        60.0,
    );
    site.set_telemetry(telemetry);
    site.irs
        .store_mapping(SystemUser::new("sa"), GridUser::new("a"));
    site.irs
        .store_mapping(SystemUser::new("sb"), GridUser::new("b"));
    // Prime: one completed job flows report → ingest → UMS → FCS so the
    // serving path has a real tree to answer from.
    site.report_completion(
        UsageRecord {
            job: JobId(0),
            user: GridUser::new("a"),
            site: SiteId(0),
            cores: 1,
            start_s: 0.0,
            end_s: 100.0,
        },
        100.0,
    );
    for t in [110.0, 300.0, 500.0, 700.0] {
        site.tick(t);
    }
    let mut sched = SchedulerCore::new(
        SiteId(0),
        NodePool::new(40, 1),
        PriorityWeights::fairshare_only(),
        FactorConfig::default(),
        ReprioritizePolicy::Interval(30.0),
    );
    sched.set_telemetry(telemetry);
    for i in 0..QUEUE as u64 {
        let sys = if i % 2 == 0 { "sa" } else { "sb" };
        sched.submit(
            Job::new(JobId(i + 1), SystemUser::new(sys), 1, 700.0, 500.0),
            &mut site,
            700.0,
        );
    }
    (sched, site)
}

/// One site-backed sample: a tick plus a full advance (re-prioritization
/// over the whole queue through `fairshare_by_id`, then dispatch).
fn site_sample_ns(telemetry: &Telemetry) -> f64 {
    let (mut sched, mut site) = loaded_site(telemetry);
    let start = Instant::now();
    site.tick(710.0);
    sched.advance(black_box(&mut site), 710.0);
    black_box(&sched);
    start.elapsed().as_nanos() as f64
}

/// Interleave one baseline and N instrumented configurations so drift
/// (thermal, scheduler) hits all equally; compare minima, the noise-robust
/// statistic. Returns each configuration's ratio to the baseline.
fn measure(sample: fn(&Telemetry) -> f64, baseline: &Telemetry, modes: &[&Telemetry]) -> Vec<f64> {
    for _ in 0..WARMUP {
        sample(baseline);
        for m in modes {
            sample(m);
        }
    }
    let mut off = Vec::with_capacity(ROUNDS);
    let mut on = vec![Vec::with_capacity(ROUNDS); modes.len()];
    for _ in 0..ROUNDS {
        off.push(sample(baseline));
        for (i, m) in modes.iter().enumerate() {
            on[i].push(sample(m));
        }
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let off_min = min(&off);
    on.iter().map(|v| min(v) / off_min).collect()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut failed = false;
    let mut gate = |name: &str, ratio: f64| {
        println!("ratio     {ratio:.4} (budget {BUDGET:.2}) [{name}]");
        if ratio > BUDGET {
            eprintln!("FAIL: {name} overhead {ratio:.4} exceeds budget {BUDGET:.2}");
            failed = true;
        }
    };

    println!("# telemetry overhead: SchedulerCore::advance, {QUEUE} queued jobs");
    let enabled = Telemetry::enabled();
    let ratios = measure(sample_ns, &Telemetry::disabled(), &[&enabled]);
    gate("metrics-only", ratios[0]);
    let snap = enabled.snapshot().expect("enabled telemetry snapshots");
    println!(
        "instrumented run recorded {} dispatch spans, {} jobs started",
        snap.histograms
            .get("aequus_rms_dispatch_s")
            .map(|h| h.count)
            .unwrap_or(0),
        snap.counters
            .get("aequus_rms_started_total")
            .copied()
            .unwrap_or(0),
    );

    // The tracing modes are compared against the metrics-only telemetry
    // baseline so the ratio isolates the span + provenance increment (the
    // metrics increment itself is gated above).
    println!("# tracing overhead: site-backed advance (span + provenance paths)");
    let unsampled = Telemetry::with_full_config(
        TracerConfig::default(),
        256,
        SpanConfig {
            sample_every: 0, // wired but never sampled
            capture_provenance: true,
            ..SpanConfig::default()
        },
    );
    let full = Telemetry::with_full_config(TracerConfig::default(), 256, SpanConfig::full(0));
    let ratios = measure(site_sample_ns, &Telemetry::enabled(), &[&unsampled, &full]);
    gate("tracing-unsampled", ratios[0]);
    gate("tracing-full-capture", ratios[1]);

    if check && failed {
        std::process::exit(1);
    }
    if check {
        println!("OK: within budget");
    }
}
