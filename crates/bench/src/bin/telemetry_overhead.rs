//! Telemetry overhead smoke check: the RMS dispatch hot path (a full
//! `SchedulerCore::advance` over a loaded queue) with a wired telemetry
//! domain must stay within 5% of the disabled-telemetry baseline. Run with
//! `--check` to exit non-zero when the budget is exceeded (the CI gate).

use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::{GridUser, SystemUser};
use aequus_rms::{
    FactorConfig, Job, LocalFairshare, NodePool, PriorityWeights, ReprioritizePolicy, SchedulerCore,
};
use aequus_telemetry::Telemetry;
use std::hint::black_box;
use std::time::Instant;

const QUEUE: usize = 2_000;
const ROUNDS: usize = 60;
const WARMUP: usize = 5;
const BUDGET: f64 = 1.05;

fn loaded_scheduler(telemetry: &Telemetry) -> (SchedulerCore, LocalFairshare) {
    let mut sched = SchedulerCore::new(
        SiteId(0),
        NodePool::new(40, 1),
        PriorityWeights::fairshare_only(),
        FactorConfig::default(),
        ReprioritizePolicy::Interval(30.0),
    );
    sched.set_telemetry(telemetry);
    let mut src = LocalFairshare::new(
        flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        60.0,
    );
    src.map_identity(SystemUser::new("sa"), GridUser::new("a"));
    src.map_identity(SystemUser::new("sb"), GridUser::new("b"));
    for i in 0..QUEUE as u64 {
        let sys = if i % 2 == 0 { "sa" } else { "sb" };
        sched.submit(
            Job::new(JobId(i), SystemUser::new(sys), 1, 0.0, 500.0),
            &mut src,
            0.0,
        );
    }
    (sched, src)
}

/// One sample: a fresh loaded scheduler, timed through a single advance
/// (prioritization pass + dispatch with backfill). Setup excluded.
fn sample_ns(telemetry: &Telemetry) -> f64 {
    let (mut sched, mut src) = loaded_scheduler(telemetry);
    let start = Instant::now();
    sched.advance(black_box(&mut src), 1.0);
    black_box(&sched);
    start.elapsed().as_nanos() as f64
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let disabled = Telemetry::disabled();
    let enabled = Telemetry::enabled();

    for _ in 0..WARMUP {
        sample_ns(&disabled);
        sample_ns(&enabled);
    }
    // Interleave the two configurations so drift (thermal, scheduler) hits
    // both equally; compare minima, the noise-robust statistic.
    let mut off = Vec::with_capacity(ROUNDS);
    let mut on = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        off.push(sample_ns(&disabled));
        on.push(sample_ns(&enabled));
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (off_min, on_min) = (min(&off), min(&on));
    let ratio = on_min / off_min;

    println!("# telemetry overhead: SchedulerCore::advance, {QUEUE} queued jobs");
    println!("disabled  min {:>12.0} ns/advance", off_min);
    println!("enabled   min {:>12.0} ns/advance", on_min);
    println!("ratio     {ratio:.4} (budget {BUDGET:.2})");
    let snap = enabled.snapshot().expect("enabled telemetry snapshots");
    println!(
        "instrumented run recorded {} dispatch spans, {} jobs started",
        snap.histograms
            .get("aequus_rms_dispatch_s")
            .map(|h| h.count)
            .unwrap_or(0),
        snap.counters
            .get("aequus_rms_started_total")
            .copied()
            .unwrap_or(0),
    );

    if check && ratio > BUDGET {
        eprintln!("FAIL: telemetry overhead {ratio:.4} exceeds budget {BUDGET:.2}");
        std::process::exit(1);
    }
    if check {
        println!("OK: within budget");
    }
}
