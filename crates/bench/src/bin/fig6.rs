//! Figure 6 reproduction: cumulative probability of job arrival per user,
//! empirical (thick) vs fitted model (thin).

use aequus_bench::jobs_arg;
use aequus_stats::{ContinuousDistribution, Ecdf};
use aequus_workload::models::arrival_model;
use aequus_workload::synthetic_year;
use aequus_workload::users::{UserClass, YEAR_S};

fn main() {
    let jobs = jobs_arg(200_000);
    let trace = synthetic_year(jobs, 2012);
    println!("# Figure 6: arrival-time CDFs, empirical vs model (100 points over the year)");
    print!("{:>5}", "day");
    for u in UserClass::ALL {
        print!(" {:>9}_e {:>9}_m", u.name(), u.name());
    }
    println!();
    let ecdfs: Vec<Ecdf> = UserClass::ALL
        .iter()
        .map(|u| Ecdf::new(&trace.submits(Some(u.name()))))
        .collect();
    let models: Vec<_> = UserClass::ALL.iter().map(|&u| arrival_model(u)).collect();
    for i in 0..=100 {
        let x = YEAR_S * i as f64 / 100.0;
        print!("{:>5.0}", x / 86400.0);
        for (e, m) in ecdfs.iter().zip(&models) {
            // Models are compared on the re-scaled (year-confined) range.
            let m_cdf = (m.cdf(x) / m.cdf(YEAR_S).max(1e-300)).min(1.0);
            print!(" {:>11.4} {:>11.4}", e.eval(x), m_cdf);
        }
        println!();
    }
}
