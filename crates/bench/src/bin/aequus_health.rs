//! `aequus-health` — render and gate a run's fairness-health report.
//!
//! Default mode runs the chaos grid (3 sites, 30% drop + a 300 s outage)
//! with health monitoring on and prints the gossip health map plus the SLO
//! alert stream. `--check` is the CI gate; it verifies the subsystem's
//! contract end to end:
//!
//! 1. the fault-free baseline fires zero alerts,
//! 2. the 30%-drop chaos scenario fires a staleness alert during the outage
//!    and resolves it after recovery (detection lag reported),
//! 3. health report and alert stream are byte-identical across worker
//!    counts {1, 2, 4},
//! 4. enabling the SLO engine + health map costs ≤ 5% sim wall time.
//!
//! Seeded by `AEQUUS_TEST_SEED` (default 42), like the test suites.

use aequus_services::RetryPolicy;
use aequus_sim::{FaultPlan, GridScenario, GridSimulation, Outage, SimResult};
use aequus_telemetry::slo::alerts_to_jsonl;
use aequus_telemetry::SloConfig;
use aequus_workload::{Trace, TraceJob};
use std::hint::black_box;
use std::time::Instant;

const OVERHEAD_BUDGET: f64 = 1.05;
const OVERHEAD_ROUNDS: usize = 12;
const OUTAGE_FROM_S: f64 = 300.0;
const OUTAGE_TO_S: f64 = 600.0;

fn base_seed() -> u64 {
    std::env::var("AEQUUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The chaos suite's 3-site grid (see `tests/chaos.rs`): fast cadences so
/// faults land between publishes, small retention so outages overflow into
/// resync/snapshot traffic.
fn chaos_scenario(seed: u64) -> GridScenario {
    let mut sc = GridScenario::national_testbed(
        &[
            ("U65", 0.6525),
            ("U30", 0.3049),
            ("U3", 0.0286),
            ("Uoth", 0.0140),
        ],
        seed,
    );
    sc.clusters.truncate(3);
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.timings.report_delay_s = 5.0;
    sc.timings.uss_publish_interval_s = 30.0;
    sc.timings.ums_refresh_interval_s = 30.0;
    sc.timings.fcs_refresh_interval_s = 30.0;
    sc.timings.lib_cache_ttl_s = 10.0;
    sc.timings.exchange_latency_s = 5.0;
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    sc
}

/// The 30%-drop chaos fault plan: heavy loss plus one 300 s outage of
/// site 1 while jobs are still submitting.
fn chaos_faults() -> FaultPlan {
    FaultPlan {
        drop_probability: 0.30,
        outages: vec![Outage {
            cluster: 1,
            from_s: OUTAGE_FROM_S,
            to_s: OUTAGE_TO_S,
        }],
        crashes: vec![],
    }
}

fn chaos_trace() -> Trace {
    Trace::new(
        (0..48)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    )
}

fn run(sc: GridScenario) -> SimResult {
    GridSimulation::new(sc).run(&chaos_trace(), 1800.0)
}

fn health_run(faults: FaultPlan, threads: usize) -> SimResult {
    let mut sc = chaos_scenario(base_seed())
        .with_health(SloConfig::default())
        .with_threads(threads);
    sc.faults = faults;
    run(sc)
}

fn render(result: &SimResult) {
    let report = result.health_report.as_ref().expect("health enabled");
    println!("{}", report.render());
    if result.alerts.is_empty() {
        println!("alerts: none");
    } else {
        println!("alerts:");
        print!("{}", alerts_to_jsonl(&result.alerts));
    }
}

/// A production-density trace for the overhead gate: the health subsystem's
/// cost is per sample barrier, so the honest overhead question is "what does
/// it cost on a run where the simulator is actually working?" — a 2000-job
/// backlog on the chaos grid, not the 48-job alert-calibration trace whose
/// whole run is ~1 ms of wall time.
fn dense_trace() -> Trace {
    Trace::new(
        (0..2000)
            .map(|i| TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 1.5,
                duration_s: 120.0,
                cores: 2,
            })
            .collect(),
    )
}

/// Sim wall seconds of one dense chaos run with the given health
/// configuration.
fn timed_run(health: bool) -> f64 {
    let mut sc = chaos_scenario(base_seed());
    sc.faults = chaos_faults();
    if health {
        sc = sc.with_health(SloConfig::default());
    }
    let trace = dense_trace();
    let start = Instant::now();
    black_box(GridSimulation::new(sc).run(&trace, 1800.0));
    start.elapsed().as_secs_f64()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut failed = false;
    let mut gate = |ok: bool, label: String| {
        println!("{} {label}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failed = true;
        }
    };

    // The headline run: chaos faults, health on.
    let chaos = health_run(chaos_faults(), 1);
    println!(
        "# aequus-health: chaos grid (30% drop + outage {OUTAGE_FROM_S:.0}-{OUTAGE_TO_S:.0}s), \
         seed {}",
        base_seed()
    );
    render(&chaos);
    if !check {
        return;
    }

    println!("# --check gates");

    // Gate 1: the fault-free baseline fires zero alerts.
    let clean = health_run(FaultPlan::none(), 1);
    let clean_firing = clean
        .alerts
        .iter()
        .filter(|a| a.transition == "firing")
        .count();
    gate(
        clean_firing == 0 && clean.alerts.is_empty(),
        format!(
            "fault-free baseline quiet ({} alert events, {} firing)",
            clean.alerts.len(),
            clean_firing
        ),
    );

    // Gate 2: the chaos run fires a staleness alert for a link into the
    // outaged site and resolves it after recovery.
    let fired = chaos
        .alerts
        .iter()
        .find(|a| a.transition == "firing" && a.rule.starts_with("staleness:"));
    let resolved = fired.is_some_and(|f| {
        chaos
            .alerts
            .iter()
            .any(|a| a.rule == f.rule && a.transition == "resolved" && a.t_s > f.t_s)
    });
    match fired {
        Some(f) => {
            let lag = f.t_s - OUTAGE_FROM_S;
            gate(
                resolved,
                format!(
                    "staleness alert {} fired t={:.0}s (detection lag {lag:.0}s) and resolved",
                    f.rule, f.t_s
                ),
            );
        }
        None => gate(false, "no staleness alert fired under chaos".to_string()),
    }

    // Gate 3: health report and alert stream are byte-identical across
    // worker counts.
    let report_json = chaos.health_report.as_ref().expect("report").to_json();
    let alerts_jsonl = alerts_to_jsonl(&chaos.alerts);
    let mut identical = true;
    for threads in [2, 4] {
        let par = health_run(chaos_faults(), threads);
        identical &= par.health_report.as_ref().expect("report").to_json() == report_json
            && alerts_to_jsonl(&par.alerts) == alerts_jsonl;
    }
    gate(
        identical,
        "health report + alert stream byte-identical at 1/2/4 workers".to_string(),
    );

    // Gate 4: the health subsystem costs ≤ 5% sim wall time on a
    // production-density run. Interleaved min-of-N — comparing the two
    // arms' floors discards scheduler and allocator noise, which on a
    // ~20 ms run is far larger than the subsystem's real cost.
    timed_run(false);
    timed_run(true);
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let mut pair_ratios = Vec::with_capacity(OVERHEAD_ROUNDS);
    for _ in 0..OVERHEAD_ROUNDS {
        let o = timed_run(false);
        let h = timed_run(true);
        off = off.min(o);
        on = on.min(h);
        pair_ratios.push(h / o);
    }
    pair_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let median = pair_ratios[OVERHEAD_ROUNDS / 2];
    let ratio = on / off;
    gate(
        ratio <= OVERHEAD_BUDGET,
        format!(
            "telemetry_overhead ratio {ratio:.4} (budget {OVERHEAD_BUDGET:.2}, \
             off {:.1}ms on {:.1}ms, median pair ratio {median:.4})",
            off * 1e3,
            on * 1e3
        ),
    );

    if failed {
        std::process::exit(1);
    }
    println!("OK: all health gates passed");
}
