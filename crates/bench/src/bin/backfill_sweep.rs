//! The dispatch-policy × fairshare-projection matrix (ROADMAP item 2): runs
//! every {FIFO, EASY, Conservative, SAF} × {Dictionary, Bitwise, Percental}
//! cell on the bursty mixed-width workload and prints fairness error,
//! convergence time, starvation age, utilization, and bounded slowdown per
//! cell, followed by the single-core FIFO ≡ EASY equivalence run, the
//! runtime-predictor accuracy comparison, and the scheduler hot-path
//! microbench.
//!
//! Usage: `backfill_sweep [JOBS] [--check]`
//!
//! With `--check` the CI smoke shape runs and the binary exits non-zero if:
//! - any matrix cell fails to complete its whole trace inside the horizon,
//!   or lacks a fairness-error row;
//! - FIFO and EASY diverge on the single-core baseline (no backfill window
//!   opens there, so the runs must be identical — this pins the extracted
//!   dispatch layer to the pre-refactor BENCH numbers);
//! - EASY or SAF fall below FIFO utilization on the bursty workload
//!   (backfill must pay for itself when wide jobs head-block the queue);
//! - the learned running-average predictor fails to beat 3×-padded
//!   walltime requests, the misprediction kill path never fires, or the
//!   prediction-accuracy telemetry records nothing;
//! - the scheduler hot path blows its budget: `pick_next` ≥ 1 µs on a
//!   10k-deep mixed queue, the EASY 10k scan above 5 ms, or 10k/1k scan
//!   growth beyond 40× (O(n log n) predicts ~13×; 40× still rejects an
//!   accidental O(n²) rewrite).

use aequus_bench::{
    jobs_arg, run_hotpath_bench, run_matrix, run_prediction_comparison, run_singlecore_equivalence,
    BackfillConfig,
};
use aequus_rms::DispatchOrder;

/// Hot-path budget: early-exit `pick_next` on a 10k-deep queue, ns.
const PICK_NEXT_BUDGET_NS: f64 = 1_000.0;
/// Hot-path budget: full EASY backfill scan at 10k jobs, µs.
const SCAN_10K_BUDGET_US: f64 = 5_000.0;
/// Hot-path budget: EASY 10k/1k scan growth ceiling.
const SCAN_GROWTH_CEILING: f64 = 40.0;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut cfg = if check {
        BackfillConfig::smoke()
    } else {
        BackfillConfig::full()
    };
    cfg.jobs = jobs_arg(cfg.jobs);
    let mut failures: Vec<String> = Vec::new();

    println!(
        "# Backfill sweep: {} jobs, {} sites x {} cores{}",
        cfg.jobs,
        cfg.sites,
        cfg.site_cores(),
        if check { " [smoke]" } else { "" }
    );
    println!(
        "{:<14} {:<12} {:>13} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "order",
        "projection",
        "converge(min)",
        "fair-err",
        "starve(s)",
        "util(%)",
        "slowdown",
        "backfills",
        "completed"
    );
    let matrix = run_matrix(&cfg);
    for cell in &matrix {
        println!(
            "{:<14} {:<12} {:>13} {:>10.3} {:>10.0} {:>9.1} {:>9.2} {:>10} {:>10}",
            cell.order.name(),
            cell.projection.build().name(),
            cell.converge_s
                .map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            cell.fairness_err,
            cell.starvation_age_s,
            100.0 * cell.utilization,
            cell.mean_slowdown,
            cell.backfills,
            cell.completed,
        );
        if (cell.completed as usize) < cfg.jobs {
            failures.push(format!(
                "{}/{}: {} of {} jobs completed inside horizon",
                cell.order.name(),
                cell.projection.build().name(),
                cell.completed,
                cfg.jobs
            ));
        }
        if !cell.fairness_err.is_finite() {
            failures.push(format!(
                "{}/{}: fairness error is not finite",
                cell.order.name(),
                cell.projection.build().name()
            ));
        }
    }
    // Backfill must pay for itself against FIFO on every projection.
    for proj_idx in 0..3 {
        let util_of = |order: DispatchOrder| {
            matrix
                .iter()
                .find(|c| c.order == order && c.projection == matrix[proj_idx].projection)
                .expect("full matrix")
                .utilization
        };
        let fifo = util_of(DispatchOrder::Fifo);
        for order in [DispatchOrder::Easy, DispatchOrder::Saf] {
            let util = util_of(order);
            if util < fifo {
                failures.push(format!(
                    "{} utilization {:.4} below FIFO {:.4} on {}",
                    order.name(),
                    util,
                    fifo,
                    matrix[proj_idx].projection.build().name()
                ));
            }
        }
    }

    println!("\n## Single-core baseline: FIFO vs EASY (must be identical)");
    let eq = run_singlecore_equivalence(if check { 1_500 } else { 6_000 }, cfg.seed);
    println!(
        "deviation {:.6} vs {:.6} | util {:.4} vs {:.4} | completed {} vs {} | easy backfills {}",
        eq.deviation.0,
        eq.deviation.1,
        eq.utilization.0,
        eq.utilization.1,
        eq.completed.0,
        eq.completed.1,
        eq.easy_backfills
    );
    if !eq.holds() {
        failures.push(format!("FIFO and EASY diverge on single-core work: {eq:?}"));
    }

    println!("\n## Runtime prediction under 3x-padded requests (EASY backfill)");
    let pred = run_prediction_comparison(&cfg);
    println!(
        "mean |rel err|: request {:.3}, running-avg {:.3}, last-k-max {:.3}",
        pred.request_err, pred.avg_err, pred.lastk_err
    );
    println!(
        "running-avg underestimates {} | kills under 0.7x requests {} | telemetry predictions {}",
        pred.avg_underestimates, pred.kills, pred.telemetry_predictions
    );
    println!(
        "utilization: request {:.1}% vs running-avg {:.1}%",
        100.0 * pred.utilization.0,
        100.0 * pred.utilization.1
    );
    if pred.avg_err >= pred.request_err {
        failures.push(format!(
            "running-average predictor ({:.3}) no better than padded requests ({:.3})",
            pred.avg_err, pred.request_err
        ));
    }
    if pred.kills == 0 {
        failures.push("misprediction kill path never fired under 0.7x requests".to_string());
    }
    if pred.telemetry_predictions == 0 {
        failures.push("prediction-accuracy telemetry recorded nothing".to_string());
    }

    println!("\n## Scheduler hot path (10k-deep queue)");
    let hot = run_hotpath_bench();
    println!(
        "pick_next {:.0} ns (worst {:.0} ns) | easy scan 1k {:.1} us, 10k {:.1} us ({:.1}x) | saf 10k {:.1} us | conservative 10k {:.1} us",
        hot.pick_next_ns,
        hot.pick_next_worst_ns,
        hot.easy_1k_us,
        hot.easy_10k_us,
        hot.scan_growth(),
        hot.saf_10k_us,
        hot.conservative_10k_us
    );
    if hot.pick_next_ns >= PICK_NEXT_BUDGET_NS {
        failures.push(format!(
            "pick_next {:.0} ns over the {PICK_NEXT_BUDGET_NS:.0} ns budget",
            hot.pick_next_ns
        ));
    }
    if hot.easy_10k_us >= SCAN_10K_BUDGET_US {
        failures.push(format!(
            "EASY 10k scan {:.0} us over the {SCAN_10K_BUDGET_US:.0} us budget",
            hot.easy_10k_us
        ));
    }
    if hot.scan_growth() >= SCAN_GROWTH_CEILING {
        failures.push(format!(
            "EASY scan grew {:.1}x from 1k to 10k (>= {SCAN_GROWTH_CEILING}x: superlinear blowup)",
            hot.scan_growth()
        ));
    }

    if check {
        if failures.is_empty() {
            println!("\nbackfill sweep gate: PASS");
        } else {
            println!("\nbackfill sweep gate: FAIL");
            for f in &failures {
                println!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}
