//! Ablation: the relative/absolute distance weight k ∈ {0, .25, .5, .75, 1}.
//! k = 0.5 is the paper's setting; higher k amplifies small users' priority
//! swings (relative component), lower k mutes them.

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    println!("# Ablation: distance weight k (paper: 0.5)");
    println!(
        "{:>5} {:>14} {:>16} {:>16}",
        "k", "converge(min)", "U3 max priority", "final deviation"
    );
    let ks = [0.0, 0.25, 0.5, 0.75, 1.0];
    let results = aequus_bench::parallel_sweep(&ks, |&k| {
        let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        scenario.fairshare.k_weight = k;
        GridSimulation::new(scenario).run(&trace, 1800.0)
    });
    for (k, result) in ks.iter().zip(&results) {
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        let max_u3 = result
            .metrics
            .priority_series("U3")
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>5.2} {:>14} {:>16.3} {:>16.3}",
            k,
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            max_u3,
            result.metrics.final_deviation()
        );
    }
    println!("\nexpected: U3 max priority ≈ k·1 + (1−k)·0.0286 — grows with k");
}
