//! Crash-recovery comparison: WAL-replay recovery vs snapshot-only
//! catch-up. For each seed the same mid-workload crash runs twice — with
//! the durable per-site store (checkpoint install + WAL replay, then
//! anti-entropy for the crash-window delta) and without it (cumulative
//! peer snapshots under a transfer surcharge) — and the table reports when
//! each run's cross-site usage views reconverged, plus the store's replay
//! and checkpoint work. The durable run must converge strictly earlier on
//! every seed; the binary exits non-zero otherwise, so it doubles as a
//! regression gate.
//!
//! The crash testbed comes from the shared sweep builder (compressed
//! 3-site grid, tight retry, snapshot surcharge) and the seeds run
//! concurrently through `parallel_sweep`.
//!
//! Usage: `recovery_sweep [JOBS]` (default 48, the chaos-suite workload).

use aequus_bench::{jobs_arg, run_recovery_sweep};

fn main() {
    let jobs = jobs_arg(48);
    let seeds = [42, 43, 44];
    let points = run_recovery_sweep(jobs, &seeds);

    println!("# Recovery sweep: WAL replay vs snapshot-only catch-up ({jobs} jobs)");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>9} {:>6} {:>6} {:>10} {:>10}",
        "seed",
        "durable_s",
        "volatile_s",
        "advantage_s",
        "replayed",
        "torn",
        "ckpts",
        "snaps_dur",
        "snaps_vol"
    );
    let fmt = |t: Option<f64>| {
        t.map(|t| format!("{t:.0}"))
            .unwrap_or_else(|| "never".into())
    };
    for p in &points {
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>9} {:>6} {:>6} {:>10} {:>10}",
            p.seed,
            fmt(p.durable_convergence_s),
            fmt(p.volatile_convergence_s),
            fmt(p.advantage_s),
            p.frames_replayed,
            p.torn_tails,
            p.checkpoints,
            p.durable_snapshots,
            p.volatile_snapshots,
        );
    }

    let mut failed = false;
    for p in &points {
        match p.advantage_s {
            Some(adv) if adv > 0.0 => {}
            other => {
                eprintln!(
                    "FAIL seed {}: durable recovery must beat snapshot-only catch-up (advantage {:?})",
                    p.seed, other
                );
                failed = true;
            }
        }
        if p.frames_replayed == 0 || p.torn_tails == 0 {
            eprintln!(
                "FAIL seed {}: crash recovery exercised no WAL replay (replayed {}, torn {})",
                p.seed, p.frames_replayed, p.torn_tails
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: WAL replay converged faster than snapshot-only catch-up on every seed");
}
