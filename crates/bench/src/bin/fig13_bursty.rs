//! Figure 13 reproduction: bursty usage test. Job mix 45.5/6.5/45.5/3,
//! usage shares 47/38.5/12/2.5, U3 burst shifted to one third of the run.
//! Shape targets: balance between minutes ~80 and ~130 (U3's unused
//! allocation divided among the others), U3 priority peaking at
//! 0.5·(1+0.12) = 0.56, readjustment after the burst at the ~130 min mark.

use aequus_bench::{jobs_arg, report, run_bursty, PAPER_JOBS};

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let result = run_bursty(jobs, 42);
    let m = &result.metrics;
    println!(
        "{}",
        report::render_series(
            "Figure 13a: bursty — usage shares (targets .47/.385/.12/.025)",
            &[
                ("U65", m.usage_share_series("U65")),
                ("U30", m.usage_share_series("U30")),
                ("U3", m.usage_share_series("U3")),
                ("Uoth", m.usage_share_series("Uoth")),
            ],
            5,
        )
    );
    println!(
        "{}",
        report::render_series(
            "Figure 13b: bursty — priorities",
            &[
                ("U65", m.priority_series("U65")),
                ("U30", m.priority_series("U30")),
                ("U3", m.priority_series("U3")),
                ("Uoth", m.priority_series("Uoth")),
            ],
            5,
        )
    );
    // Figure 13c: the job arrival model (jobs per minute per user).
    println!("# Figure 13c: arrivals per minute (see submissions_per_minute)");
    let spm = &m.submissions_per_minute;
    for (minute, count) in spm.iter().enumerate().step_by(10) {
        println!("{minute:>6} {count:>8}");
    }
    let max_u3 = m
        .priority_series("U3")
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nU3 peak priority: {:.3} (paper bound: 0.5*(1+0.12) = 0.56)",
        max_u3
    );
    let active_windows: Vec<String> = m
        .active_balance_windows(aequus_bench::BALANCE_EPS)
        .iter()
        .filter(|(a, b)| b - a >= 600.0)
        .map(|(a, b)| format!("[{:.0},{:.0}]min", a / 60.0, b / 60.0))
        .collect();
    println!(
        "active-user balance windows (idle users excluded, paper's balance notion): {}",
        if active_windows.is_empty() {
            "none".to_string()
        } else {
            active_windows.join(" ")
        }
    );
    println!("{}", report::render_summary("bursty", &result));
}
