//! Extension experiment: local administrative autonomy (§II-A's core design
//! goal — "local site administrations \[can\] manage the coarse allocation of
//! resources to, e.g., a grid without having to manage the subdivision of
//! usage within the grid itself... local administrators assign parts of the
//! resources to one or more grids while retaining full control").
//!
//! One of the six sites overrides the grid-wide flat policy with its own
//! tree: a local user owns 70% of that site, grid users share the remaining
//! 30% (subdivided by the grid's own proportions). The experiment verifies
//! (a) the local user wins on its home site when over-subscribed grid users
//! compete, and (b) the other five sites are unaffected.

use aequus_bench::{baseline_trace, jobs_arg};
use aequus_core::policy::{PolicyNode, PolicyTree};
use aequus_core::GridUser;
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;
use aequus_workload::{Trace, TraceJob};

fn main() {
    let jobs = jobs_arg(20_000);
    let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
    // Site 0's local policy: local-hpc 70%, the grid's four users under 30%.
    let local_policy = PolicyTree::new(PolicyNode::group(
        "root",
        1.0,
        vec![
            PolicyNode::user("local-hpc", 0.7),
            PolicyNode::group(
                "grid",
                0.3,
                baseline_policy_shares()
                    .iter()
                    .map(|(n, s)| PolicyNode::user(*n, *s))
                    .collect(),
            ),
        ],
    ))
    .unwrap();
    scenario.clusters[0].policy_override = Some(local_policy);

    // The grid workload plus a steady local stream aimed at site 0. The
    // submission host spreads grid jobs; local jobs are injected as part of
    // the trace (they resolve only on site 0, elsewhere they are unknown).
    let grid_trace = baseline_trace(jobs, 42);
    let local_jobs: Vec<TraceJob> = (0..jobs / 20)
        .map(|i| TraceJob {
            user: "local-hpc".to_string(),
            submit_s: i as f64 * (6.0 * 3600.0) / (jobs as f64 / 20.0),
            duration_s: 300.0,
            cores: 1,
        })
        .collect();
    let trace = grid_trace.merged(&Trace::new(local_jobs));
    let result = GridSimulation::new(scenario).run(&trace, 1800.0);

    println!("# Local autonomy: site 0 reserves 70% for local-hpc, 30% for the grid");
    let usage = result.usage_by_user();
    let total: f64 = usage.values().sum();
    for (user, v) in &usage {
        println!("completed usage {user}: {:.4} of total", v / total);
    }
    // Per-site priority of U65 at the end: site 0 judges grid users against
    // a 30% envelope, the rest against the full machine.
    if let Some(last) = result.metrics.samples().last() {
        println!("\nfinal per-site U65 priority:");
        for (i, view) in last.per_site_priority.iter().enumerate() {
            println!(
                "  site {i}{}: {:?}",
                if i == 0 { " (local policy)" } else { "" },
                view.get("U65")
            );
        }
    }
    let local_usage = usage
        .get(&GridUser::new("local-hpc"))
        .copied()
        .unwrap_or(0.0);
    println!(
        "\nlocal-hpc usage: {:.0} core-s ({:.1}% of grid total); recognized by site 0's \
         policy (70% target), neutral factor elsewhere",
        local_usage,
        100.0 * local_usage / total
    );
}
