//! Figure 7 reproduction: empirical CDF of job sizes (durations) per user.
//! Shape target: U65/U3/Uoth focused in [0, 6e5]; U30 with a larger tail and
//! generally larger job sizes (larger median).

use aequus_bench::jobs_arg;
use aequus_stats::Ecdf;
use aequus_workload::synthetic_year;
use aequus_workload::users::UserClass;

fn main() {
    let jobs = jobs_arg(200_000);
    let trace = synthetic_year(jobs, 2012);
    let ecdfs: Vec<Ecdf> = UserClass::ALL
        .iter()
        .map(|u| Ecdf::new(&trace.durations(Some(u.name()))))
        .collect();
    println!("# Figure 7: job-size CDFs (log-spaced durations, seconds)");
    print!("{:>12}", "duration_s");
    for u in UserClass::ALL {
        print!(" {:>9}", u.name());
    }
    println!();
    for i in 0..=60 {
        let x = 10f64.powf(i as f64 / 10.0); // 1 s .. 1e6 s
        print!("{:>12.1}", x);
        for e in &ecdfs {
            print!(" {:>9.4}", e.eval(x));
        }
        println!();
    }
    for (u, e) in UserClass::ALL.iter().zip(&ecdfs) {
        eprintln!(
            "{}: median {:.0}s, P(x <= 6e5) = {:.4}",
            u.name(),
            e.quantile(0.5).unwrap_or(0.0),
            e.eval(6.0e5)
        );
    }
}
