//! Extension experiment: hierarchical policies end-to-end. A site policy
//! reserves shares for two research groups ("hep" and "bio", the mounted
//! grid sub-policies of §II-A); usage storms inside one group must not
//! reorder users inside the other when the projection preserves subgroup
//! isolation (dictionary/bitwise), and may leak with percental — Table I's
//! properties observed through the *fully integrated* stack.

use aequus_bench::jobs_arg;
use aequus_core::policy::{PolicyNode, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::{Trace, TraceJob};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hierarchy() -> PolicyTree {
    PolicyTree::new(PolicyNode::group(
        "root",
        1.0,
        vec![
            PolicyNode::group(
                "hep",
                0.6,
                vec![
                    PolicyNode::user("hep-sim", 0.7),
                    PolicyNode::user("hep-ana", 0.3),
                ],
            ),
            // bio-seq: high target *and* high usage; bio-fold: low/low —
            // the configuration where percental's share products make the
            // within-group order depend on the sibling subtree's usage.
            PolicyNode::group(
                "bio",
                0.4,
                vec![
                    PolicyNode::user("bio-seq", 0.8),
                    PolicyNode::user("bio-fold", 0.2),
                ],
            ),
        ],
    ))
    .unwrap()
}

/// Jobs: bio users submit steadily; hep users storm in the second half
/// (the cross-subtree disturbance).
fn trace(jobs: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = 6.0 * 3600.0;
    let mut out = Vec::new();
    for i in 0..jobs {
        let (user, t) = if i % 2 == 0 {
            let u = if rng.gen_bool(0.9) {
                "bio-seq"
            } else {
                "bio-fold"
            };
            (u, rng.gen::<f64>() * len)
        } else {
            let u = if rng.gen_bool(0.8) {
                "hep-sim"
            } else {
                "hep-ana"
            };
            // Storm: second half only.
            (u, len * (0.5 + 0.5 * rng.gen::<f64>()))
        };
        out.push(TraceJob {
            user: user.to_string(),
            submit_s: t,
            duration_s: 60.0 + rng.gen::<f64>() * 400.0,
            cores: 1,
        });
    }
    Trace::new(out)
}

fn main() {
    let jobs = jobs_arg(20_000);
    println!(
        "# Hierarchical policy end-to-end: /hep (60%: sim 70/ana 30), /bio (40%: seq 80/fold 20)"
    );
    for projection in ProjectionKind::ALL {
        let scenario =
            GridScenario::national_testbed(&[("placeholder", 1.0)], 42).with_policy(hierarchy());
        let mut scenario = scenario;
        scenario.projection = projection;
        let result = GridSimulation::new(scenario).run(&trace(jobs, 42), 1800.0);
        // During the hep storm (second half), check bio-internal ordering
        // stability: count samples where bio-seq/bio-fold *factor* order
        // disagrees with their *vector* (distance) order.
        let mut flips = 0usize;
        let mut total = 0usize;
        for s in result.metrics.samples() {
            if s.t_s < 3.0 * 3600.0 {
                continue;
            }
            let (Some(seq), Some(fold)) = (s.users.get("bio-seq"), s.users.get("bio-fold")) else {
                continue;
            };
            if (seq.priority - fold.priority).abs() < 1e-6 {
                continue; // tie: no order to preserve
            }
            total += 1;
            let vector_order = seq.priority > fold.priority;
            let factor_order = seq.factor > fold.factor;
            if vector_order != factor_order {
                flips += 1;
            }
        }
        println!(
            "{:<12} bio-internal order flips vs fairshare distance: {:>4}/{:<4} samples",
            format!("{projection:?}"),
            flips,
            total
        );
    }
    println!("\nexpected: Dictionary/Bitwise preserve within-group order (≈0 flips);");
    println!("Percental may flip bio-internal order when hep's usage share moves (Table I).");
}
