//! Continuous-profiler overhead smoke check, the profiler's analogue of
//! `telemetry_overhead`: a full (small) simulation with the profiler in
//! `Counters` mode must stay within 5% of the telemetry-only baseline, and
//! `Full` mode (wall timers + the bounded span ring) within 10%. Run with
//! `--check` to exit non-zero when either mode exceeds its budget (the CI
//! gate).
//!
//! The harness mirrors `telemetry_overhead`: interleave one baseline and
//! both profiled configurations each round so drift (thermal, host
//! scheduler) hits all equally, then compare *minima* — the noise-robust
//! statistic for "how fast can this configuration go".
//!
//! Unlike `telemetry_overhead`'s microbenchmark of one scheduler advance,
//! the sample here is a whole serial simulation: the profiler hooks live in
//! the engine's epoch loop and the cross-shard send path, which no
//! single-component harness exercises.

use aequus_bench::{uniform_trace, ScenarioBuilder};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_telemetry::ProfileMode;
use aequus_workload::users::baseline_policy_shares;
use std::hint::black_box;
use std::time::Instant;

const JOBS: usize = 960;
const ROUNDS: usize = 30;
const WARMUP: usize = 3;
/// `Counters` promises zero clock reads on the hot path — same budget as
/// the metrics registry.
const COUNTERS_BUDGET: f64 = 1.05;
/// `Full` reads the wall clock at epoch granularity and keeps a bounded
/// span ring; twice the allowance.
const FULL_BUDGET: f64 = 1.10;

/// The compressed 3-site chaos-suite grid, serial, telemetry on — the
/// profiler rides on telemetry, so telemetry-only is the honest baseline.
fn scenario(mode: ProfileMode) -> GridScenario {
    ScenarioBuilder::testbed(&baseline_policy_shares(), 42)
        .sites(3)
        .nodes_per_site(4)
        .compressed()
        .telemetry()
        .profiling(mode)
        .build()
}

/// One sample: a full simulation of the fixed workload, timed end to end.
/// The trace is dense on purpose (a job every 1.5 s): the profiler's cost
/// is per *epoch*, so the gate must measure epochs that carry a
/// representative amount of work, not idle barrier crossings.
fn sample_ns(mode: ProfileMode) -> f64 {
    let trace = uniform_trace(JOBS, 0.75, 40.0);
    let start = Instant::now();
    let result = GridSimulation::new(scenario(mode)).run(&trace, 1800.0);
    black_box(&result);
    start.elapsed().as_nanos() as f64
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("# profiler overhead: {JOBS}-job serial simulation, minima over {ROUNDS} rounds");
    let modes = [ProfileMode::Off, ProfileMode::Counters, ProfileMode::Full];
    for _ in 0..WARMUP {
        for m in modes {
            sample_ns(m);
        }
    }
    let mut samples = [const { Vec::new() }; 3];
    for _ in 0..ROUNDS {
        for (i, m) in modes.into_iter().enumerate() {
            samples[i].push(sample_ns(m));
        }
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let base = min(&samples[0]);
    let mut failed = false;
    let mut gate = |name: &str, ratio: f64, budget: f64| {
        println!("ratio     {ratio:.4} (budget {budget:.2}) [{name}]");
        if ratio > budget {
            eprintln!("FAIL: {name} overhead {ratio:.4} exceeds budget {budget:.2}");
            failed = true;
        }
    };
    gate(
        "profiler-counters",
        min(&samples[1]) / base,
        COUNTERS_BUDGET,
    );
    gate("profiler-full", min(&samples[2]) / base, FULL_BUDGET);

    if check && failed {
        std::process::exit(1);
    }
    if check {
        println!("OK: within budget");
    }
}
