//! Table III reproduction: job-duration medians, BIC-selected distributions,
//! and KS values, re-derived from a synthetic year trace.

use aequus_bench::jobs_arg;
use aequus_workload::characterize::{render_rows, table3_duration};
use aequus_workload::synthetic_year;

fn main() {
    let jobs = jobs_arg(200_000);
    eprintln!("generating {jobs}-job synthetic year trace + fitting (BIC over 18 families)...");
    let trace = synthetic_year(jobs, 2012);
    let rows = table3_duration(&trace);
    println!(
        "{}",
        render_rows(
            "Table III: Job duration — median (s), best fitted distribution, KS",
            &rows
        )
    );
    println!("paper (shape targets): BS for U65 & Uoth, Weibull for U30, Burr for U3");
    println!("(U3 worst fit); U65 median = BS β ≈ 1.76e4 s; U3 jobs ≪ U65 jobs.");
}
