//! Engine-scaling sweep: wall-clock time of the sharded engine at 1, 2, 4,
//! and 8 shard workers on a nation-scale grid (default: 100k users × 32
//! sites × 32 hosts — the ROADMAP's first waypoint past the paper's
//! 7-machine test bed), with a built-in determinism cross-check: every
//! multi-thread run must replay the serial run seed-for-seed.
//!
//! Usage: `scale_sweep [--check] [USERS SITES NODES JOBS]`
//!
//! Without flags the full configuration runs and the table prints measured
//! wall clock, events/second, and speedup per worker count; four positional
//! numbers override the shape (for tracing the threads × users × sites
//! curve on whatever hardware is at hand). With `--check` a CI-sized smoke
//! configuration runs instead and the binary exits non-zero if (a) any
//! worker count diverges from the serial run, ever, (b) the continuous
//! profiler's folded stacks differ between any two worker counts (the
//! profiler's schedule-derived view must not depend on how the schedule was
//! executed), or (c) the host has ≥ 8 cores and the best speedup falls
//! short of the 4× acceptance target. On smaller hosts the speedup gate is
//! reported but not enforced — wall-clock parallel speedup is a property of
//! the hardware; determinism (both the engine's and the profiler's) is not.
//!
//! Every sweep runs fully profiled and leaves two artifacts next to the
//! snapshots: `SCALE_TRACE.json`, the serial run's Chrome trace-event file
//! (load it in `about://tracing` or <https://ui.perfetto.dev> — one track
//! per shard, epochs as frames, barrier waits as spans), and
//! `SCALE_PROFILE.folded`, the folded-stacks profile flamegraph tooling
//! consumes.
//!
//! The speedup target is stated against the full configuration on 8
//! dedicated cores; the smoke shape gates the machinery, not the headline
//! number.

use aequus_bench::{run_scale_sweep, ScaleConfig};

const TRACE_OUT: &str = "SCALE_TRACE.json";
const FOLDED_OUT: &str = "SCALE_PROFILE.folded";

/// The acceptance target: ≥4× wall-clock speedup on ≥8 cores.
const SPEEDUP_TARGET: f64 = 4.0;
const SPEEDUP_CORES: usize = 8;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut cfg = if check {
        ScaleConfig::smoke()
    } else {
        ScaleConfig::full()
    };
    let shape: Vec<usize> = std::env::args()
        .skip(1)
        .filter(|a| a != "--check")
        .filter_map(|a| a.parse().ok())
        .collect();
    if let [users, sites, nodes, jobs] = shape[..] {
        cfg.users = users;
        cfg.sites = sites.max(1);
        cfg.nodes_per_site = nodes.max(1) as u32;
        cfg.jobs = jobs;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Scale sweep: {} users x {} sites x {} hosts, {} jobs, {} host cores{}",
        cfg.users,
        cfg.sites,
        cfg.nodes_per_site,
        cfg.jobs,
        cores,
        if check { " [smoke]" } else { "" }
    );

    let sweep = run_scale_sweep(&cfg);
    println!(
        "{:<8} {:>10} {:>14} {:>10} {:>12}",
        "threads", "wall_s", "events/s", "speedup", "completed"
    );
    for p in &sweep.points {
        println!(
            "{:<8} {:>10.3} {:>14.0} {:>9.2}x {:>12}",
            p.threads, p.wall_s, p.events_per_sec, p.speedup_x, p.completed
        );
    }

    // The serial run's profile is the reference artifact pair: the Chrome
    // trace carries wall time (per-host, per-run), the folded stacks carry
    // only schedule-derived values and must match every other worker count
    // byte for byte.
    if let Some((_, profile)) = sweep.profiles.first() {
        std::fs::write(TRACE_OUT, profile.to_chrome_trace()).expect("write chrome trace");
        std::fs::write(FOLDED_OUT, profile.to_folded()).expect("write folded profile");
        println!("wrote {TRACE_OUT} and {FOLDED_OUT}");
    }

    let mut failed = false;
    match &sweep.mismatch {
        None => println!("OK: every worker count replayed the serial run seed-for-seed"),
        Some(why) => {
            eprintln!("FAIL: thread-count determinism violated — {why}");
            failed = true;
        }
    }
    match sweep.folded_mismatch() {
        None => println!("OK: folded profile byte-identical across all worker counts"),
        Some(why) => {
            eprintln!("FAIL: profiler determinism violated — {why}");
            failed = true;
        }
    }

    let best = sweep.best_speedup();
    if cores >= SPEEDUP_CORES {
        if best >= SPEEDUP_TARGET {
            println!("OK: best speedup {best:.2}x meets the {SPEEDUP_TARGET}x target");
        } else {
            eprintln!(
                "FAIL: best speedup {best:.2}x below the {SPEEDUP_TARGET}x target on {cores} cores"
            );
            failed = true;
        }
    } else {
        println!(
            "note: best speedup {best:.2}x; {SPEEDUP_TARGET}x gate needs >= {SPEEDUP_CORES} \
             cores (host has {cores}), skipped"
        );
    }

    if failed {
        std::process::exit(1);
    }
}
