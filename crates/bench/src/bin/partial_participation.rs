//! §IV-A-4 reproduction: partial cluster participation. Site 1 reads global
//! data but does not contribute; site 2 contributes but prioritizes on local
//! data only. Shape targets: the read-only site's priorities stay well
//! aligned with fully participating sites; the local-only site converges to
//! the same levels but slower and with more fluctuation; no noticeable
//! impact on the global prioritization.

use aequus_bench::{jobs_arg, run_baseline, run_partial_participation, PAPER_JOBS};

fn stats(series: &[f64]) -> (f64, f64) {
    let n = series.len().max(1) as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let result = run_partial_participation(jobs, 42);
    let reference = run_baseline(jobs, 42);

    println!("# Partial participation: per-site priority alignment vs site 0 (full)");
    println!("site roles: 0,3,4,5 = Full | 1 = ReadOnly | 2 = LocalOnly");
    println!(
        "{:<6} {:<10} {:>18} {:>18}",
        "site", "role", "mean |Δprio| (U65)", "prio stddev (U65)"
    );
    let samples = result.metrics.samples();
    for site in 0..6 {
        let role = match site {
            1 => "ReadOnly",
            2 => "LocalOnly",
            _ => "Full",
        };
        let mut diffs = Vec::new();
        let mut series = Vec::new();
        for s in samples {
            if let (Some(p), Some(p0)) = (
                s.per_site_priority.get(site).and_then(|m| m.get("U65")),
                s.per_site_priority.first().and_then(|m| m.get("U65")),
            ) {
                diffs.push((p - p0).abs());
                series.push(*p);
            }
        }
        let (mean_diff, _) = stats(&diffs);
        let (_, stddev) = stats(&series);
        println!(
            "{:<6} {:<10} {:>18.4} {:>18.4}",
            site, role, mean_diff, stddev
        );
    }

    // Global impact check: full sites' convergence vs an all-full reference.
    let conv_partial = result
        .metrics
        .convergence_time(aequus_bench::BALANCE_EPS, aequus_bench::BALANCE_DWELL_S);
    let conv_reference = reference
        .metrics
        .convergence_time(aequus_bench::BALANCE_EPS, aequus_bench::BALANCE_DWELL_S);
    println!(
        "\nglobal convergence: partial-participation run {:?} min vs all-full reference {:?} min",
        conv_partial.map(|t| (t / 60.0).round()),
        conv_reference.map(|t| (t / 60.0).round())
    );
}
