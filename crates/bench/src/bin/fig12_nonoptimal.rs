//! Figure 12 reproduction: non-optimal policy test. Same workload as the
//! baseline, but policy targets 70/20/8/2 against actual usage of
//! 65.25/30.49/2.86/1.40. Shape targets: close to balance in the 120–180
//! minute range; balance lost when U65 jobs dry up; re-convergence when U65
//! jobs return; late-run dominated by U30 jobs running despite low priority.

use aequus_bench::{jobs_arg, report, run_nonoptimal, PAPER_JOBS};

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let result = run_nonoptimal(jobs, 42);
    let m = &result.metrics;
    println!(
        "{}",
        report::render_series(
            "Figure 12a: non-optimal policy — usage shares (targets .70/.20/.08/.02)",
            &[
                ("U65", m.usage_share_series("U65")),
                ("U30", m.usage_share_series("U30")),
                ("U3", m.usage_share_series("U3")),
                ("Uoth", m.usage_share_series("Uoth")),
            ],
            5,
        )
    );
    println!(
        "{}",
        report::render_series(
            "Figure 12b: non-optimal policy — priorities",
            &[
                ("U65", m.priority_series("U65")),
                ("U30", m.priority_series("U30")),
                ("U3", m.priority_series("U3")),
                ("Uoth", m.priority_series("Uoth")),
            ],
            5,
        )
    );
    println!("{}", report::render_summary("non-optimal policy", &result));
}
