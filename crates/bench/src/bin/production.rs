//! §IV production-deployment reproduction: Aequus beside SLURM on a single
//! HPC2N-shaped cluster (68 nodes × 8 cores = 544 cores), ~40,000 jobs per
//! month, multi-month horizon. Shape targets: stable long-run operation, no
//! queue blow-up, no fairshare pipeline failures.

use aequus_bench::jobs_arg;
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;
use aequus_workload::{test_trace, TestTraceConfig};

fn main() {
    // Three months at ~40k jobs/month.
    let months = 3usize;
    let jobs = jobs_arg(40_000 * months);
    let horizon_s = months as f64 * 30.0 * 86400.0;
    let mut scenario = GridScenario::production_cluster(&baseline_policy_shares(), 42);
    // Production cadence: minute-scale ticks and service intervals.
    scenario.tick_interval_s = 60.0;
    scenario.sample_interval_s = 3600.0;
    scenario.usage_slot_s = 3600.0;
    scenario.timings.uss_publish_interval_s = 300.0;
    scenario.timings.ums_refresh_interval_s = 300.0;
    scenario.timings.fcs_refresh_interval_s = 300.0;
    scenario.fairshare.decay = aequus_core::DecayPolicy::Exponential {
        half_life_s: 7.0 * 86400.0, // the production default: one week
    };
    let trace = test_trace(&TestTraceConfig {
        total_jobs: jobs,
        test_len_s: horizon_s,
        load_target: 0.85, // production clusters run hot but not saturated
        capacity_cores: scenario.total_cores(),
        ..Default::default()
    });
    eprintln!(
        "simulating {} jobs over {} months on 544 cores...",
        trace.len(),
        months
    );
    let result = GridSimulation::new(scenario).run(&trace, 86400.0);
    println!("# Production statistics (HPC2N shape)");
    println!(
        "jobs/month: {:.0} (paper: ~40,000)",
        result.total_completed() as f64 / months as f64
    );
    println!(
        "completed {}/{} ({:.2}%)",
        result.total_completed(),
        result.total_submitted(),
        100.0 * result.total_completed() as f64 / result.total_submitted().max(1) as f64
    );
    println!(
        "mean utilization: {:.1}%",
        100.0 * result.mean_utilization()
    );
    let max_pending = result
        .metrics
        .samples()
        .iter()
        .map(|s| s.pending)
        .max()
        .unwrap_or(0);
    let final_pending = result
        .metrics
        .samples()
        .last()
        .map(|s| s.pending)
        .unwrap_or(0);
    println!("peak queue: {max_pending} jobs; final queue: {final_pending} (stability: bounded)");
    println!(
        "mean wait: {:.1} min",
        result.cluster_stats[0].mean_wait_s() / 60.0
    );
}
