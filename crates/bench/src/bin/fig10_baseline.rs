//! Baseline convergence run (the reference case of §IV-A, called Figure 10a
//! by §IV-A-2): policy = actual usage shares, 6 h, 43,200 jobs, 95% load.

use aequus_bench::{jobs_arg, report, run_baseline, PAPER_JOBS};

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let result = run_baseline(jobs, 42);
    let m = &result.metrics;
    println!(
        "{}",
        report::render_series(
            "Figure 10a: baseline — per-user usage share (targets .6525/.3049/.0286/.0140)",
            &[
                ("U65", m.usage_share_series("U65")),
                ("U30", m.usage_share_series("U30")),
                ("U3", m.usage_share_series("U3")),
                ("Uoth", m.usage_share_series("Uoth")),
            ],
            5,
        )
    );
    println!(
        "{}",
        report::render_series(
            "Figure 10b: baseline — per-user priority (fairshare distance)",
            &[
                ("U65", m.priority_series("U65")),
                ("U30", m.priority_series("U30")),
                ("U3", m.priority_series("U3")),
                ("Uoth", m.priority_series("Uoth")),
            ],
            5,
        )
    );
    println!("{}", report::render_summary("baseline", &result));
}
