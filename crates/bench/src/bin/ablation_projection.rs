//! Ablation: projection algorithm end-to-end (dictionary vs bitwise vs
//! percental under the full integrated stack). The paper uses percental in
//! production and all tests; Table I predicts all three sort correctly, so
//! end-to-end convergence should be comparable.

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_core::projection::ProjectionKind;
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    println!("# Ablation: projection algorithm, end-to-end");
    println!(
        "{:<12} {:>14} {:>16} {:>14}",
        "projection", "converge(min)", "final deviation", "completed"
    );
    for kind in ProjectionKind::ALL {
        let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        scenario.projection = kind;
        let result = GridSimulation::new(scenario).run(&trace, 1800.0);
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        println!(
            "{:<12} {:>14} {:>16.3} {:>14}",
            format!("{kind:?}"),
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            result.metrics.final_deviation(),
            result.total_completed()
        );
    }
}
