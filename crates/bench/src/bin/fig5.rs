//! Figure 5 reproduction: probability density of U65 job arrival over the
//! year (1-day bins), empirical histogram vs the Eq. (1) composite model,
//! with the four phase boundaries.

use aequus_bench::jobs_arg;
use aequus_stats::{ContinuousDistribution, Histogram};
use aequus_workload::models::{u65_composite_arrival, u65_phase_bounds};
use aequus_workload::synthetic_year;
use aequus_workload::users::YEAR_S;

fn main() {
    let jobs = jobs_arg(200_000);
    let trace = synthetic_year(jobs, 2012);
    let mut hist = Histogram::new(0.0, YEAR_S, 365);
    for j in trace.jobs() {
        if j.user == "U65" {
            hist.add(j.submit_s);
        }
    }
    let model = u65_composite_arrival();
    println!("# Figure 5: U65 arrival density, empirical vs Eq.(1) composite");
    println!(
        "# phase boundaries (days): {:?}",
        u65_phase_bounds().map(|(lo, _)| (lo / 86400.0) as u32)
    );
    println!("{:>5} {:>14} {:>14}", "day", "empirical_pdf", "model_pdf");
    let density = hist.density();
    for (d, dens) in density.iter().enumerate() {
        let x = hist.bin_center(d);
        println!("{:>5} {:>14.6e} {:>14.6e}", d, dens, model.pdf(x));
    }
}
