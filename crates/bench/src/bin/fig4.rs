//! Figure 4 reproduction: job arrivals as a function of time, one-day bins,
//! total jobs vs U65 jobs.

use aequus_bench::jobs_arg;
use aequus_stats::Histogram;
use aequus_workload::synthetic_year;
use aequus_workload::users::{DAY_S, YEAR_S};

fn main() {
    let jobs = jobs_arg(200_000);
    let trace = synthetic_year(jobs, 2012);
    let mut total = Histogram::new(0.0, YEAR_S, 365);
    let mut u65 = Histogram::new(0.0, YEAR_S, 365);
    for j in trace.jobs() {
        total.add(j.submit_s);
        if j.user == "U65" {
            u65.add(j.submit_s);
        }
    }
    println!("# Figure 4: jobs per day (total vs U65), bin = 1 day");
    println!("{:>5} {:>9} {:>9}", "day", "total", "U65");
    for d in 0..365 {
        println!("{:>5} {:>9} {:>9}", d, total.counts()[d], u65.counts()[d]);
    }
    // Shape summary: U65 dominance.
    let u65_frac = u65.total() as f64 / total.total() as f64;
    eprintln!("U65 fraction of jobs: {:.3} (paper: 0.8103)", u65_frac);
    let _ = DAY_S;
}
