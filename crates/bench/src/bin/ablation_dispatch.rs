//! Ablation: stochastic vs round-robin grid dispatch. Paper: "both ... have
//! been evaluated without any noticeable difference".

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_sim::{DispatchPolicy, GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    println!("# Ablation: dispatch policy");
    println!(
        "{:<12} {:>14} {:>16} {:>12}",
        "dispatch", "converge(min)", "final deviation", "util(%)"
    );
    for policy in [DispatchPolicy::Stochastic, DispatchPolicy::RoundRobin] {
        let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42);
        scenario.dispatch = policy;
        let result = GridSimulation::new(scenario).run(&trace, 1800.0);
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        println!(
            "{:<12} {:>14} {:>16.3} {:>12.1}",
            format!("{policy:?}"),
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            result.metrics.final_deviation(),
            100.0 * result.mean_utilization()
        );
    }
    println!("\nexpected: no noticeable difference (paper's finding)");
}
