//! Ablation: queue dispatch order (FIFO / EASY / Conservative / SAF) on
//! the paper's baseline trace, via the pluggable `aequus_rms::dispatch`
//! policy suite. The paper's grid-level routing claim (stochastic vs
//! round-robin: "no noticeable difference") is covered by
//! `tests/paper_claims.rs`; this ablation swaps the *per-cluster* dispatch
//! decision layer instead.
//!
//! On the baseline single-core trace the four orders must agree almost
//! exactly — with 1-core jobs the head of the queue fits whenever any core
//! is free, so no backfill window ever opens. `backfill_sweep` runs the
//! mixed-width bursty workload where they differentiate.

use aequus_bench::{baseline_trace, jobs_arg, BALANCE_DWELL_S, BALANCE_EPS};
use aequus_rms::{DispatchConfig, DispatchOrder};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;

fn main() {
    let jobs = jobs_arg(15_000);
    let trace = baseline_trace(jobs, 42);
    println!("# Ablation: queue dispatch order");
    println!(
        "{:<14} {:>14} {:>16} {:>12} {:>10}",
        "order", "converge(min)", "final deviation", "util(%)", "backfills"
    );
    for order in DispatchOrder::ALL {
        let scenario = GridScenario::national_testbed(&baseline_policy_shares(), 42).with_dispatch(
            DispatchConfig {
                order,
                ..DispatchConfig::default()
            },
        );
        let result = GridSimulation::new(scenario).run(&trace, 1800.0);
        let conv = result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S);
        let backfills: u64 = result.cluster_stats.iter().map(|s| s.backfilled).sum();
        println!(
            "{:<14} {:>14} {:>16.3} {:>12.1} {:>10}",
            order.name(),
            conv.map(|t| format!("{:.0}", t / 60.0))
                .unwrap_or("—".to_string()),
            result.metrics.final_deviation(),
            100.0 * result.mean_utilization(),
            backfills
        );
    }
    println!("\nexpected: near-identical rows — single-core jobs open no backfill windows");
}
