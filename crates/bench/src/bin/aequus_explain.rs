//! Explain a decision: replay a fully-traced scenario and print, for one
//! (user, site), the end-to-end causal span tree of the pipeline that
//! produced the served priority plus the human-readable decision provenance
//! — every captured component replays the served factor bit-for-bit.
//!
//! Usage: `aequus-explain [USER] [SITE] [JOBS]` (defaults: the dominant
//! model user `U65`, site `0`, a 4,000-job compressed trace).

use aequus_core::Explanation;
use aequus_rms::{explain_combined, PriorityWeights};
use aequus_telemetry::{SpanRecord, SpanTree};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let user = args.first().cloned().unwrap_or_else(|| "U65".to_string());
    let site: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0);
    let jobs: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4_000);

    let result = aequus_bench::run_traced(jobs, 42);
    let Some(recs) = result.site_provenance.get(site) else {
        eprintln!(
            "site {site} out of range ({} sites)",
            result.site_provenance.len()
        );
        std::process::exit(2);
    };
    let Some(rec) = recs.iter().rev().find(|r| r.user == user) else {
        let mut seen: Vec<&str> = recs.iter().map(|r| r.user.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        eprintln!("no traced decision for user {user} at site {site}; captured users: {seen:?}");
        std::process::exit(2);
    };

    println!(
        "# decision provenance: user {user}, site {site}, t={:.0}s, trace {:#x}",
        rec.t_s, rec.trace_id
    );
    println!();
    println!("## causal tree (report → ingest → publish → gossip → refresh → query)");
    let stores: Vec<&[SpanRecord]> = result.site_spans.iter().map(Vec::as_slice).collect();
    let trees = SpanTree::for_trace(&stores, rec.trace_id);
    if trees.is_empty() {
        println!(
            "(trace {:#x} evicted from the bounded span stores)",
            rec.trace_id
        );
    }
    for tree in &trees {
        print!("{}", tree.render());
    }

    let ex = Explanation::from_json(&rec.json).expect("stored provenance parses");
    println!();
    println!("## fairshare explanation");
    print!("{}", ex.render());
    println!(
        "replay: {:?} — bit-for-bit match: {}",
        ex.replay(),
        ex.verify()
    );

    // The RMS tail of the decision: the multifactor combination under the
    // test bed's fairshare-only weights.
    let b = explain_combined(&PriorityWeights::fairshare_only(), ex.factor, 0.0, 0.5, 1.0);
    println!();
    println!("## RMS multifactor combination");
    print!("{}", b.render());
    println!("multifactor replay match: {}", b.verify());
}
