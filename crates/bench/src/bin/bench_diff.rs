//! Benchmark regression differ: compares two `BENCH_*.json` snapshots with
//! the shared direction-aware gate table ([`aequus_bench::snapshot`]) and,
//! when a wall-clock key regressed, attributes the regression to the
//! profiled pipeline stage whose share of total wall time grew most between
//! the snapshots' `PROFILE_*.json` sidecars.
//!
//! Usage:
//!
//! * `bench_diff` — compare the two newest `BENCH_*.json` in the working
//!   directory (current vs previous). Fewer than two snapshots passes with
//!   a note, so the gate bootstraps cleanly.
//! * `bench_diff PREV.json CUR.json` — compare an explicit pair.
//! * `bench_diff --selftest` — run the attribution machinery end to end:
//!   the same serial scenario is profiled twice, the second run with a
//!   deliberate stall injected at the epoch barrier
//!   (`GridScenario::with_debug_barrier_sleep`), and the differ must blame
//!   `barrier.wait`. Exits non-zero if the attribution misses — this is the
//!   CI proof that a real scheduling stall would be named, not just noticed.

use aequus_bench::snapshot::{attribute_regression, compare, sibling_profile, skip_scaling_keys};
use aequus_bench::{uniform_trace, ScenarioBuilder};
use aequus_sim::GridSimulation;
use aequus_telemetry::ProfileMode;
use aequus_workload::users::baseline_policy_shares;

/// The two newest `BENCH_*.json` files by modification time:
/// `(previous, current)` as `(name, contents)` pairs.
fn newest_pair() -> Option<[(String, String); 2]> {
    let mut candidates: Vec<(std::time::SystemTime, String)> = std::fs::read_dir(".")
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                Some((e.metadata().ok()?.modified().ok()?, name))
            } else {
                None
            }
        })
        .collect();
    candidates.sort();
    let (_, cur) = candidates.pop()?;
    let (_, prev) = candidates.pop()?;
    let read = |name: String| -> Option<(String, String)> {
        let body = std::fs::read_to_string(&name).ok()?;
        Some((name, body))
    };
    Some([read(prev)?, read(cur)?])
}

/// The selftest scenario: the chaos suite's compressed 3-site grid, serial,
/// fully profiled. Serial keeps the injected stall's accounting exact (the
/// sleep is charged to every shard's `barrier.wait` directly) and makes the
/// run reproducible on any host.
fn selftest_profile(stall_ns: u64) -> aequus_telemetry::RunProfile {
    let scenario = ScenarioBuilder::testbed(&baseline_policy_shares(), 42)
        .sites(3)
        .nodes_per_site(4)
        .compressed()
        .profiling(ProfileMode::Full)
        .build()
        .with_debug_barrier_sleep(stall_ns);
    let trace = uniform_trace(48, 15.0, 40.0);
    GridSimulation::new(scenario)
        .run(&trace, 1800.0)
        .profile
        .expect("profiled run carries a profile")
}

fn selftest() {
    println!("# bench_diff selftest: inject a barrier stall, expect it named");
    let clean = selftest_profile(0);
    // 200 µs per epoch — small against the run, huge against the compute
    // share of a smoke-sized serial simulation.
    let stalled = selftest_profile(200_000);
    let Some((stage, delta)) = attribute_regression(&clean, &stalled) else {
        eprintln!("FAIL: profiles carried no wall time to attribute");
        std::process::exit(1);
    };
    println!(
        "attributed to {stage} (+{:.1} pp of wall share)",
        delta * 100.0
    );
    if stage != "barrier.wait" {
        eprintln!("FAIL: expected the injected stall to be attributed to barrier.wait");
        std::process::exit(1);
    }
    println!("OK: injected barrier stall correctly attributed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest") {
        selftest();
        return;
    }
    let [(prev_name, prev), (cur_name, cur)] = if let [p, c] = &args[..] {
        let read = |name: &str| {
            let body = std::fs::read_to_string(name)
                .unwrap_or_else(|e| panic!("read snapshot {name}: {e}"));
            (name.to_string(), body)
        };
        [read(p), read(c)]
    } else {
        match newest_pair() {
            Some(pair) => pair,
            None => {
                println!("OK: fewer than two BENCH_*.json snapshots; nothing to diff");
                return;
            }
        }
    };
    println!("diffing {prev_name} -> {cur_name}");
    let failures = compare(&prev, &cur, skip_scaling_keys(&prev, &cur));
    if failures.is_empty() {
        println!("OK: {cur_name} within tolerance of {prev_name}");
        return;
    }
    for f in &failures {
        eprintln!(
            "  FAIL {}: {:?} -> {:?} exceeds tolerance x{}",
            f.key, f.prev, f.cur, f.tol
        );
    }
    // Name the culprit when both snapshots carry a profile sidecar: the
    // stage whose share of total wall time grew most is where the
    // regression lives (an injected barrier stall shows as `barrier.wait`,
    // a slow merge as `gossip.merge`, and so on).
    match (sibling_profile(&prev_name), sibling_profile(&cur_name)) {
        (Some(before), Some(after)) => match attribute_regression(&before, &after) {
            Some((stage, delta)) => eprintln!(
                "  likely culprit: {stage} (+{:.1} pp of wall share)",
                delta * 100.0
            ),
            None => eprintln!("  no wall time in the profiles to attribute"),
        },
        _ => eprintln!("  (no PROFILE_*.json sidecars on both sides; cannot attribute)"),
    }
    std::process::exit(1);
}
