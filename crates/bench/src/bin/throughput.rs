//! §IV-A throughput reproduction: "the test bed was found to support a
//! sustained job submission rate of about 120 jobs per minute. The peak job
//! submission rate during the bursty test reaches 472 jobs per minute...
//! the total utilization varies between 93% and 97%."
//!
//! Usage: `throughput [JOBS] [THREADS]` — the scenarios come from the shared
//! sweep builder, and THREADS runs the sharded engine on that many workers
//! (results are thread-count deterministic; only wall clock changes).

use aequus_bench::{
    jobs_arg, run_baseline_on, run_bursty_on, steady_utilization, threads_arg, PAPER_JOBS,
};

fn main() {
    let jobs = jobs_arg(PAPER_JOBS);
    let threads = threads_arg(1);
    let base = run_baseline_on(jobs, 42, threads);
    let bursty = run_bursty_on(jobs, 42, threads);
    println!("# Throughput and utilization ({threads} shard workers)");
    println!(
        "baseline: sustained {:.0} jobs/min (paper ~120), peak {} jobs/min",
        base.metrics.sustained_submission_rate(),
        base.metrics.peak_submission_rate()
    );
    println!(
        "bursty:   sustained {:.0} jobs/min, peak {} jobs/min (paper peak 472)",
        bursty.metrics.sustained_submission_rate(),
        bursty.metrics.peak_submission_rate()
    );
    println!(
        "steady-window utilization: baseline {:.1}%, bursty {:.1}% (paper 93–97%)",
        100.0 * steady_utilization(&base, 0.1, 0.85),
        100.0 * steady_utilization(&bursty, 0.1, 0.85)
    );
    println!(
        "jobs completed: baseline {}/{}, bursty {}/{}",
        base.total_completed(),
        base.total_submitted(),
        bursty.total_completed(),
        bursty.total_submitted()
    );
}
