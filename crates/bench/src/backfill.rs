//! The dispatch-policy × fairshare-projection matrix (ROADMAP item 2): does
//! Fig. 11-style convergence survive backfill reordering, and which
//! projection is most robust to it?
//!
//! The paper's test bed dispatches strictly by priority on single-core
//! idle-wait jobs, so no backfill window ever opens there. This module
//! supplies the missing half of the experiment: a bursty **mixed-width**
//! workload (Medernach's LPC analysis shows per-user arrival bursts; wide
//! jobs head-block the queue) run under every
//! [`DispatchOrder`] × [`ProjectionKind`] cell, reporting per cell:
//!
//! - **fairness error** — final share deviation, the paper's Fig. 10 metric;
//! - **convergence time** — first ε-balanced dwell
//!   ([`BALANCE_EPS`]/[`BALANCE_DWELL_S`], as in the baseline experiment);
//! - **starvation age** — worst accrued below-half-share age across users,
//!   via the PR-9 [`StarvationClock`];
//! - **utilization** — the §IV-A 93–97% measurement, where backfill should
//!   pay off;
//! - **bounded slowdown** — mean over completed jobs
//!   (τ = [`aequus_rms::SLOWDOWN_TAU_S`]).
//!
//! Alongside the matrix live the three calibration checks `backfill_sweep
//! --check` gates in CI: FIFO ≡ EASY on the paper's single-core baseline
//! (no window to exploit ⇒ identical runs), learned runtime predictors
//! beating padded walltime requests, and the scheduler hot-path budget
//! (`pick_next` sub-µs, plan scan ~O(n log n) at 10k-deep queues).

use crate::experiments::{BALANCE_DWELL_S, BALANCE_EPS};
use crate::sweep::parallel_sweep;
use aequus_core::projection::ProjectionKind;
use aequus_rms::{
    pick_next, ConservativeBackfill, DispatchConfig, DispatchOrder, DispatchPolicy, EasyBackfill,
    MispredictPolicy, PredictorKind, QueuedJob, RunningSlice, SafBackfill,
};
use aequus_sim::{GridScenario, GridSimulation, SimResult};
use aequus_telemetry::slo::StarvationClock;
use aequus_workload::users::baseline_policy_shares;
use aequus_workload::{Trace, TraceJob};
use std::time::Instant;

/// A user counts as starving while their achieved share sits below this
/// fraction of the policy target (the PR-9 health map's half-share line).
pub const STARVATION_FRAC: f64 = 0.5;

/// Shape of the bursty mixed-width workload and the fleet it runs on.
#[derive(Debug, Clone, Copy)]
pub struct BackfillConfig {
    /// Jobs in the trace.
    pub jobs: usize,
    /// Clusters in the fleet.
    pub sites: usize,
    /// Nodes per cluster.
    pub nodes_per_site: u32,
    /// Cores per node (cores pool per cluster, so the widest job spans
    /// half a cluster).
    pub cores_per_node: u32,
    /// Post-submission drain horizon, seconds.
    pub drain_s: f64,
    /// Trace/scenario seed.
    pub seed: u64,
}

impl BackfillConfig {
    /// The full sweep: 3 clusters × 32 cores, 6,000 jobs.
    pub fn full() -> Self {
        Self {
            jobs: 6_000,
            sites: 3,
            nodes_per_site: 4,
            cores_per_node: 8,
            drain_s: 7_200.0,
            seed: 42,
        }
    }

    /// CI smoke shape: 2 clusters × 16 cores, 1,200 jobs.
    pub fn smoke() -> Self {
        Self {
            jobs: 1_200,
            sites: 2,
            nodes_per_site: 2,
            cores_per_node: 8,
            drain_s: 7_200.0,
            seed: 42,
        }
    }

    /// Total cores across the fleet.
    pub fn total_cores(&self) -> u32 {
        (self.sites as u32) * self.nodes_per_site * self.cores_per_node
    }

    /// Cores of one cluster — the widest job is half of this.
    pub fn site_cores(&self) -> u32 {
        self.nodes_per_site * self.cores_per_node
    }
}

/// xorshift64* — deterministic trace jitter without pulling an RNG stack
/// into the workload shape (same trick as the store's junk stream).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Jobs per arrival burst (one user dominates each burst, per the LPC
/// per-user burst-train structure).
const BURST_LEN: usize = 16;

/// Offered load as a fraction of fleet capacity. High enough that wide
/// jobs head-block the queue (so dispatch order matters), low enough that
/// the drain horizon empties it.
const TARGET_LOAD: f64 = 0.85;

/// The bursty mixed-width trace: per-user arrival bursts of `BURST_LEN`
/// jobs whose widths cycle from single-core through half a cluster, with
/// ±20% duration jitter. Burst spacing is derived from the width/duration
/// pattern so the offered load lands at `TARGET_LOAD` of fleet capacity
/// for any config shape.
pub fn bursty_mixed_trace(cfg: &BackfillConfig) -> Trace {
    let wide = cfg.site_cores() / 2;
    // Mostly narrow jobs with regular wide head-blockers; widths stay
    // powers of two so the predictor's width classes stay distinct.
    let widths: [u32; 8] = [wide, 1, 2, wide / 2, 1, 4, 2, 1];
    let durations: [f64; 8] = [1800.0, 90.0, 240.0, 900.0, 60.0, 420.0, 150.0, 300.0];
    let mean_work: f64 = widths
        .iter()
        .zip(durations)
        .map(|(w, d)| *w as f64 * d)
        .sum::<f64>()
        / widths.len() as f64;
    let per_job_s = mean_work / (TARGET_LOAD * cfg.total_cores() as f64);
    let burst_gap_s = per_job_s * BURST_LEN as f64;
    let users = aequus_workload::users::baseline_policy_shares();
    let mut rng = Rng(cfg.seed | 1);
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut burst_start = 0.0;
    while jobs.len() < cfg.jobs {
        // Weighted burst owner: bursty per-user trains, long-run mix near
        // the policy shares so the fairshare engine has something to
        // converge toward.
        let mut pick = rng.f64();
        let mut owner = users[users.len() - 1].0;
        for (user, share) in &users {
            if pick < *share {
                owner = user;
                break;
            }
            pick -= share;
        }
        for i in 0..BURST_LEN.min(cfg.jobs - jobs.len()) {
            // One stray job per burst from a second user keeps every
            // user's usage series alive between their own bursts.
            let user = if i == BURST_LEN / 2 {
                users[jobs.len() % users.len()].0
            } else {
                owner
            };
            let k = jobs.len() % widths.len();
            jobs.push(TraceJob {
                user: user.to_string(),
                submit_s: burst_start + i as f64 * 3.0,
                duration_s: durations[k] * (0.8 + 0.4 * rng.f64()),
                cores: widths[k],
            });
        }
        burst_start += burst_gap_s * (0.6 + 0.8 * rng.f64());
    }
    Trace::new(jobs)
}

/// The fleet scenario for one matrix cell.
fn matrix_scenario(
    cfg: &BackfillConfig,
    order: DispatchOrder,
    proj: ProjectionKind,
) -> GridScenario {
    let mut sc = GridScenario::national_testbed(&baseline_policy_shares(), cfg.seed);
    let template = sc.clusters.last().cloned().expect("non-empty fleet");
    sc.clusters.truncate(cfg.sites);
    while sc.clusters.len() < cfg.sites {
        sc.clusters.push(template.clone());
    }
    for c in &mut sc.clusters {
        c.nodes = cfg.nodes_per_site;
        c.cores_per_node = cfg.cores_per_node;
    }
    sc.projection = proj;
    sc.with_dispatch(DispatchConfig {
        order,
        ..DispatchConfig::default()
    })
}

/// One cell of the dispatch × projection matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Queue dispatch order.
    pub order: DispatchOrder,
    /// Fairshare projection.
    pub projection: ProjectionKind,
    /// First ε-balanced dwell, seconds (`None` = never within horizon).
    pub converge_s: Option<f64>,
    /// Final share deviation (fairness error).
    pub fairness_err: f64,
    /// Worst accrued starvation age across users, seconds.
    pub starvation_age_s: f64,
    /// Mean fleet utilization in `[0, 1]`.
    pub utilization: f64,
    /// Mean bounded slowdown over completed jobs.
    pub mean_slowdown: f64,
    /// Jobs started out of FIFO order.
    pub backfills: u64,
    /// Jobs completed.
    pub completed: u64,
}

/// Worst accrued below-half-share age across tracked users, from the
/// sampled usage-share series.
fn worst_starvation_age(result: &SimResult, targets: &[(String, f64)]) -> f64 {
    let mut clock = StarvationClock::default();
    let mut worst = 0.0f64;
    for sample in result.metrics.samples() {
        for (user, target) in targets {
            if let Some(us) = sample.users.get(user) {
                worst = worst.max(clock.age(
                    user,
                    us.usage_share,
                    *target,
                    STARVATION_FRAC,
                    sample.t_s,
                ));
            }
        }
    }
    worst
}

/// Fleet-wide mean bounded slowdown: per-cluster sums over total completions.
fn mean_slowdown(result: &SimResult) -> f64 {
    let completed: u64 = result.cluster_stats.iter().map(|s| s.completed).sum();
    if completed == 0 {
        return 0.0;
    }
    let sum: f64 = result.cluster_stats.iter().map(|s| s.slowdown_sum).sum();
    sum / completed as f64
}

/// Run one matrix cell.
fn run_cell(
    cfg: &BackfillConfig,
    trace: &Trace,
    order: DispatchOrder,
    proj: ProjectionKind,
) -> MatrixCell {
    let sc = matrix_scenario(cfg, order, proj);
    let targets = sc.tracked_users();
    let result = GridSimulation::new(sc).run(trace, cfg.drain_s);
    MatrixCell {
        order,
        projection: proj,
        converge_s: result
            .metrics
            .convergence_time(BALANCE_EPS, BALANCE_DWELL_S),
        fairness_err: result.metrics.final_deviation(),
        starvation_age_s: worst_starvation_age(&result, &targets),
        utilization: result.mean_utilization(),
        mean_slowdown: mean_slowdown(&result),
        backfills: result.cluster_stats.iter().map(|s| s.backfilled).sum(),
        completed: result.total_completed(),
    }
}

/// Run the full dispatch × projection matrix on the bursty mixed-width
/// trace: [`DispatchOrder::ALL`] × [`ProjectionKind::ALL`], one thread per
/// cell, rows in `(order, projection)` order.
pub fn run_matrix(cfg: &BackfillConfig) -> Vec<MatrixCell> {
    let trace = bursty_mixed_trace(cfg);
    let params: Vec<(DispatchOrder, ProjectionKind)> = DispatchOrder::ALL
        .into_iter()
        .flat_map(|o| ProjectionKind::ALL.into_iter().map(move |p| (o, p)))
        .collect();
    parallel_sweep(&params, |&(order, proj)| run_cell(cfg, &trace, order, proj))
}

/// FIFO vs EASY on the paper's single-core baseline trace — with 1-core
/// jobs the queue head fits whenever any core is free, so no backfill
/// window opens and the two runs must be *identical*, not merely close.
/// This is the gate that ties the new dispatch layer back to the existing
/// BENCH numbers (which were measured under the inline EASY dispatcher).
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// (FIFO, EASY) final share deviation.
    pub deviation: (f64, f64),
    /// (FIFO, EASY) mean utilization.
    pub utilization: (f64, f64),
    /// (FIFO, EASY) completed jobs.
    pub completed: (u64, u64),
    /// Backfilled starts under EASY (must be 0 on single-core work).
    pub easy_backfills: u64,
}

impl EquivalenceReport {
    /// Whether the two runs agree bit-for-bit on the reported figures.
    pub fn holds(&self) -> bool {
        self.deviation.0 == self.deviation.1
            && self.utilization.0 == self.utilization.1
            && self.completed.0 == self.completed.1
            && self.easy_backfills == 0
    }
}

/// Run the FIFO ≡ EASY single-core equivalence check on the paper's
/// baseline trace.
pub fn run_singlecore_equivalence(jobs: usize, seed: u64) -> EquivalenceReport {
    let trace = crate::experiments::baseline_trace(jobs, seed);
    let run = |order: DispatchOrder| {
        let sc = GridScenario::national_testbed(&baseline_policy_shares(), seed).with_dispatch(
            DispatchConfig {
                order,
                ..DispatchConfig::default()
            },
        );
        GridSimulation::new(sc).run(&trace, 1800.0)
    };
    let results = parallel_sweep(&[DispatchOrder::Fifo, DispatchOrder::Easy], |&o| run(o));
    let (fifo, easy) = (&results[0], &results[1]);
    EquivalenceReport {
        deviation: (
            fifo.metrics.final_deviation(),
            easy.metrics.final_deviation(),
        ),
        utilization: (fifo.mean_utilization(), easy.mean_utilization()),
        completed: (fifo.total_completed(), easy.total_completed()),
        easy_backfills: easy.cluster_stats.iter().map(|s| s.backfilled).sum(),
    }
}

/// Prediction-accuracy comparison: the same bursty workload with padded
/// walltime requests (request = 3× true runtime, the classic user-padding
/// regime), EASY backfill, under each predictor. The request echo scores a
/// relative error of exactly 2.0 per job; the learned estimators must beat
/// it. A fourth run under-requests (request = 0.7× runtime) with
/// `KillAtRequest` to exercise the misprediction kill path.
#[derive(Debug, Clone)]
pub struct PredictionReport {
    /// Mean absolute relative error of the request echo (≈ 2.0 by
    /// construction).
    pub request_err: f64,
    /// Mean absolute relative error of the capped running average.
    pub avg_err: f64,
    /// Mean absolute relative error of the last-k max.
    pub lastk_err: f64,
    /// Underestimate count of the running average (it hugs the mean, so
    /// roughly half its predictions land under).
    pub avg_underestimates: u64,
    /// Jobs killed at their requested walltime in the under-request run.
    pub kills: u64,
    /// `aequus_rms_predictions_total` summed across sites in the
    /// telemetry-enabled running-average run — proves the accuracy
    /// telemetry flows end to end.
    pub telemetry_predictions: u64,
    /// Utilization under (request echo, running average).
    pub utilization: (f64, f64),
}

/// Run the predictor comparison (see [`PredictionReport`]).
pub fn run_prediction_comparison(cfg: &BackfillConfig) -> PredictionReport {
    let trace = bursty_mixed_trace(cfg);
    let run = |predictor: PredictorKind,
               mispredict: MispredictPolicy,
               request_factor: f64,
               telemetry: bool| {
        let mut sc = matrix_scenario(cfg, DispatchOrder::Easy, ProjectionKind::Percental)
            .with_request_factor(request_factor);
        sc.dispatch.predictor = predictor;
        sc.dispatch.mispredict = mispredict;
        if telemetry {
            sc = sc.with_telemetry();
        }
        GridSimulation::new(sc).run(&trace, cfg.drain_s)
    };
    let runs = parallel_sweep(
        &[
            (PredictorKind::Request, MispredictPolicy::Extend, 3.0, false),
            (
                PredictorKind::RunningAverage { cap: 50 },
                MispredictPolicy::Extend,
                3.0,
                true,
            ),
            (
                PredictorKind::LastKMax { k: 5 },
                MispredictPolicy::Extend,
                3.0,
                false,
            ),
            (
                PredictorKind::Request,
                MispredictPolicy::KillAtRequest,
                0.7,
                false,
            ),
        ],
        |&(p, m, f, t)| run(p, m, f, t),
    );
    let err = |r: &SimResult| {
        let scored: u64 = r.cluster_stats.iter().map(|s| s.prediction.scored).sum();
        let sum: f64 = r
            .cluster_stats
            .iter()
            .map(|s| s.prediction.abs_rel_err_sum)
            .sum();
        if scored == 0 {
            0.0
        } else {
            sum / scored as f64
        }
    };
    PredictionReport {
        request_err: err(&runs[0]),
        avg_err: err(&runs[1]),
        lastk_err: err(&runs[2]),
        avg_underestimates: runs[1]
            .cluster_stats
            .iter()
            .map(|s| s.prediction.underestimates)
            .sum(),
        kills: runs[3].cluster_stats.iter().map(|s| s.killed).sum(),
        telemetry_predictions: runs[1]
            .site_telemetry
            .iter()
            .filter_map(|snap| snap.counters.get("aequus_rms_predictions_total"))
            .sum(),
        utilization: (runs[0].mean_utilization(), runs[1].mean_utilization()),
    }
}

/// Scheduler hot-path budget measurements at a 10k-deep queue.
#[derive(Debug, Clone, Copy)]
pub struct HotPathReport {
    /// `pick_next` on the 10k-deep mixed queue, nanoseconds (early-exit:
    /// a fitting narrow job sits near the head, as in real mixed queues).
    pub pick_next_ns: f64,
    /// `pick_next` worst case — no job fits until the tail — nanoseconds.
    pub pick_next_worst_ns: f64,
    /// EASY full plan scan at 1k jobs, microseconds.
    pub easy_1k_us: f64,
    /// EASY full plan scan at 10k jobs, microseconds.
    pub easy_10k_us: f64,
    /// SAF (sorts candidates: the O(n log n) ceiling) at 10k, microseconds.
    pub saf_10k_us: f64,
    /// Conservative at 10k under its reservation bound, microseconds.
    pub conservative_10k_us: f64,
}

impl HotPathReport {
    /// The 10k/1k EASY scan growth. O(n log n) predicts ~13×; the gate
    /// allows 40× for timer noise at microsecond scales, which still
    /// rejects an accidental O(n²) rewrite (100×).
    pub fn scan_growth(&self) -> f64 {
        self.easy_10k_us / self.easy_1k_us.max(1e-3)
    }
}

/// A blocked-head queue: the pivot wants more cores than are free, the
/// rest cycle through mixed widths/runtimes — the worst realistic shape
/// for a full backfill scan.
fn synthetic_queue(n: usize, free: u32) -> Vec<QueuedJob> {
    let widths = [free * 2, 1, 2, 4, 8, 2, 1, 4];
    let runtimes = [1800.0, 90.0, 240.0, 900.0, 60.0, 420.0, 150.0, 300.0];
    (0..n)
        .map(|i| QueuedJob {
            cores: widths[i % widths.len()],
            predicted_s: runtimes[i % runtimes.len()],
        })
        .collect()
}

fn synthetic_running(n: usize) -> Vec<RunningSlice> {
    (0..n)
        .map(|i| RunningSlice {
            end_s: 100.0 + (i as f64 * 37.0) % 1700.0,
            cores: 1 + (i as u32 % 4),
        })
        .collect()
}

/// Minimum of `reps` timings of `f`, in nanoseconds — the interleaved-
/// minima trick the other overhead gates use, immune to one-off stalls.
fn min_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Measure the scheduler hot path (see [`HotPathReport`]).
pub fn run_hotpath_bench() -> HotPathReport {
    const FREE: u32 = 8;
    const RUNNING: usize = 64;
    let q10k = synthetic_queue(10_000, FREE);
    let q1k = synthetic_queue(1_000, FREE);
    // Worst case for pick_next: every job too wide except the last.
    let mut q_worst = vec![
        QueuedJob {
            cores: FREE * 2,
            predicted_s: 600.0,
        };
        10_000
    ];
    q_worst.last_mut().expect("non-empty").cores = 1;
    let running = synthetic_running(RUNNING);
    let easy = EasyBackfill;
    let saf = SafBackfill;
    let conservative = ConservativeBackfill::default();
    HotPathReport {
        pick_next_ns: min_ns(200, || pick_next(&q10k, FREE)),
        pick_next_worst_ns: min_ns(50, || pick_next(&q_worst, FREE)),
        easy_1k_us: min_ns(50, || easy.plan(0.0, FREE, &q1k, &running)) / 1_000.0,
        easy_10k_us: min_ns(25, || easy.plan(0.0, FREE, &q10k, &running)) / 1_000.0,
        saf_10k_us: min_ns(25, || saf.plan(0.0, FREE, &q10k, &running)) / 1_000.0,
        conservative_10k_us: min_ns(10, || conservative.plan(0.0, FREE, &q10k, &running)) / 1_000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_trace_is_deterministic_and_mixed_width() {
        let cfg = BackfillConfig::smoke();
        let a = bursty_mixed_trace(&cfg);
        let b = bursty_mixed_trace(&cfg);
        assert_eq!(a.len(), cfg.jobs);
        assert_eq!(a.jobs(), b.jobs(), "same seed, same trace");
        let wide = cfg.site_cores() / 2;
        assert!(
            a.jobs().iter().any(|j| j.cores == wide),
            "has head-blockers"
        );
        assert!(a.jobs().iter().any(|j| j.cores == 1), "has fillers");
        assert!(
            a.jobs().iter().all(|j| j.cores <= wide),
            "every job fits a cluster"
        );
        // Every tracked user appears (starvation clocks need a series).
        for (user, _) in baseline_policy_shares() {
            assert!(a.jobs().iter().any(|j| j.user == user), "{user} present");
        }
    }

    #[test]
    fn matrix_cell_runs_end_to_end() {
        let cfg = BackfillConfig {
            jobs: 120,
            sites: 2,
            nodes_per_site: 2,
            cores_per_node: 4,
            drain_s: 7_200.0,
            seed: 7,
        };
        let trace = bursty_mixed_trace(&cfg);
        let cell = run_cell(&cfg, &trace, DispatchOrder::Easy, ProjectionKind::Percental);
        assert_eq!(cell.completed as usize, cfg.jobs, "drain completes all");
        assert!(cell.utilization > 0.0 && cell.utilization <= 1.0);
        assert!(cell.mean_slowdown >= 1.0, "slowdown is ≥ 1 by definition");
    }

    #[test]
    fn hotpath_shapes_are_valid() {
        let q = synthetic_queue(100, 8);
        assert_eq!(q[0].cores, 16, "head blocks at 8 free");
        assert!(pick_next(&q, 8).is_some(), "a narrow job fits");
        let r = synthetic_running(8);
        assert!(r.iter().all(|s| s.end_s > 0.0 && s.cores >= 1));
    }
}
