//! Plain-text rendering of figure series and result summaries.

use aequus_sim::SimResult;

/// Render a set of named time series as aligned columns (minutes + values),
/// sampling every `step`th sample.
pub fn render_series(title: &str, series: &[(&str, Vec<(f64, f64)>)], step: usize) -> String {
    let mut out = format!("# {title}\n");
    out.push_str(&format!("{:>8}", "t(min)"));
    for (name, _) in series {
        out.push_str(&format!(" {:>10}", name));
    }
    out.push('\n');
    let len = series.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    let step = step.max(1);
    for i in (0..len).step_by(step) {
        out.push_str(&format!("{:>8.1}", series[0].1[i].0 / 60.0));
        for (_, s) in series {
            out.push_str(&format!(" {:>10.4}", s[i].1));
        }
        out.push('\n');
    }
    out
}

/// Render the standard run summary block.
pub fn render_summary(name: &str, result: &SimResult) -> String {
    let conv = result
        .metrics
        .convergence_time(crate::BALANCE_EPS, crate::BALANCE_DWELL_S);
    let windows: Vec<String> = result
        .metrics
        .balance_windows(crate::BALANCE_EPS)
        .iter()
        .filter(|(a, b)| b - a >= 600.0)
        .map(|(a, b)| format!("[{:.0},{:.0}]min", a / 60.0, b / 60.0))
        .collect();
    format!(
        "# {name}\n\
         jobs completed      : {}/{}\n\
         mean utilization    : {:.1}%\n\
         steady utilization  : {:.1}%\n\
         sustained rate      : {:.0} jobs/min\n\
         peak rate           : {} jobs/min\n\
         first balance window: {}\n\
         balance windows     : {}\n\
         final deviation     : {:.3}\n",
        result.total_completed(),
        result.total_submitted(),
        100.0 * result.mean_utilization(),
        100.0 * crate::steady_utilization(result, 0.1, 0.85),
        result.metrics.sustained_submission_rate(),
        result.metrics.peak_submission_rate(),
        conv.map(|t| format!("{:.0} min", t / 60.0))
            .unwrap_or_else(|| "none".to_string()),
        if windows.is_empty() {
            "none".to_string()
        } else {
            windows.join(" ")
        },
        result.metrics.final_deviation(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render_shape() {
        let s = render_series(
            "test",
            &[
                ("a", vec![(0.0, 1.0), (60.0, 2.0)]),
                ("b", vec![(0.0, 3.0), (60.0, 4.0)]),
            ],
            1,
        );
        assert!(s.contains("# test"));
        assert!(s.lines().count() == 4, "{s}");
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn summary_renders() {
        let r = crate::run_baseline(2000, 1);
        let s = render_summary("baseline", &r);
        assert!(s.contains("jobs completed"));
        assert!(s.contains("2000"));
    }
}
