//! Plain-text rendering of figure series and result summaries.

use aequus_sim::SimResult;

/// Render a set of named time series as aligned columns (minutes + values),
/// sampling every `step`th sample.
pub fn render_series(title: &str, series: &[(&str, Vec<(f64, f64)>)], step: usize) -> String {
    let mut out = format!("# {title}\n");
    out.push_str(&format!("{:>8}", "t(min)"));
    for (name, _) in series {
        out.push_str(&format!(" {:>10}", name));
    }
    out.push('\n');
    let len = series.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    let step = step.max(1);
    for i in (0..len).step_by(step) {
        out.push_str(&format!("{:>8.1}", series[0].1[i].0 / 60.0));
        for (_, s) in series {
            out.push_str(&format!(" {:>10.4}", s[i].1));
        }
        out.push('\n');
    }
    out
}

/// Render the per-site telemetry registries as a table: counters summed
/// across sites, histograms with total count and the worst (max-p99) site's
/// quantiles. Empty string when the run had telemetry disabled.
pub fn render_telemetry(result: &SimResult) -> String {
    if result.site_telemetry.is_empty() {
        return String::new();
    }
    let mut out = format!("# telemetry ({} sites)\n", result.site_telemetry.len());
    let mut counters: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for snap in &result.site_telemetry {
        for (name, v) in &snap.counters {
            *counters.entry(name.as_str()).or_insert(0) += v;
        }
    }
    out.push_str("counters (summed across sites):\n");
    for (name, v) in &counters {
        out.push_str(&format!("  {name:<44} {v:>12}\n"));
    }
    out.push_str(&format!(
        "histograms (worst site by p99):\n  {:<44} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "name", "count", "p50", "p95", "p99", "max"
    ));
    let mut hist_names: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for snap in &result.site_telemetry {
        hist_names.extend(snap.histograms.keys().map(String::as_str));
    }
    for name in hist_names {
        let total: u64 = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.histograms.get(name).map(|h| h.count))
            .sum();
        let worst = result
            .site_telemetry
            .iter()
            .filter_map(|s| s.histograms.get(name))
            .max_by(|a, b| a.p99.partial_cmp(&b.p99).expect("finite quantiles"));
        if let Some(h) = worst {
            out.push_str(&format!(
                "  {name:<44} {total:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4}\n",
                h.p50, h.p95, h.p99, h.max
            ));
        }
    }
    if let Some(engine) = &result.engine_telemetry {
        out.push_str("engine:\n");
        for (name, v) in &engine.counters {
            out.push_str(&format!("  {name:<44} {v:>12}\n"));
        }
        for (name, h) in &engine.histograms {
            out.push_str(&format!(
                "  {name:<44} {:>10} p99 {:.6}s max {:.6}s\n",
                h.count, h.p99, h.max
            ));
        }
    }
    out
}

/// Render the standard run summary block (with the telemetry table appended
/// when the run collected telemetry).
pub fn render_summary(name: &str, result: &SimResult) -> String {
    let conv = result
        .metrics
        .convergence_time(crate::BALANCE_EPS, crate::BALANCE_DWELL_S);
    let windows: Vec<String> = result
        .metrics
        .balance_windows(crate::BALANCE_EPS)
        .iter()
        .filter(|(a, b)| b - a >= 600.0)
        .map(|(a, b)| format!("[{:.0},{:.0}]min", a / 60.0, b / 60.0))
        .collect();
    let mut out = format!(
        "# {name}\n\
         jobs completed      : {}/{}\n\
         mean utilization    : {:.1}%\n\
         steady utilization  : {:.1}%\n\
         sustained rate      : {:.0} jobs/min\n\
         peak rate           : {} jobs/min\n\
         first balance window: {}\n\
         balance windows     : {}\n\
         final deviation     : {:.3}\n",
        result.total_completed(),
        result.total_submitted(),
        100.0 * result.mean_utilization(),
        100.0 * crate::steady_utilization(result, 0.1, 0.85),
        result.metrics.sustained_submission_rate(),
        result.metrics.peak_submission_rate(),
        conv.map(|t| format!("{:.0} min", t / 60.0))
            .unwrap_or_else(|| "none".to_string()),
        if windows.is_empty() {
            "none".to_string()
        } else {
            windows.join(" ")
        },
        result.metrics.final_deviation(),
    );
    let telemetry = render_telemetry(result);
    if !telemetry.is_empty() {
        out.push('\n');
        out.push_str(&telemetry);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render_shape() {
        let s = render_series(
            "test",
            &[
                ("a", vec![(0.0, 1.0), (60.0, 2.0)]),
                ("b", vec![(0.0, 3.0), (60.0, 4.0)]),
            ],
            1,
        );
        assert!(s.contains("# test"));
        assert!(s.lines().count() == 4, "{s}");
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn summary_renders() {
        let r = crate::run_baseline(2000, 1);
        let s = render_summary("baseline", &r);
        assert!(s.contains("jobs completed"));
        assert!(s.contains("2000"));
        assert!(render_telemetry(&r).is_empty(), "telemetry was off");
    }

    #[test]
    fn telemetry_table_renders_when_wired() {
        let r = crate::run_baseline_telemetry(600, 1);
        let s = render_telemetry(&r);
        assert!(s.contains("# telemetry (6 sites)"));
        assert!(s.contains("aequus_uss_records_ingested_total"));
        assert!(s.contains("aequus_rms_dispatch_s"));
        assert!(s.contains("aequus_sim_event_s"));
        // The summary embeds the same table.
        assert!(render_summary("t", &r).contains("# telemetry"));
    }
}
