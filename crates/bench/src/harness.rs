//! A minimal, dependency-free micro-benchmark harness with a
//! criterion-shaped API (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `iter_batched`) so the bench targets under `benches/` run offline.
//!
//! Measurement model: a short warmup sizes a batch so one sample takes
//! roughly `Criterion::target_sample_time`, then `sample_size` samples are
//! timed and the per-iteration mean, minimum, and median are printed. This
//! is deliberately simpler than criterion (no bootstrap, no outlier
//! rejection) — adequate for the order-of-magnitude and ratio comparisons
//! the experiment suite reports.

use std::time::{Duration, Instant};

/// How `iter_batched` recreates per-iteration inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per timed call (expensive inputs).
    LargeInput,
    /// One setup per timed call (the shim does not amortize setups).
    SmallInput,
}

/// Identifier helper mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a displayable parameter.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Mean time per iteration.
    pub mean_ns: f64,
    /// Fastest sample's time per iteration.
    pub min_ns: f64,
    /// Median sample's time per iteration.
    pub median_ns: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the closure given to `bench_function`; drives timing loops.
pub struct Bencher<'a> {
    sample_size: usize,
    target_sample_time: Duration,
    result: &'a mut Option<Estimate>,
}

impl Bencher<'_> {
    /// Time `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: grow the batch until one batch takes long
        // enough to time reliably.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time || batch >= 1 << 20 {
                break;
            }
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((self.target_sample_time.as_nanos() / elapsed.as_nanos()) + 1).min(16) as u64
            };
            batch = batch.saturating_mul(grow.max(2));
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        *self.result = Some(estimate(&mut per_iter));
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            per_iter.push(start.elapsed().as_nanos() as f64);
        }
        *self.result = Some(estimate(&mut per_iter));
    }
}

fn estimate(per_iter: &mut [f64]) -> Estimate {
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = per_iter.len().max(1);
    Estimate {
        mean_ns: per_iter.iter().sum::<f64>() / n as f64,
        min_ns: per_iter.first().copied().unwrap_or(0.0),
        median_ns: per_iter[n / 2],
    }
}

/// Top-level driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
    /// All results recorded so far, in run order: (name, estimate).
    pub results: Vec<(String, Estimate)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            target_sample_time: Duration::from_millis(25),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Run one benchmark and print its estimate.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut result = None;
        let mut b = Bencher {
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            result: &mut result,
        };
        f(&mut b);
        let est = result.expect("bencher closure must call iter/iter_batched");
        println!(
            "{name:<44} mean {:>12}  median {:>12}  min {:>12}",
            fmt_ns(est.mean_ns),
            fmt_ns(est.median_ns),
            fmt_ns(est.min_ns)
        );
        self.results.push((name.to_string(), est));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("— {name}");
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
        }
    }
}

/// Benchmark group mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Lower the per-benchmark sample count (slow benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        self.parent.bench_function(&name, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        self.parent.bench_function(&name, |b| f(b, input));
        self
    }

    /// End the group (restores the default sample size).
    pub fn finish(&mut self) {
        self.parent.sample_size = Criterion::default().sample_size;
    }
}

/// Entry point used by the `benches/` targets: run each registered bench
/// function with a fresh default `Criterion` and print a header.
pub fn run_benches(title: &str, benches: &mut [&mut dyn FnMut(&mut Criterion)]) {
    println!("== {title} ==");
    let mut c = Criterion::default();
    for f in benches {
        f(&mut c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_estimate() {
        let mut c = Criterion {
            sample_size: 5,
            target_sample_time: Duration::from_micros(200),
            results: Vec::new(),
        };
        c.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        assert_eq!(c.results.len(), 1);
        let est = c.results[0].1;
        assert!(est.mean_ns > 0.0 && est.min_ns <= est.mean_ns);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_time: Duration::from_micros(100),
            results: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        assert!(c.results[0].1.mean_ns >= 0.0);
    }

    #[test]
    fn group_names_are_prefixed() {
        let mut c = Criterion {
            sample_size: 2,
            target_sample_time: Duration::from_micros(50),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("7"), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(c.results[0].0, "grp/7");
    }
}
