//! Shared experiment runners: standard scenarios, traces, and derived
//! measurements used by the per-figure binaries and the integration tests.

use crate::sweep::{
    cycle_trace, parallel_sweep, synthetic_users, uniform_trace, ScenarioBuilder, SWEEP_USERS,
};
use aequus_services::ParticipationMode;
use aequus_sim::{GridScenario, GridSimulation, SimResult};
use aequus_telemetry::{ProfileMode, RunProfile};
use aequus_workload::users::{baseline_policy_shares, nonoptimal_policy_shares};
use aequus_workload::{test_trace, TestTraceConfig, Trace};
use std::time::Instant;

/// Default job count for full-fidelity runs (the paper's trace size).
pub const PAPER_JOBS: usize = 43_200;

/// The balance tolerance used for convergence reporting (max per-user
/// deviation of decayed usage share from the policy target). The paper does
/// not quantify its balance band; 0.12 absorbs the fluctuation "natural to
/// fairshare" on the dominant user's ~0.65 share across seeds.
pub const BALANCE_EPS: f64 = 0.12;

/// Dwell time a balance window must last to count as convergence.
pub const BALANCE_DWELL_S: f64 = 1800.0;

/// Generate the paper's baseline trace: 43,200 jobs, 6 h, 95% of 240 cores.
pub fn baseline_trace(jobs: usize, seed: u64) -> Trace {
    test_trace(&TestTraceConfig {
        total_jobs: jobs,
        seed,
        ..Default::default()
    })
}

/// Run the baseline scenario (Fig. 10a shape): six clusters × 40 hosts,
/// policy = actual usage shares, percental projection, k = 0.5.
pub fn run_baseline(jobs: usize, seed: u64) -> SimResult {
    run_baseline_on(jobs, seed, 1)
}

/// [`run_baseline`] on `threads` shard workers — same results (the engine
/// is thread-count deterministic), different wall clock.
pub fn run_baseline_on(jobs: usize, seed: u64, threads: usize) -> SimResult {
    let scenario = ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
        .threads(threads)
        .build();
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Run the baseline with telemetry wired into every site: per-site metric
/// registries, stage spans, structured events, and the pipeline-delay
/// tracer. The result carries per-site snapshots (`SimResult::site_telemetry`)
/// and the engine's own registry.
pub fn run_baseline_telemetry(jobs: usize, seed: u64) -> SimResult {
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), seed).with_telemetry();
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Run a compact fully-traced scenario: every usage report roots a causal
/// span tree, gossip hops carry the context across sites, and every traced
/// served query captures replayable decision provenance. Two clusters keep
/// the explain tool's replay fast while still exercising cross-site hops.
pub fn run_traced(jobs: usize, seed: u64) -> SimResult {
    let mut scenario =
        GridScenario::national_testbed(&baseline_policy_shares(), seed).with_full_tracing();
    scenario.clusters.truncate(2);
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Outcome of the update-delay experiment (Fig. 11).
#[derive(Debug, Clone, Copy)]
pub struct UpdateDelayOutcome {
    /// Baseline convergence time as a fraction of its test length.
    pub baseline_fraction: f64,
    /// 10×-scaled convergence time as a fraction of its test length.
    pub scaled_fraction: f64,
}

impl UpdateDelayOutcome {
    /// Relative reduction of the (relative) convergence time in the scaled
    /// case — the paper reports 10–15%.
    pub fn relative_improvement(&self) -> f64 {
        if self.baseline_fraction <= 0.0 {
            return 0.0;
        }
        1.0 - self.scaled_fraction / self.baseline_fraction
    }
}

/// Run the Fig. 11 experiment: the baseline trace and the same trace
/// time-scaled ×`factor` (arrival times and durations), with the *same*
/// absolute service delays — so the delays are relatively `factor`× shorter
/// in the scaled run.
pub fn run_update_delay(jobs: usize, factor: f64, seed: u64) -> UpdateDelayOutcome {
    let trace = baseline_trace(jobs, seed);
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), seed);

    let base_len = 6.0 * 3600.0;
    let base = GridSimulation::new(scenario.clone()).run(&trace, 1800.0);
    let base_conv = base
        .metrics
        .convergence_time(BALANCE_EPS, BALANCE_DWELL_S)
        .unwrap_or(base_len);

    let scaled_trace = trace.time_scaled(factor);
    // Decay must scale with the workload so the *measured* share window
    // covers the same relative span; the service delays stay absolute.
    let mut scaled_scenario = scenario;
    if let aequus_core::DecayPolicy::Exponential { half_life_s } = scaled_scenario.fairshare.decay {
        scaled_scenario.fairshare.decay = aequus_core::DecayPolicy::Exponential {
            half_life_s: half_life_s * factor,
        };
    }
    scaled_scenario.sample_interval_s *= factor;
    scaled_scenario.tick_interval_s *= factor.min(4.0); // keep RMS responsive
    let scaled = GridSimulation::new(scaled_scenario).run(&scaled_trace, 1800.0 * factor);
    let scaled_conv = scaled
        .metrics
        .convergence_time(BALANCE_EPS, BALANCE_DWELL_S * factor)
        .unwrap_or(base_len * factor);

    UpdateDelayOutcome {
        baseline_fraction: base_conv / base_len,
        scaled_fraction: scaled_conv / (base_len * factor),
    }
}

/// Run the Fig. 12 experiment: workload as baseline, but policy targets
/// 70/20/8/2 — misaligned with the actual 65.25/30.49/2.86/1.40 usage.
pub fn run_nonoptimal(jobs: usize, seed: u64) -> SimResult {
    let scenario = GridScenario::national_testbed(&nonoptimal_policy_shares(), seed);
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Run the §IV-A-4 experiment: of six sites, site 1 only *reads* global
/// usage data (contributes nothing) and site 2 only uses *local* data for
/// prioritization (but contributes).
pub fn run_partial_participation(jobs: usize, seed: u64) -> SimResult {
    let mut scenario = GridScenario::national_testbed(&baseline_policy_shares(), seed);
    scenario.clusters[1].participation = ParticipationMode::ReadOnly;
    scenario.clusters[2].participation = ParticipationMode::LocalOnly;
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Run the Fig. 13 experiment: U3's job share raised to 45.5%, burst at T/3,
/// policy = the bursty usage shares (47/38.5/12/2.5).
pub fn run_bursty(jobs: usize, seed: u64) -> SimResult {
    run_bursty_on(jobs, seed, 1)
}

/// [`run_bursty`] on `threads` shard workers.
pub fn run_bursty_on(jobs: usize, seed: u64, threads: usize) -> SimResult {
    let policy: Vec<(&str, f64)> = aequus_workload::users::bursty_usage_shares()
        .iter()
        .map(|(u, s)| (u.name(), *s))
        .collect();
    let scenario = ScenarioBuilder::testbed(&policy, seed)
        .threads(threads)
        .build();
    let trace = test_trace(&TestTraceConfig {
        total_jobs: jobs,
        ..TestTraceConfig::bursty(seed)
    });
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Run the chaos-calibration grid with health monitoring on: `sites`
/// clusters of 4 nodes under 30% gossip drops plus a 300 s outage of
/// site 1, the fault plan that `aequus-health --check` gates on. The fast
/// cadences (30 s publishes, 15 s ack timeouts, 60 s usage slots) make the
/// outage span several missed delivery opportunities, so the staleness SLO
/// fires and resolves within the run. `overlay` selects the gossip
/// topology (default full mesh) — hierarchical overlays populate the
/// health report's per-depth convergence-lag rollup.
pub fn run_health_chaos(
    seed: u64,
    sites: usize,
    overlay: Option<aequus_services::OverlayTopology>,
) -> SimResult {
    let mut sc = GridScenario::national_testbed(&baseline_policy_shares(), seed);
    sc.clusters.truncate(sites.max(2));
    for c in &mut sc.clusters {
        c.nodes = 4;
    }
    sc.timings.report_delay_s = 5.0;
    sc.timings.uss_publish_interval_s = 30.0;
    sc.timings.ums_refresh_interval_s = 30.0;
    sc.timings.fcs_refresh_interval_s = 30.0;
    sc.timings.lib_cache_ttl_s = 10.0;
    sc.timings.exchange_latency_s = 5.0;
    sc.usage_slot_s = 60.0;
    sc.tick_interval_s = 5.0;
    sc.retry = aequus_services::RetryPolicy {
        ack_timeout_s: 15.0,
        max_backoff_s: 60.0,
        jitter_frac: 0.2,
        history_cap: 8,
        outbox_cap: 8,
    };
    if let Some(topology) = overlay {
        sc.overlay = topology;
    }
    sc.faults = aequus_sim::FaultPlan {
        drop_probability: 0.30,
        outages: vec![aequus_sim::Outage {
            cluster: 1,
            from_s: 300.0,
            to_s: 600.0,
        }],
        crashes: vec![],
    };
    let sc = sc.with_health(aequus_telemetry::SloConfig::default());
    let trace = Trace::new(
        (0..48)
            .map(|i| aequus_workload::TraceJob {
                user: ["U65", "U30", "U3", "Uoth"][i % 4].to_string(),
                submit_s: i as f64 * 15.0,
                duration_s: 40.0,
                cores: 1,
            })
            .collect(),
    );
    GridSimulation::new(sc).run(&trace, 1800.0)
}

/// Run a baseline with injected faults: gossip drops and one site outage.
pub fn run_with_faults(jobs: usize, drop_probability: f64, seed: u64) -> SimResult {
    let scenario = ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
        .drops(drop_probability)
        .outage(3, 3600.0, 7200.0)
        .build();
    let trace = baseline_trace(jobs, seed);
    GridSimulation::new(scenario).run(&trace, 1800.0)
}

/// Utilization over the steady window (trimming ramp-up and drain): mean of
/// samples between `lo_frac` and `hi_frac` of the run.
pub fn steady_utilization(result: &SimResult, lo_frac: f64, hi_frac: f64) -> f64 {
    let samples = result.metrics.samples();
    if samples.is_empty() {
        return 0.0;
    }
    let end = result.end_s;
    let in_window: Vec<f64> = samples
        .iter()
        .filter(|s| s.t_s >= lo_frac * end && s.t_s <= hi_frac * end)
        .map(|s| s.utilization)
        .collect();
    if in_window.is_empty() {
        0.0
    } else {
        in_window.iter().sum::<f64>() / in_window.len() as f64
    }
}

/// One measured point of the reliability fault sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultSweepPoint {
    /// Per-delivery drop probability injected into the exchange transport.
    pub drop_probability: f64,
    /// Earliest time from which all site usage views stay within 1e-6 of
    /// each other through the end of the run (`None` = never converged).
    pub convergence_s: Option<f64>,
    /// Run end (submit horizon + drain).
    pub end_s: f64,
    /// Total reliability-layer retransmissions across all sites.
    pub retries: u64,
    /// Sequence gaps receivers detected.
    pub seq_gaps: u64,
    /// Anti-entropy range pulls issued.
    pub resyncs: u64,
    /// Cumulative-snapshot fallbacks (history compacted past the gap).
    pub snapshots: u64,
    /// Cross-site view divergence at the final sample (core-seconds).
    pub final_divergence: f64,
}

/// Sweep the exchange drop rate and measure how long the reliability layer
/// (ack/retry/backoff + anti-entropy) takes to re-converge every site's view
/// of grid usage, plus the protocol traffic it took to get there.
///
/// The workload is bounded on purpose: views can only fully agree once the
/// grid quiesces, so — unlike the paper-trace baselines with their
/// heavy-tailed durations — the sweep uses fixed-length jobs over a 3 h
/// horizon and drains long past the last completion, publish interval, and
/// retry backoff. Convergence time then measures the *protocol*, not
/// workload stragglers.
pub fn run_fault_sweep(jobs: usize, drop_rates: &[f64], seed: u64) -> Vec<FaultSweepPoint> {
    let horizon_s = 10_800.0;
    let trace = cycle_trace(
        &SWEEP_USERS,
        jobs,
        |i| i as f64 * horizon_s / jobs.max(1) as f64,
        |i| 180.0 + 60.0 * (i % 4) as f64,
    );
    // Each drop rate is an independent simulation — sweep them in parallel.
    parallel_sweep(drop_rates, |&drop_probability| {
        let scenario = ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
            .telemetry()
            .drops(drop_probability)
            .build();
        let result = GridSimulation::new(scenario).run(&trace, 3600.0);
        let total = |name: &str| -> u64 {
            result
                .site_telemetry
                .iter()
                .map(|s| s.counters.get(name).copied().unwrap_or(0))
                .sum()
        };
        FaultSweepPoint {
            drop_probability,
            convergence_s: result.metrics.view_convergence_time(1e-6),
            end_s: result.end_s,
            retries: total("aequus_uss_retries_total"),
            seq_gaps: total("aequus_uss_seq_gaps_total"),
            resyncs: total("aequus_uss_resyncs_total"),
            snapshots: total("aequus_uss_snapshots_total"),
            final_divergence: result
                .metrics
                .samples()
                .last()
                .map(|s| s.usage_view_divergence)
                .unwrap_or(f64::NAN),
        }
    })
}

/// One seed of the crash-recovery comparison: the identical crash plan run
/// twice — once with the durable per-site store (recovery = checkpoint
/// install + WAL replay, then anti-entropy only for the crash-window
/// delta) and once volatile (recovery = surcharged cumulative peer
/// snapshots). The convergence-time gap is the store's recovery advantage.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPoint {
    /// Scenario seed.
    pub seed: u64,
    /// View convergence time of the store-backed run.
    pub durable_convergence_s: Option<f64>,
    /// View convergence time of the snapshot-only run.
    pub volatile_convergence_s: Option<f64>,
    /// `volatile - durable` when both converged: seconds of catch-up the
    /// WAL replay saved.
    pub advantage_s: Option<f64>,
    /// WAL frames the crashed site replayed on recovery.
    pub frames_replayed: u64,
    /// Torn tails truncated (one per simulated crash).
    pub torn_tails: u64,
    /// Checkpoints the crashed site's store wrote over the run.
    pub checkpoints: u64,
    /// Cumulative snapshots peers served in the durable run.
    pub durable_snapshots: u64,
    /// Cumulative snapshots peers served in the volatile run.
    pub volatile_snapshots: u64,
}

/// The recovery testbed: the chaos suite's compressed 3-cluster grid with
/// a mid-workload crash of site 2 and a snapshot-transfer surcharge, so
/// bulk catch-up is visibly more expensive than incremental repair. The
/// retry history is sized into the window that separates the recovery
/// paths — deep enough that peers can retry every crash-window summary,
/// too shallow to reach back to sequence 1 for a from-scratch resync.
fn recovery_scenario(seed: u64, durable: bool) -> GridScenario {
    ScenarioBuilder::testbed(&baseline_policy_shares(), seed)
        .telemetry()
        .snapshot_transfer(240.0)
        .sites(3)
        .nodes_per_site(4)
        .compressed()
        .tight_retry(12, 16)
        .crash(2, 400.0, 700.0)
        .durable(durable)
        .build()
}

/// Quantify WAL-replay recovery against snapshot-only catch-up: for each
/// seed, run the same crash plan durable and volatile and compare view
/// convergence times. `jobs` scales the fixed-shape workload (one 40 s
/// single-core job every 15 s); the default 48 keeps the submission window
/// wrapped around the crash so convergence measures recovery, not
/// stragglers.
pub fn run_recovery_sweep(jobs: usize, seeds: &[u64]) -> Vec<RecoveryPoint> {
    let trace = uniform_trace(jobs, 15.0, 40.0);
    let horizon_s = (jobs as f64 * 15.0 + 1100.0).max(1800.0);
    // Seeds are independent; sweep them in parallel (the durable/volatile
    // pair inside each seed stays sequential — it shares nothing anyway,
    // but two runs per thread keeps the fan-out modest).
    parallel_sweep(seeds, |&seed| {
        let snapshots_served = |r: &SimResult| -> u64 {
            r.site_telemetry
                .iter()
                .filter_map(|s| s.counters.get("aequus_uss_snapshots_total"))
                .sum()
        };
        let durable = GridSimulation::new(recovery_scenario(seed, true)).run(&trace, horizon_s);
        let volatile = GridSimulation::new(recovery_scenario(seed, false)).run(&trace, horizon_s);
        let stats = durable.site_store_stats[2].unwrap_or_default();
        let d = durable.metrics.view_convergence_time(1e-6);
        let v = volatile.metrics.view_convergence_time(1e-6);
        RecoveryPoint {
            seed,
            durable_convergence_s: d,
            volatile_convergence_s: v,
            advantage_s: d.zip(v).map(|(d, v)| v - d),
            frames_replayed: stats.frames_replayed,
            torn_tails: stats.torn_tails,
            checkpoints: stats.checkpoints,
            durable_snapshots: snapshots_served(&durable),
            volatile_snapshots: snapshots_served(&volatile),
        }
    })
}

/// Configuration of the engine-scaling benchmark: how big the grid is and
/// which worker counts to time against the serial run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Policy leaves (synthetic equal-share users; the trace cycles through
    /// them, and the per-sample readout is capped so sampling stays O(1)).
    pub users: usize,
    /// Sites in the fleet.
    pub sites: usize,
    /// Hosts per site.
    pub nodes_per_site: u32,
    /// Jobs submitted over the one-hour horizon.
    pub jobs: usize,
    /// Worker counts to measure; must start with 1 (the speedup baseline).
    pub threads: Vec<usize>,
    /// Scenario seed.
    pub seed: u64,
    /// Continuous-profiler mode for every timed run. `Full` by default: the
    /// sweep's headline number is the *speedup ratio*, which the profiler's
    /// bounded overhead cancels out of, and in exchange every point carries
    /// a Chrome trace and a folded profile whose cross-thread-count
    /// byte-equality the `--check` gate asserts.
    pub profile: ProfileMode,
}

impl ScaleConfig {
    /// The ROADMAP's first waypoint: 100k users over 32 sites (1024 cores),
    /// sized so the offered load saturates the grid without unbounded
    /// queues. This is the configuration the ≥4×-on-8-cores target is
    /// stated against.
    pub fn full() -> Self {
        Self {
            users: 100_000,
            sites: 32,
            nodes_per_site: 32,
            jobs: 28_000,
            threads: vec![1, 2, 4, 8],
            seed: 42,
            profile: ProfileMode::Full,
        }
    }

    /// CI-sized smoke shape: small enough to run inside the gate on any
    /// machine, big enough that the epoch barriers and cross-shard mail
    /// paths are genuinely exercised.
    pub fn smoke() -> Self {
        Self {
            users: 2_000,
            sites: 8,
            nodes_per_site: 8,
            jobs: 1_200,
            threads: vec![1, 8],
            seed: 42,
            profile: ProfileMode::Full,
        }
    }
}

/// One timed point of the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Shard-worker threads.
    pub threads: usize,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// Events the engine processed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock speedup over the 1-thread point.
    pub speedup_x: f64,
    /// Jobs completed (must be identical at every thread count).
    pub completed: u64,
}

/// The scaling sweep's outcome: timings plus the determinism cross-check.
#[derive(Debug, Clone)]
pub struct ScaleSweep {
    /// One point per requested worker count, in input order.
    pub points: Vec<ScalePoint>,
    /// `None` when every multi-thread run replayed the serial run exactly
    /// (within 1e-9); otherwise the first discrepancy, described.
    pub mismatch: Option<String>,
    /// One `(threads, profile)` pair per point when the sweep ran with the
    /// continuous profiler on, in input order.
    pub profiles: Vec<(usize, RunProfile)>,
}

impl ScaleSweep {
    /// Best wall-clock speedup across the measured worker counts.
    pub fn best_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.speedup_x)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Events/second at a given worker count, if measured.
    pub fn events_per_sec(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.threads == threads)
            .map(|p| p.events_per_sec)
    }

    /// Cross-worker-count determinism of the folded profile: `None` when
    /// every point's folded stacks are byte-identical to the first point's
    /// (the profiler's schedule-derived view must not depend on how the
    /// schedule was executed); otherwise the first differing pair, named.
    pub fn folded_mismatch(&self) -> Option<String> {
        let mut iter = self.profiles.iter();
        let (base_threads, first) = iter.next()?;
        let reference = first.to_folded();
        for (threads, profile) in iter {
            if profile.to_folded() != reference {
                return Some(format!(
                    "folded profile at {threads} workers differs from the \
                     {base_threads}-worker reference"
                ));
            }
        }
        None
    }
}

/// True when two readings differ beyond 1e-9 — NaN (a missing counterpart)
/// always counts as a difference.
fn differs(x: f64, y: f64) -> bool {
    let d = (x - y).abs();
    d.is_nan() || d >= 1e-9
}

/// Compare a multi-thread run against the serial reference; `None` = match.
fn scale_mismatch(serial: &SimResult, parallel: &SimResult, threads: usize) -> Option<String> {
    if serial.total_completed() != parallel.total_completed() {
        return Some(format!(
            "threads={threads}: completed {} vs {}",
            serial.total_completed(),
            parallel.total_completed()
        ));
    }
    if serial.events_processed != parallel.events_processed {
        return Some(format!(
            "threads={threads}: events {} vs {}",
            serial.events_processed, parallel.events_processed
        ));
    }
    for (site, (a, b)) in serial
        .site_usage_views
        .iter()
        .zip(&parallel.site_usage_views)
        .enumerate()
    {
        for (user, x) in a {
            let y = b.get(user).copied().unwrap_or(f64::NAN);
            if differs(*x, y) {
                return Some(format!(
                    "threads={threads}: site {site} view for {user:?}: {x} vs {y}"
                ));
            }
        }
    }
    let (sa, sb) = (serial.metrics.samples(), parallel.metrics.samples());
    if sa.len() != sb.len() {
        return Some(format!(
            "threads={threads}: {} vs {} samples",
            sa.len(),
            sb.len()
        ));
    }
    for (x, y) in sa.iter().zip(sb) {
        if differs(x.utilization, y.utilization)
            || differs(x.usage_view_divergence, y.usage_view_divergence)
            || x.completed != y.completed
        {
            return Some(format!("threads={threads}: sample at t={} differs", x.t_s));
        }
    }
    None
}

/// Time the same large scenario at each requested worker count and verify
/// every multi-thread run is seed-for-seed identical to the serial one.
/// The measured speedup is honest wall clock — on a single-core host it
/// hovers around (or below) 1×, which is exactly what the parallelism-aware
/// CI gate expects.
pub fn run_scale_sweep(cfg: &ScaleConfig) -> ScaleSweep {
    let users = synthetic_users(cfg.users);
    let horizon_s = 3600.0;
    let trace = cycle_trace(
        &users,
        cfg.jobs,
        |i| i as f64 * horizon_s / cfg.jobs.max(1) as f64,
        |_| 120.0,
    );
    let scenario = |threads: usize| {
        ScenarioBuilder::equal_share_users(cfg.users, cfg.seed)
            .sites(cfg.sites)
            .nodes_per_site(cfg.nodes_per_site)
            .metrics_user_cap(8)
            .threads(threads)
            .profiling(cfg.profile)
            .build()
    };
    let mut points = Vec::new();
    let mut profiles = Vec::new();
    let mut mismatch = None;
    let mut serial: Option<SimResult> = None;
    for &threads in &cfg.threads {
        let start = Instant::now();
        let mut result = GridSimulation::new(scenario(threads)).run(&trace, 1800.0);
        let wall_s = start.elapsed().as_secs_f64().max(1e-9);
        if let Some(profile) = result.profile.take() {
            profiles.push((threads, profile));
        }
        let base_wall = points.first().map_or(wall_s, |p: &ScalePoint| p.wall_s);
        points.push(ScalePoint {
            threads,
            wall_s,
            events: result.events_processed,
            events_per_sec: result.events_processed as f64 / wall_s,
            speedup_x: base_wall / wall_s,
            completed: result.total_completed(),
        });
        match &serial {
            None => serial = Some(result),
            Some(reference) => {
                if mismatch.is_none() {
                    mismatch = scale_mismatch(reference, &result, threads);
                }
            }
        }
    }
    ScaleSweep {
        points,
        mismatch,
        profiles,
    }
}

/// Parse the first CLI argument as a job count, defaulting to `default`
/// (lets every experiment binary run in quick mode: `cargo run --bin fig13
/// -- 8000`).
pub fn jobs_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

/// Parse the second CLI argument as a shard-worker thread count (the
/// engine's results are thread-count independent, so this only changes
/// wall clock).
pub fn threads_arg(default: usize) -> usize {
    std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_small_run_converges() {
        let result = run_baseline(20_000, 3);
        assert!(result.total_completed() > 19_000);
        assert!(
            result
                .metrics
                .convergence_time(BALANCE_EPS, BALANCE_DWELL_S)
                .is_some(),
            "baseline must reach a balance window"
        );
    }

    #[test]
    fn bursty_u3_priority_bound() {
        // §IV-A-5: U3 max priority = 0.5·(1 + 0.12) = 0.56.
        let result = run_bursty(8000, 3);
        let max_u3 = result
            .metrics
            .priority_series("U3")
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_u3 <= 0.56 + 1e-9, "{max_u3}");
        assert!(
            max_u3 > 0.40,
            "U3 idles pre-burst, priority must rise: {max_u3}"
        );
    }

    #[test]
    fn faulted_run_still_completes() {
        let result = run_with_faults(4000, 0.2, 5);
        assert!(result.total_completed() as f64 > 3800.0);
    }
}
