//! Shared machinery for the benchmark snapshots (`BENCH_*.json`) and their
//! regression gates: the gate table with direction-aware tolerances, the
//! flat-JSON key extractor, previous-snapshot discovery, the comparison
//! itself, and profile-based regression attribution.
//!
//! Both `bench_snapshot` (writes this PR's snapshot and self-gates) and
//! `bench_diff` (compares any two snapshots and attributes regressions to
//! the profiler stage whose wall share moved most) build on this module, so
//! the two binaries can never disagree about what counts as a regression.

use aequus_telemetry::RunProfile;

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Latency-shaped: regression = current grew past tolerance.
    LowerIsBetter,
    /// Throughput-shaped: regression = current shrank past tolerance.
    HigherIsBetter,
}

/// One gated snapshot key: a regression must exceed both the relative
/// tolerance (`prev * tol`, or fall below `prev / tol`) and the absolute
/// slack, so noise near zero never trips.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// The snapshot key.
    pub key: &'static str,
    /// Regression direction.
    pub dir: Dir,
    /// Relative tolerance (multiplicative).
    pub tol: f64,
    /// Absolute slack in the key's own unit.
    pub slack: f64,
}

const fn gate(key: &'static str, dir: Dir, tol: f64, slack: f64) -> Gate {
    Gate {
        key,
        dir,
        tol,
        slack,
    }
}

/// The snapshot regression gates. Tolerances are deliberately wide for
/// wall-clock-derived keys (shared CI hosts are noisy); the tight hard
/// gates live in the dedicated binaries (`telemetry_overhead`,
/// `profiler_overhead`, `scale_sweep --check`) which measure with an
/// interleaved-minima harness instead of one-shot walls.
///
/// The tracing ratios are *whole-simulation* wall ratios against the
/// telemetry-only run (see `crates/bench/README.md` for the unit), so a
/// healthy value sits near 1.0 and the 0.10 slack absorbs run-to-run noise.
pub const GATES: &[Gate] = &[
    gate("refresh_mean_s", Dir::LowerIsBetter, 1.5, 0.005),
    gate("refresh_p99_s", Dir::LowerIsBetter, 1.5, 0.005),
    gate("query_p99_s", Dir::LowerIsBetter, 1.5, 0.005),
    gate("gossip_divergent_s", Dir::LowerIsBetter, 1.25, 300.0),
    // Wire-format efficiency: codec-encoded bytes per active user on the
    // smoke sweep's full-mesh/Delta point. Deterministic per revision, so
    // the tolerance only absorbs workload-shape drift, not host noise.
    gate("gossip_bytes_per_user", Dir::LowerIsBetter, 1.25, 16.0),
    // Latest cross-site convergence across the hierarchical overlays;
    // quantized to the 60 s sample interval — one extra sample of drift is
    // tolerated, two is a regression.
    gate("overlay_convergence_s", Dir::LowerIsBetter, 1.2, 90.0),
    gate("tracing_unsampled_ratio", Dir::LowerIsBetter, 1.5, 0.10),
    gate("tracing_full_ratio", Dir::LowerIsBetter, 1.5, 0.10),
    // Convergence times quantize to the 60 s sample interval; one extra
    // sample of drift is tolerated, two is a regression.
    gate("recovery_wal_replay_s", Dir::LowerIsBetter, 1.2, 90.0),
    gate("recovery_snapshot_only_s", Dir::LowerIsBetter, 1.2, 90.0),
    gate("scale_speedup_x", Dir::HigherIsBetter, 1.5, 0.5),
    gate("events_per_sec_1t", Dir::HigherIsBetter, 2.0, 50_000.0),
    gate("events_per_sec_8t", Dir::HigherIsBetter, 2.0, 50_000.0),
    // Fairness-health figures from the chaos-calibration runs. All three
    // are sim-time measurements (deterministic per revision), quantized to
    // the 60 s sample cadence — the slack tolerates one to two samples of
    // drift; −1.0 ("did not fire / no such depth") skips via the negative
    // sentinel rule above.
    gate("staleness_p99_s", Dir::LowerIsBetter, 1.25, 90.0),
    gate("alert_detection_lag_s", Dir::LowerIsBetter, 1.25, 90.0),
    gate("depth2_convergence_lag_s", Dir::LowerIsBetter, 1.25, 120.0),
    // Backfill dispatch matrix headline cells (smoke shape, Percental
    // column). Sim-time-deterministic per revision, so the tolerances only
    // absorb workload-shape drift. Utilization is throughput-shaped; the
    // slowdown/convergence/predictor keys are latency-shaped, convergence
    // quantized to the 60 s sample cadence with the −1.0 "never balanced"
    // sentinel skipping via the negative rule above.
    gate("backfill_fifo_util_pct", Dir::HigherIsBetter, 1.15, 3.0),
    gate("backfill_easy_util_pct", Dir::HigherIsBetter, 1.15, 3.0),
    gate("backfill_easy_slowdown", Dir::LowerIsBetter, 1.25, 0.5),
    gate("backfill_easy_conv_s", Dir::LowerIsBetter, 1.2, 120.0),
    gate("backfill_predict_rel_err", Dir::LowerIsBetter, 1.25, 0.1),
];

/// Keys that only measure something real on a multi-core host: wall-clock
/// thread scaling on a 1-core container is a property of the container, not
/// the engine, so these are skipped when either side of a comparison ran
/// with fewer than [`SCALING_MIN_CORES`] cores.
pub const SCALING_KEYS: &[&str] = &["scale_speedup_x", "events_per_sec_8t"];

/// Minimum host cores for the thread-scaling keys to gate.
pub const SCALING_MIN_CORES: usize = 8;

/// The host's available parallelism (1 when unknown).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pull the numeric value of `"key": <number>` out of a flat JSON document
/// without a parser; every snapshot key is globally unique by construction.
pub fn extract(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Newest `BENCH_*.json` in the working directory other than `exclude`,
/// by modification time: `(file name, contents)`.
pub fn previous_snapshot(exclude: &str) -> Option<(String, String)> {
    let mut candidates: Vec<(std::time::SystemTime, String)> = std::fs::read_dir(".")
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if name.starts_with("BENCH_") && name.ends_with(".json") && name != exclude {
                Some((e.metadata().ok()?.modified().ok()?, name))
            } else {
                None
            }
        })
        .collect();
    candidates.sort();
    let (_, name) = candidates.pop()?;
    let body = std::fs::read_to_string(&name).ok()?;
    Some((name, body))
}

/// One regressed key of a snapshot comparison.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The gated key.
    pub key: &'static str,
    /// Previous value.
    pub prev: f64,
    /// Current value.
    pub cur: f64,
    /// The gate's relative tolerance, for the failure message.
    pub tol: f64,
}

/// Compare two snapshot documents key by key against [`GATES`], printing one
/// line per key, and return the regressions (empty = gate passes). When
/// `skip_scaling` is set (a host with fewer than [`SCALING_MIN_CORES`] cores
/// on either side), the [`SCALING_KEYS`] are reported but not gated.
pub fn compare(prev: &str, cur: &str, skip_scaling: bool) -> Vec<Regression> {
    let mut failures = Vec::new();
    for g in GATES {
        if skip_scaling && SCALING_KEYS.contains(&g.key) {
            println!(
                "  {}: thread-scaling key on a <{SCALING_MIN_CORES}-core host, skipped",
                g.key
            );
            continue;
        }
        let (Some(prev_v), Some(cur_v)) = (extract(prev, g.key), extract(cur, g.key)) else {
            println!("  {}: missing in one snapshot, skipped", g.key);
            continue;
        };
        if prev_v < 0.0 || cur_v < 0.0 {
            println!(
                "  {}: not measured on one side ({prev_v:?} -> {cur_v:?}), skipped",
                g.key
            );
            continue;
        }
        let regressed = match g.dir {
            Dir::LowerIsBetter => cur_v > prev_v * g.tol && cur_v > prev_v + g.slack,
            Dir::HigherIsBetter => cur_v < prev_v / g.tol && cur_v < prev_v - g.slack,
        };
        if regressed {
            failures.push(Regression {
                key: g.key,
                prev: prev_v,
                cur: cur_v,
                tol: g.tol,
            });
        } else {
            println!("  ok {}: {prev_v:?} -> {cur_v:?}", g.key);
        }
    }
    failures
}

/// Whether the comparison should skip the thread-scaling keys: true when
/// either snapshot records (or, absent a record, the running host has) fewer
/// than [`SCALING_MIN_CORES`] cores. Snapshots before the `host_cores` key
/// existed fall back to the current host's count — the best available proxy,
/// since CI re-runs on the same class of machine.
pub fn skip_scaling_keys(prev: &str, cur: &str) -> bool {
    let cores = |doc: &str| {
        extract(doc, "host_cores")
            .map(|c| c as usize)
            .unwrap_or_else(host_cores)
    };
    cores(prev) < SCALING_MIN_CORES || cores(cur) < SCALING_MIN_CORES
}

/// Attribute a wall-clock regression to the profiled stage whose share of
/// total wall time grew most between two runs: `(stage, share delta)`.
///
/// Shares (not absolute nanoseconds) make the attribution robust to the two
/// runs having different total durations — an injected stall shows up as
/// `barrier.wait` taking a larger *fraction* of the run, whatever the run's
/// length. Returns `None` when either profile carries no wall time at all
/// (counters-only profiles can't attribute).
pub fn attribute_regression(prev: &RunProfile, cur: &RunProfile) -> Option<(String, f64)> {
    let (before, after) = (prev.wall_shares(), cur.wall_shares());
    if before.is_empty() || after.is_empty() {
        return None;
    }
    let mut best: Option<(String, f64)> = None;
    for (stage, share) in &after {
        let delta = share - before.get(stage).copied().unwrap_or(0.0);
        if best.as_ref().is_none_or(|(_, d)| delta > *d) {
            best = Some((stage.clone(), delta));
        }
    }
    best
}

/// Load the `PROFILE_*.json` sibling of a `BENCH_*.json` snapshot, if one
/// was written next to it (`BENCH_PR7.json` → `PROFILE_PR7.json`).
pub fn sibling_profile(bench_name: &str) -> Option<RunProfile> {
    let profile_name = bench_name.replace("BENCH_", "PROFILE_");
    if profile_name == bench_name {
        return None;
    }
    let body = std::fs::read_to_string(profile_name).ok()?;
    RunProfile::from_json(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_telemetry::StageStats;

    #[test]
    fn extract_reads_flat_keys() {
        let doc = "{\n \"a\": 1.5,\n \"b\": -2,\n \"c\": 3e-4\n}";
        assert_eq!(extract(doc, "a"), Some(1.5));
        assert_eq!(extract(doc, "b"), Some(-2.0));
        assert_eq!(extract(doc, "c"), Some(3e-4));
        assert_eq!(extract(doc, "missing"), None);
    }

    #[test]
    fn compare_is_direction_aware() {
        let prev = "{\"refresh_mean_s\": 0.010, \"events_per_sec_1t\": 1000000.0}";
        // refresh doubled past tol+slack, throughput halved past tol+slack.
        let cur = "{\"refresh_mean_s\": 0.050, \"events_per_sec_1t\": 400000.0}";
        let failures = compare(prev, cur, false);
        let keys: Vec<_> = failures.iter().map(|f| f.key).collect();
        assert_eq!(keys, vec!["refresh_mean_s", "events_per_sec_1t"]);
        // Improvements in both directions pass.
        let better = "{\"refresh_mean_s\": 0.001, \"events_per_sec_1t\": 2000000.0}";
        assert!(compare(prev, better, false).is_empty());
    }

    #[test]
    fn scaling_keys_skip_on_small_hosts() {
        let prev =
            "{\"scale_speedup_x\": 4.0, \"events_per_sec_8t\": 1000000.0, \"host_cores\": 16}";
        let cur = "{\"scale_speedup_x\": 0.9, \"events_per_sec_8t\": 100000.0, \"host_cores\": 1}";
        assert!(skip_scaling_keys(prev, cur), "1-core side must skip");
        assert!(compare(prev, cur, true).is_empty());
        assert!(
            !compare(prev, cur, false).is_empty(),
            "same numbers gate when not skipped"
        );
        let both_big = "{\"host_cores\": 8}";
        assert!(!skip_scaling_keys(prev, both_big));
    }

    #[test]
    fn attribution_picks_the_stage_whose_share_grew() {
        let mut before = RunProfile::default();
        let mut shard = aequus_telemetry::ShardProfile {
            shard: 0,
            ..Default::default()
        };
        shard.stages.insert(
            "epoch".into(),
            StageStats {
                calls: 10,
                wall_ns: 900,
                bytes: 0,
            },
        );
        shard.stages.insert(
            "barrier.wait".into(),
            StageStats {
                calls: 10,
                wall_ns: 100,
                bytes: 0,
            },
        );
        before.shards.push(shard.clone());
        let mut after = RunProfile::default();
        shard.stages.insert(
            "barrier.wait".into(),
            StageStats {
                calls: 10,
                wall_ns: 2100,
                bytes: 0,
            },
        );
        after.shards.push(shard);
        let (stage, delta) = attribute_regression(&before, &after).expect("both have wall time");
        assert_eq!(stage, "barrier.wait");
        assert!(delta > 0.5, "{delta}");
        // Counters-only profiles can't attribute.
        assert!(attribute_regression(&RunProfile::default(), &after).is_none());
    }
}
