//! Parallel parameter sweeps and the shared scenario/trace builders.
//!
//! Two kinds of parallelism live here. [`parallel_sweep`] runs many
//! *independent* simulations concurrently (ablations, seed matrices); a
//! single run's internal parallelism is the sharded engine's job
//! (`GridScenario::with_threads`), and any combination of the two is
//! deterministic. [`ScenarioBuilder`] and the trace helpers dedup the
//! scenario-construction boilerplate the bench binaries used to repeat:
//! the compressed 3-site chaos grid, the tight retry policy, the cycling
//! four-user traces.

use aequus_services::{RetryPolicy, ServiceTimings};
use aequus_sim::{GridScenario, Outage};
use aequus_workload::{Trace, TraceJob};
use std::sync::Mutex;

/// The four model users every synthetic sweep trace cycles through — the
/// paper's usage-share quartet.
pub const SWEEP_USERS: [&str; 4] = ["U65", "U30", "U3", "Uoth"];

/// `n` synthetic equal-standing user names (`u000000`…), for scale runs
/// where the paper's four-user policy would be unrealistically small.
pub fn synthetic_users(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("u{i:06}")).collect()
}

/// A trace cycling jobs over `users` with caller-supplied submit/duration
/// schedules (all single-core, the test bed's virtual-host shape).
pub fn cycle_trace<S: AsRef<str>>(
    users: &[S],
    jobs: usize,
    submit_s: impl Fn(usize) -> f64,
    duration_s: impl Fn(usize) -> f64,
) -> Trace {
    Trace::new(
        (0..jobs)
            .map(|i| TraceJob {
                user: users[i % users.len()].as_ref().to_string(),
                submit_s: submit_s(i),
                duration_s: duration_s(i),
                cores: 1,
            })
            .collect(),
    )
}

/// The fixed-cadence sweep workload: one `duration_s` single-core job every
/// `interval_s`, users cycling through [`SWEEP_USERS`]. Bounded on purpose —
/// convergence sweeps need the grid to quiesce.
pub fn uniform_trace(jobs: usize, interval_s: f64, duration_s: f64) -> Trace {
    cycle_trace(
        &SWEEP_USERS,
        jobs,
        |i| i as f64 * interval_s,
        |_| duration_s,
    )
}

/// Fluent construction of the recurring bench scenarios on top of
/// [`GridScenario::national_testbed`]. Every method is a value the bench
/// binaries used to set by hand; `build` hands back the plain scenario.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    sc: GridScenario,
}

impl ScenarioBuilder {
    /// Start from the paper's six-cluster national test bed.
    pub fn testbed(policy_shares: &[(&str, f64)], seed: u64) -> Self {
        Self {
            sc: GridScenario::national_testbed(policy_shares, seed),
        }
    }

    /// Start from a test bed whose policy is `users` synthetic equal-share
    /// leaves (see [`synthetic_users`]) — the nation-scale shape.
    pub fn equal_share_users(users: usize, seed: u64) -> Self {
        let names = synthetic_users(users);
        let share = 1.0 / users.max(1) as f64;
        let shares: Vec<(&str, f64)> = names.iter().map(|n| (n.as_str(), share)).collect();
        Self::testbed(&shares, seed)
    }

    /// Resize the fleet to exactly `n` sites: truncate, or extend by cloning
    /// the last cluster spec (homogeneous growth).
    pub fn sites(mut self, n: usize) -> Self {
        let template = self.sc.clusters.last().cloned().expect("non-empty fleet");
        self.sc.clusters.truncate(n);
        while self.sc.clusters.len() < n {
            self.sc.clusters.push(template.clone());
        }
        self
    }

    /// Set every cluster's host count.
    pub fn nodes_per_site(mut self, nodes: u32) -> Self {
        for c in &mut self.sc.clusters {
            c.nodes = nodes;
        }
        self
    }

    /// The chaos/recovery suites' compressed timing profile: fast service
    /// delays (5 s exchange latency), 30 s publish/refresh cadence, 60 s
    /// usage slots, 5 s ticks — the whole delay chain squeezed so faults and
    /// recovery play out inside a sub-hour run.
    pub fn compressed(mut self) -> Self {
        self.sc.timings = ServiceTimings {
            report_delay_s: 5.0,
            uss_publish_interval_s: 30.0,
            ums_refresh_interval_s: 30.0,
            fcs_refresh_interval_s: 30.0,
            lib_cache_ttl_s: 10.0,
            lib_identity_ttl_s: 60.0,
            exchange_latency_s: 5.0,
        };
        self.sc.usage_slot_s = 60.0;
        self.sc.tick_interval_s = 5.0;
        self
    }

    /// The tight reliability-layer configuration the fault suites use
    /// (15 s ack timeout, 60 s backoff ceiling, 20% jitter) with explicit
    /// retention caps.
    pub fn tight_retry(mut self, history_cap: usize, outbox_cap: usize) -> Self {
        self.sc.retry = RetryPolicy {
            ack_timeout_s: 15.0,
            max_backoff_s: 60.0,
            jitter_frac: 0.2,
            history_cap,
            outbox_cap,
        };
        self
    }

    /// Per-delivery exchange drop probability.
    pub fn drops(mut self, probability: f64) -> Self {
        self.sc.faults.drop_probability = probability;
        self
    }

    /// Add a network partition of `cluster` over `[from_s, to_s)`.
    pub fn outage(mut self, cluster: usize, from_s: f64, to_s: f64) -> Self {
        self.sc.faults.outages.push(Outage {
            cluster,
            from_s,
            to_s,
        });
        self
    }

    /// Add a crash-recovery cycle of `cluster` over `[from_s, to_s)`.
    pub fn crash(mut self, cluster: usize, from_s: f64, to_s: f64) -> Self {
        self.sc.faults.crashes.push(Outage {
            cluster,
            from_s,
            to_s,
        });
        self
    }

    /// Enable per-site telemetry.
    pub fn telemetry(mut self) -> Self {
        self.sc = self.sc.with_telemetry();
        self
    }

    /// Surcharge snapshot catch-up transfers by `seconds`.
    pub fn snapshot_transfer(mut self, seconds: f64) -> Self {
        self.sc = self.sc.with_snapshot_transfer(seconds);
        self
    }

    /// Attach (or not) the durable per-site store — conditional so the
    /// recovery comparison can run the same plan both ways.
    pub fn durable(mut self, on: bool) -> Self {
        if on {
            self.sc = self.sc.with_durable_store();
        }
        self
    }

    /// Shard-worker threads for the parallel engine (1 = serial).
    pub fn threads(mut self, n: usize) -> Self {
        self.sc = self.sc.with_threads(n);
        self
    }

    /// Enable the continuous profiler (implies telemetry when not `Off`).
    pub fn profiling(mut self, mode: aequus_telemetry::ProfileMode) -> Self {
        self.sc = self.sc.with_profiling(mode);
        self
    }

    /// Cap the per-sample fairshare readout to the first `cap` policy users.
    pub fn metrics_user_cap(mut self, cap: usize) -> Self {
        self.sc = self.sc.with_metrics_user_cap(cap);
        self
    }

    /// Finish: the configured scenario.
    pub fn build(self) -> GridScenario {
        self.sc
    }
}

/// Run `f` over every parameter in parallel (one thread per parameter, which
/// is the right shape for a handful of multi-second simulation runs) and
/// return the results in input order.
pub fn parallel_sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..params.len()).map(|_| None).collect());
    let panicked = std::thread::scope(|scope| {
        let handles: Vec<_> = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let results = &results;
                let f = &f;
                scope.spawn(move || {
                    let r = f(p);
                    results.lock().expect("sweep mutex poisoned")[i] = Some(r);
                })
            })
            .collect();
        handles.into_iter().any(|h| h.join().is_err())
    });
    assert!(!panicked, "sweep worker panicked");
    results
        .into_inner()
        .expect("sweep mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let params: Vec<u64> = (0..16).collect();
        let out = parallel_sweep(&params, |&p| p * p);
        assert_eq!(out, params.iter().map(|p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_shared_context() {
        let shared = vec![1.0f64; 1000];
        let params = [2.0f64, 3.0, 4.0];
        let out = parallel_sweep(&params, |&p| shared.iter().sum::<f64>() * p);
        assert_eq!(out, vec![2000.0, 3000.0, 4000.0]);
    }

    #[test]
    fn empty_params() {
        let out: Vec<u32> = parallel_sweep::<u32, u32, _>(&[], |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        parallel_sweep(&[1], |_| -> u32 { panic!("boom") });
    }

    #[test]
    fn builder_grows_and_shrinks_fleet() {
        let sc = ScenarioBuilder::testbed(&[("U65", 1.0)], 1)
            .sites(32)
            .nodes_per_site(8)
            .build();
        assert_eq!(sc.clusters.len(), 32);
        assert_eq!(sc.total_cores(), 32 * 8);
        let sc = ScenarioBuilder::testbed(&[("U65", 1.0)], 1)
            .sites(3)
            .build();
        assert_eq!(sc.clusters.len(), 3);
    }

    #[test]
    fn builder_replicates_recovery_shape() {
        let sc = ScenarioBuilder::testbed(&[("U65", 1.0)], 7)
            .sites(3)
            .nodes_per_site(4)
            .compressed()
            .tight_retry(12, 16)
            .crash(2, 400.0, 700.0)
            .telemetry()
            .snapshot_transfer(240.0)
            .durable(true)
            .build();
        assert_eq!(sc.timings.exchange_latency_s, 5.0);
        assert_eq!(sc.tick_interval_s, 5.0);
        assert_eq!(sc.retry.history_cap, 12);
        assert_eq!(sc.faults.crashes.len(), 1);
        assert!(sc.telemetry);
        assert!(sc.store.is_some());
        assert_eq!(sc.snapshot_transfer_s, 240.0);
    }

    #[test]
    fn uniform_trace_cycles_users_on_cadence() {
        let t = uniform_trace(8, 15.0, 40.0);
        assert_eq!(t.jobs().len(), 8);
        assert_eq!(t.jobs()[0].user, "U65");
        assert_eq!(t.jobs()[4].user, "U65");
        assert_eq!(t.jobs()[5].submit_s, 75.0);
        assert!(t
            .jobs()
            .iter()
            .all(|j| j.duration_s == 40.0 && j.cores == 1));
    }

    #[test]
    fn synthetic_users_are_unique_and_ordered() {
        let users = synthetic_users(1000);
        assert_eq!(users.len(), 1000);
        assert!(users.windows(2).all(|w| w[0] < w[1]));
    }
}
