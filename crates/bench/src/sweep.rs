//! Parallel parameter sweeps.
//!
//! A single simulation run is deliberately single-threaded (bit-exact
//! determinism), but ablation sweeps run many *independent* simulations —
//! those parallelize perfectly. Scoped threads (`std::thread::scope`) keep
//! borrows of the shared trace/scenario without `'static` bounds; results
//! come back in parameter order regardless of completion order.

use std::sync::Mutex;

/// Run `f` over every parameter in parallel (one thread per parameter, which
/// is the right shape for a handful of multi-second simulation runs) and
/// return the results in input order.
pub fn parallel_sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..params.len()).map(|_| None).collect());
    let panicked = std::thread::scope(|scope| {
        let handles: Vec<_> = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let results = &results;
                let f = &f;
                scope.spawn(move || {
                    let r = f(p);
                    results.lock().expect("sweep mutex poisoned")[i] = Some(r);
                })
            })
            .collect();
        handles.into_iter().any(|h| h.join().is_err())
    });
    assert!(!panicked, "sweep worker panicked");
    results
        .into_inner()
        .expect("sweep mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let params: Vec<u64> = (0..16).collect();
        let out = parallel_sweep(&params, |&p| p * p);
        assert_eq!(out, params.iter().map(|p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_shared_context() {
        let shared = vec![1.0f64; 1000];
        let params = [2.0f64, 3.0, 4.0];
        let out = parallel_sweep(&params, |&p| shared.iter().sum::<f64>() * p);
        assert_eq!(out, vec![2000.0, 3000.0, 4000.0]);
    }

    #[test]
    fn empty_params() {
        let out: Vec<u32> = parallel_sweep::<u32, u32, _>(&[], |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        parallel_sweep(&[1], |_| -> u32 { panic!("boom") });
    }
}
