//! # aequus-bench
//!
//! The experiment harness reproducing every table and figure of the paper's
//! evaluation (§IV). Each artifact has a binary in `src/bin/` that prints
//! the same rows/series the paper reports:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — projection property matrix |
//! | `table2` | Table II — job-arrival fits (median, BIC-best family, KS) |
//! | `table3` | Table III — job-duration fits |
//! | `fig4` | Fig. 4 — daily job-arrival histogram (total vs U65) |
//! | `fig5` | Fig. 5 — U65 arrival PDF with the four phases (Eq. 1) |
//! | `fig6` | Fig. 6 — arrival CDFs, fitted vs empirical |
//! | `fig7` | Fig. 7 — job-size CDFs per user |
//! | `fig10_baseline` | baseline convergence run (referenced by §IV-A-2) |
//! | `fig11_update_delay` | impact of update delay (10x time-scaled trace) |
//! | `fig12_nonoptimal` | non-optimal policy test (70/20/8/2) |
//! | `partial_participation` | §IV-A-4 partial cluster participation |
//! | `fig13_bursty` | Fig. 13 — bursty usage test |
//! | `throughput` | §IV-A throughput/utilization measurements |
//! | `production` | §IV production-deployment statistics (HPC2N shape) |
//! | `ablation_*` | design-choice ablations (k weight, decay, projection, dispatch, cache TTL) |
//! | `backfill_sweep` | ROADMAP item 2 — dispatch-policy × projection matrix on the bursty mixed-width workload |
//!
//! Micro-benchmarks of the underlying kernels live in `benches/`, driven by
//! the in-repo [`harness`] (an offline criterion-shaped shim).

#![warn(missing_docs)]

pub mod backfill;
pub mod experiments;
pub mod gossip;
pub mod harness;
pub mod report;
pub mod snapshot;
pub mod sweep;

pub use backfill::{
    bursty_mixed_trace, run_hotpath_bench, run_matrix, run_prediction_comparison,
    run_singlecore_equivalence, BackfillConfig, EquivalenceReport, HotPathReport, MatrixCell,
    PredictionReport,
};
pub use experiments::*;
pub use gossip::{run_gossip_sweep, GossipConfig, GossipPoint, GossipSweep};
pub use sweep::{
    cycle_trace, parallel_sweep, synthetic_users, uniform_trace, ScenarioBuilder, SWEEP_USERS,
};
