//! Microbenchmarks of the fairshare calculation kernel: tree computation,
//! vector extraction, and the three projection algorithms — the work the
//! FCS performs on every periodic refresh.

use aequus_bench::harness::{BenchmarkId, Criterion};
use aequus_core::arena::DirtySet;
use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::policy::{PolicyNode, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_core::GridUser;
use std::collections::BTreeMap;
use std::hint::black_box;

/// A three-level policy: `groups` groups × `users_per_group` users.
fn policy(groups: usize, users_per_group: usize) -> PolicyTree {
    let children: Vec<PolicyNode> = (0..groups)
        .map(|g| {
            PolicyNode::group(
                format!("g{g}"),
                1.0,
                (0..users_per_group)
                    .map(|u| PolicyNode::user(format!("g{g}u{u}"), 1.0))
                    .collect(),
            )
        })
        .collect();
    PolicyTree::new(PolicyNode::group("root", 1.0, children)).unwrap()
}

fn usage(groups: usize, users_per_group: usize) -> BTreeMap<GridUser, f64> {
    let mut out = BTreeMap::new();
    for g in 0..groups {
        for u in 0..users_per_group {
            out.insert(
                GridUser::new(format!("g{g}u{u}")),
                ((g * 31 + u * 7) % 100) as f64 + 1.0,
            );
        }
    }
    out
}

fn bench_tree_compute(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let mut group = c.benchmark_group("fairshare_tree_compute");
    for (groups, users) in [(4, 4), (16, 16), (64, 64)] {
        let p = policy(groups, users);
        let u = usage(groups, users);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}users", groups * users)),
            &(p, u),
            |b, (p, u)| b.iter(|| FairshareTree::compute(black_box(p), black_box(u), &cfg, 0.0)),
        );
    }
    group.finish();
}

fn bench_projections(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let p = policy(16, 16);
    let u = usage(16, 16);
    let tree = FairshareTree::compute(&p, &u, &cfg, 0.0);
    let mut group = c.benchmark_group("projection_256users");
    for kind in ProjectionKind::ALL {
        let proj = kind.build();
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| proj.project(black_box(&tree)))
        });
    }
    group.finish();
}

/// Full recompute vs dirty-subtree recompute on a deep 1024-user tree with
/// 1% of the users churning between refreshes — the steady-state workload of
/// the incremental FCS refresh path.
fn bench_full_vs_incremental(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let (groups, users) = (32, 32);
    let p = policy(groups, users);
    let mut u = usage(groups, users);
    // 1% churn: every 100th user's usage moves, and only those are dirty.
    let churned: Vec<GridUser> = (0..groups * users)
        .step_by(100)
        .map(|i| GridUser::new(format!("g{}u{}", i / users, i % users)))
        .collect();
    let mut dirty = DirtySet::new();
    for user in &churned {
        *u.get_mut(user).unwrap() += 5.0;
        dirty.mark_user(user.clone());
    }

    let mut group = c.benchmark_group("refresh_1024users_1pct_churn");
    group.bench_function("full_compute", |b| {
        b.iter(|| FairshareTree::compute(black_box(&p), black_box(&u), &cfg, 0.0))
    });
    let tree = FairshareTree::compute(&p, &u, &cfg, 0.0);
    group.bench_function("incremental_recompute", |b| {
        let mut t = tree.clone();
        b.iter(|| black_box(&mut t).recompute_dirty(&p, &u, black_box(&dirty), 0.0))
    });
    group.finish();
}

fn bench_vector_extraction(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let p = policy(32, 32);
    let u = usage(32, 32);
    let tree = FairshareTree::compute(&p, &u, &cfg, 0.0);
    c.bench_function("all_vectors_1024users", |b| {
        b.iter(|| black_box(&tree).all_vectors())
    });
}

fn main() {
    let mut c = Criterion::default();
    bench_tree_compute(&mut c);
    bench_full_vs_incremental(&mut c);
    bench_projections(&mut c);
    bench_vector_extraction(&mut c);
}
