//! Microbenchmarks of the fairshare calculation kernel: tree computation,
//! vector extraction, and the three projection algorithms — the work the
//! FCS performs on every periodic refresh.

use aequus_core::fairshare::{FairshareConfig, FairshareTree};
use aequus_core::policy::{PolicyNode, PolicyTree};
use aequus_core::projection::ProjectionKind;
use aequus_core::GridUser;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

/// A three-level policy: `groups` groups × `users_per_group` users.
fn policy(groups: usize, users_per_group: usize) -> PolicyTree {
    let children: Vec<PolicyNode> = (0..groups)
        .map(|g| {
            PolicyNode::group(
                format!("g{g}"),
                1.0,
                (0..users_per_group)
                    .map(|u| PolicyNode::user(format!("g{g}u{u}"), 1.0))
                    .collect(),
            )
        })
        .collect();
    PolicyTree::new(PolicyNode::group("root", 1.0, children)).unwrap()
}

fn usage(groups: usize, users_per_group: usize) -> BTreeMap<GridUser, f64> {
    let mut out = BTreeMap::new();
    for g in 0..groups {
        for u in 0..users_per_group {
            out.insert(
                GridUser::new(format!("g{g}u{u}")),
                ((g * 31 + u * 7) % 100) as f64 + 1.0,
            );
        }
    }
    out
}

fn bench_tree_compute(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let mut group = c.benchmark_group("fairshare_tree_compute");
    for (groups, users) in [(4, 4), (16, 16), (64, 64)] {
        let p = policy(groups, users);
        let u = usage(groups, users);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}users", groups * users)),
            &(p, u),
            |b, (p, u)| b.iter(|| FairshareTree::compute(black_box(p), black_box(u), &cfg, 0.0)),
        );
    }
    group.finish();
}

fn bench_projections(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let p = policy(16, 16);
    let u = usage(16, 16);
    let tree = FairshareTree::compute(&p, &u, &cfg, 0.0);
    let mut group = c.benchmark_group("projection_256users");
    for kind in ProjectionKind::ALL {
        let proj = kind.build();
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| proj.project(black_box(&tree)))
        });
    }
    group.finish();
}

fn bench_vector_extraction(c: &mut Criterion) {
    let cfg = FairshareConfig::default();
    let p = policy(32, 32);
    let u = usage(32, 32);
    let tree = FairshareTree::compute(&p, &u, &cfg, 0.0);
    c.bench_function("all_vectors_1024users", |b| {
        b.iter(|| black_box(&tree).all_vectors())
    });
}

criterion_group!(
    benches,
    bench_tree_compute,
    bench_projections,
    bench_vector_extraction
);
criterion_main!(benches);
