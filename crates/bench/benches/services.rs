//! Microbenchmarks of the service layer: USS ingestion and summary
//! production, FCS refresh, and libaequus query latency (cache hit vs miss)
//! — the per-job costs the throughput test (§IV-A) exercises.

use aequus_bench::harness::Criterion;
use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::usage::UsageRecord;
use aequus_core::{DecayPolicy, GridUser};
use aequus_services::{Fcs, LibAequus, ParticipationMode, Pds, Ums, Uss};
use std::hint::black_box;

fn record(i: u64) -> UsageRecord {
    UsageRecord {
        job: JobId(i),
        user: GridUser::new(format!("u{}", i % 50)),
        site: SiteId(0),
        cores: 1,
        start_s: i as f64,
        end_s: i as f64 + 100.0,
    }
}

fn bench_uss(c: &mut Criterion) {
    c.bench_function("uss_ingest", |b| {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        let mut i = 0u64;
        b.iter(|| {
            uss.ingest(black_box(&record(i)));
            i += 1;
        })
    });
    c.bench_function("uss_summary_50users", |b| {
        let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
        for i in 0..5000 {
            uss.ingest(&record(i));
        }
        b.iter(|| black_box(&uss).decayed_usage(6000.0, DecayPolicy::default()))
    });
}

fn setup_fcs() -> (Pds, Ums, Uss, Fcs) {
    let users: Vec<(String, f64)> = (0..50).map(|i| (format!("u{i}"), 1.0)).collect();
    let pairs: Vec<(&str, f64)> = users.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let pds = Pds::new(flat_policy(&pairs).unwrap());
    let mut uss = Uss::new(SiteId(0), ParticipationMode::Full, 60.0);
    for i in 0..5000 {
        uss.ingest(&record(i));
    }
    let mut ums = Ums::new(0.0, DecayPolicy::default());
    ums.refresh(&mut uss, 6000.0);
    let fcs = Fcs::new(FairshareConfig::default(), ProjectionKind::Percental, 30.0);
    (pds, ums, uss, fcs)
}

fn bench_fcs_refresh(c: &mut Criterion) {
    let (mut pds, mut ums, _uss, mut fcs) = setup_fcs();
    c.bench_function("fcs_refresh_50users", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 100.0; // always stale
            fcs.refresh(black_box(&mut pds), black_box(&mut ums), t)
        })
    });
}

fn bench_libaequus(c: &mut Criterion) {
    let (mut pds, mut ums, _uss, mut fcs) = setup_fcs();
    fcs.refresh(&mut pds, &mut ums, 0.0);
    c.bench_function("libaequus_query_cache_hit", |b| {
        let mut lib = LibAequus::new(1e12, 1e12);
        let user = GridUser::new("u7");
        lib.get_fairshare(&fcs, &user, 0.0);
        b.iter(|| lib.get_fairshare(black_box(&fcs), &user, 1.0))
    });
    c.bench_function("libaequus_query_cache_miss", |b| {
        let mut lib = LibAequus::new(0.0, 0.0); // zero TTL: always miss
        let user = GridUser::new("u7");
        b.iter(|| lib.get_fairshare(black_box(&fcs), &user, 1.0))
    });
}

fn main() {
    let mut c = Criterion::default();
    bench_uss(&mut c);
    bench_fcs_refresh(&mut c);
    bench_libaequus(&mut c);
}
