//! Microbenchmarks of the statistics substrate: ICDF sampling of the
//! workload-model families, KS evaluation, and a small BIC model-selection
//! pass (the Table II/III machinery).

use aequus_bench::harness::Criterion;
use aequus_stats::dist::{BirnbaumSaunders, Burr, Gev, Weibull};
use aequus_stats::{sample_n, select_best, ContinuousDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("icdf_sample_1k");
    let gev = Gev::new(-0.386, 19.5, 7.35e4).unwrap();
    let burr = Burr::new(7.4e4, 0.86, 0.08).unwrap();
    let bs = BirnbaumSaunders::new(1.76e4, 3.53).unwrap();
    let weib = Weibull::new(5.49e4, 0.637).unwrap();
    group.bench_function("gev", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_n(black_box(&gev), 1000, &mut rng))
    });
    group.bench_function("burr", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_n(black_box(&burr), 1000, &mut rng))
    });
    group.bench_function("birnbaum_saunders", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_n(black_box(&bs), 1000, &mut rng))
    });
    group.bench_function("weibull", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| sample_n(black_box(&weib), 1000, &mut rng))
    });
    group.finish();
}

fn bench_ks(c: &mut Criterion) {
    let gev = Gev::new(-0.3, 20.0, 100.0).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let data = sample_n(&gev, 5000, &mut rng);
    c.bench_function("ks_statistic_5k", |b| {
        b.iter(|| aequus_stats::ks::ks_statistic(black_box(&data), |x| gev.cdf(x)))
    });
}

fn bench_model_selection(c: &mut Criterion) {
    let gev = Gev::new(-0.3, 20.0, 100.0).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let data = sample_n(&gev, 500, &mut rng);
    let mut group = c.benchmark_group("bic_selection");
    group.sample_size(10);
    group.bench_function("18_families_500pts", |b| {
        b.iter(|| select_best(black_box(&data)))
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_sampling(&mut c);
    bench_ks(&mut c);
    bench_model_selection(&mut c);
}
