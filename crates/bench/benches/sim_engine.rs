//! End-to-end simulation benchmarks: events per second of the full
//! integrated stack on miniature versions of the paper's scenarios.

use aequus_bench::harness::Criterion;
use aequus_bench::{baseline_trace, run_baseline, run_bursty};
use aequus_sim::{GridScenario, GridSimulation};
use aequus_workload::users::baseline_policy_shares;
use std::hint::black_box;

fn bench_baseline_mini(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_simulation");
    group.sample_size(10);
    group.bench_function("baseline_4k_jobs", |b| {
        b.iter(|| run_baseline(black_box(4000), 1))
    });
    group.bench_function("bursty_4k_jobs", |b| {
        b.iter(|| run_bursty(black_box(4000), 1))
    });
    group.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Report the event-processing rate of one representative run.
    let trace = baseline_trace(4000, 2);
    let scenario = GridScenario::national_testbed(&baseline_policy_shares(), 2);
    let result = GridSimulation::new(scenario.clone()).run(&trace, 1800.0);
    eprintln!(
        "representative run: {} events over {:.0}s simulated",
        result.events_processed, result.end_s
    );
    let mut group = c.benchmark_group("event_loop");
    group.sample_size(10);
    group.bench_function("national_testbed_4k", |b| {
        b.iter(|| GridSimulation::new(scenario.clone()).run(black_box(&trace), 1800.0))
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_baseline_mini(&mut c);
    bench_event_rate(&mut c);
}
