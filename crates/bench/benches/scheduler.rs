//! Microbenchmarks of the RMS dispatch path: priority-ordered dispatch with
//! EASY backfill over large pending queues (the state the 95%-load tests
//! put the schedulers in).

use aequus_bench::harness::{BatchSize, BenchmarkId, Criterion};
use aequus_core::fairshare::FairshareConfig;
use aequus_core::ids::{JobId, SiteId};
use aequus_core::policy::flat_policy;
use aequus_core::projection::ProjectionKind;
use aequus_core::{GridUser, SystemUser};
use aequus_rms::{
    FactorConfig, Job, LocalFairshare, NodePool, PriorityWeights, ReprioritizePolicy, SchedulerCore,
};
use std::hint::black_box;

fn source() -> LocalFairshare {
    let mut lf = LocalFairshare::new(
        flat_policy(&[("a", 0.5), ("b", 0.5)]).unwrap(),
        FairshareConfig::default(),
        ProjectionKind::Percental,
        60.0,
    );
    lf.map_identity(SystemUser::new("sa"), GridUser::new("a"));
    lf.map_identity(SystemUser::new("sb"), GridUser::new("b"));
    lf
}

fn loaded_scheduler(queue: usize) -> (SchedulerCore, LocalFairshare) {
    let mut sched = SchedulerCore::new(
        SiteId(0),
        NodePool::new(40, 1),
        PriorityWeights::fairshare_only(),
        FactorConfig::default(),
        ReprioritizePolicy::Interval(30.0),
    );
    let mut src = source();
    for i in 0..queue as u64 {
        let sys = if i % 2 == 0 { "sa" } else { "sb" };
        sched.submit(
            Job::new(JobId(i), SystemUser::new(sys), 1, 0.0, 500.0),
            &mut src,
            0.0,
        );
    }
    (sched, src)
}

fn bench_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_advance");
    group.sample_size(20);
    for queue in [100usize, 1000, 8000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{queue}queued")),
            &queue,
            |b, &queue| {
                b.iter_batched(
                    || loaded_scheduler(queue),
                    |(mut sched, mut src)| {
                        sched.advance(black_box(&mut src), 1.0);
                        sched
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_advance(&mut c);
}
