//! SLURM-like scheduler front end (§III-A): "SLURM integration is done by
//! implementing custom Aequus priority and job completion plugins for use in
//! the SLURM plug-in system. The priority plug-in is based on the existing
//! multifactor priority plugin, with the normal fairshare priority
//! calculation code replaced with a call to libaequus."
//!
//! SLURM recalculates queue priorities on a periodic interval
//! (`PriorityCalcPeriod`), which is stage IV of the §IV-A-2 delay chain.

use crate::dispatch::DispatchConfig;
use crate::job::Job;
use crate::multifactor::{FactorConfig, PriorityWeights};
use crate::nodes::NodePool;
use crate::plugin::FairshareSource;
use crate::scheduler::{ReprioritizePolicy, SchedulerCore, SchedulerStats};
use aequus_core::ids::SiteId;

/// Configuration of a SLURM-like scheduler instance.
#[derive(Debug, Clone)]
pub struct SlurmConfig {
    /// Priority factor weights (the multifactor plugin configuration).
    pub weights: PriorityWeights,
    /// Factor shaping parameters.
    pub factors: FactorConfig,
    /// Priority recalculation period, seconds (`PriorityCalcPeriod`).
    pub priority_calc_period_s: f64,
    /// Dispatch order, runtime predictor, and overrun policy.
    pub dispatch: DispatchConfig,
}

impl Default for SlurmConfig {
    fn default() -> Self {
        Self {
            weights: PriorityWeights::fairshare_only(),
            factors: FactorConfig::default(),
            priority_calc_period_s: 30.0,
            dispatch: DispatchConfig::default(),
        }
    }
}

/// A SLURM-like scheduler with the Aequus priority and completion plugins
/// installed.
#[derive(Debug)]
pub struct SlurmScheduler {
    core: SchedulerCore,
}

impl SlurmScheduler {
    /// Create a SLURM-like scheduler over the given node pool.
    pub fn new(site: SiteId, nodes: NodePool, config: SlurmConfig) -> Self {
        Self {
            core: SchedulerCore::with_dispatch(
                site,
                nodes,
                config.weights,
                config.factors,
                ReprioritizePolicy::Interval(config.priority_calc_period_s),
                config.dispatch,
            ),
        }
    }

    /// Submit a job (sbatch). Identity resolution and the initial priority
    /// come from the Aequus plugins via `source`.
    pub fn submit(&mut self, job: Job, source: &mut dyn FairshareSource, now_s: f64) {
        self.core.submit(job, source, now_s);
    }

    /// Advance to `now_s`: completions (job completion plugin fires per
    /// finished job), periodic re-prioritization, dispatch with backfill.
    pub fn advance(&mut self, source: &mut dyn FairshareSource, now_s: f64) {
        self.core.advance(source, now_s);
    }

    /// Scheduler statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.core.stats
    }

    /// The underlying core (queue/nodes inspection).
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Mutable access to the core (used by the simulator for utilization
    /// accounting).
    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// Earliest pending completion, for event scheduling.
    pub fn next_completion(&self) -> Option<f64> {
        self.core.next_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::LocalFairshare;
    use aequus_core::fairshare::FairshareConfig;
    use aequus_core::policy::flat_policy;
    use aequus_core::projection::ProjectionKind;
    use aequus_core::{GridUser, JobId, SystemUser};

    #[test]
    fn slurm_runs_workload_to_completion() {
        let mut slurm = SlurmScheduler::new(SiteId(0), NodePool::new(4, 1), SlurmConfig::default());
        let mut src = LocalFairshare::new(
            flat_policy(&[("a", 1.0)]).unwrap(),
            FairshareConfig::default(),
            ProjectionKind::Percental,
            60.0,
        );
        src.map_identity(SystemUser::new("s"), GridUser::new("a"));
        for i in 0..10 {
            slurm.submit(
                Job::new(JobId(i), SystemUser::new("s"), 1, i as f64, 50.0),
                &mut src,
                i as f64,
            );
        }
        let mut t = 0.0;
        while slurm.stats().completed < 10 && t < 10_000.0 {
            t += 10.0;
            slurm.advance(&mut src, t);
        }
        assert_eq!(slurm.stats().completed, 10);
        assert_eq!(slurm.stats().submitted, 10);
    }
}
