//! Runtime prediction for backfill candidate selection.
//!
//! Backfill quality hinges on how well the scheduler can guess job
//! runtimes: user walltime requests are notoriously padded, which makes
//! shadow-time reservations pessimistic and shrinks backfill windows. This
//! module provides per-user/per-width-class historical estimators that
//! replace the raw request in backfill decisions, plus the misprediction
//! accounting an RMS needs when a prediction (or the request itself) turns
//! out too short — kill at the requested limit or let the job run on.
//!
//! The default [`PredictorKind::Request`] trusts the request verbatim, which
//! reproduces classic EASY behavior bit-for-bit when requests equal true
//! runtimes (as in the paper's idle-wait test bed).

use crate::job::Job;
use aequus_core::ids::JobId;
use aequus_telemetry::{Counter, Histogram, Telemetry};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Smallest runtime a predictor will ever emit, seconds. Keeps shadow-time
/// arithmetic away from zero-length degeneracies.
pub const MIN_PREDICTION_S: f64 = 1e-3;

/// Which estimator backs runtime prediction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PredictorKind {
    /// Trust the user's walltime request verbatim (classic EASY input).
    #[default]
    Request,
    /// Capped running average of observed runtimes per class: the mean
    /// update weight never drops below `1/cap`, so the estimate keeps
    /// tracking drifting workloads instead of freezing.
    RunningAverage {
        /// Effective sample-count cap (≥ 1).
        cap: u32,
    },
    /// Maximum over the last `k` observed runtimes per class — a
    /// conservative estimator that rarely underestimates.
    LastKMax {
        /// Window length (≥ 1).
        k: usize,
    },
}

impl PredictorKind {
    /// Short label for tables and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Request => "request",
            PredictorKind::RunningAverage { .. } => "running-avg",
            PredictorKind::LastKMax { .. } => "last-k-max",
        }
    }
}

/// What to do when a job reaches its requested walltime without finishing
/// (the request — not the prediction — is the enforceable contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MispredictPolicy {
    /// Let the job run to its true duration; the overrun is counted but
    /// not enforced (lenient sites).
    #[default]
    Extend,
    /// Kill the job at the requested walltime, as production RMSs do. The
    /// truncated runtime is what gets charged and observed.
    KillAtRequest,
}

/// Aggregate prediction-accuracy accounting.
#[derive(Debug, Clone, Default)]
pub struct PredictionStats {
    /// Completed jobs whose start-time prediction was scored.
    pub scored: u64,
    /// Predictions strictly below the actual runtime.
    pub underestimates: u64,
    /// Predictions strictly above the actual runtime.
    pub overestimates: u64,
    /// Jobs killed at their requested walltime.
    pub kills: u64,
    /// Sum of |predicted − actual| / actual over scored jobs.
    pub abs_rel_err_sum: f64,
}

impl PredictionStats {
    /// Mean absolute relative prediction error (0.0 when nothing scored).
    pub fn mean_abs_rel_err(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.abs_rel_err_sum / self.scored as f64
        }
    }
}

/// Pre-registered prediction metric handles (no-ops until wired).
#[derive(Debug, Clone, Default)]
struct PredictMetrics {
    scored: Counter,
    underestimates: Counter,
    kills: Counter,
    h_rel_err: Histogram,
}

impl PredictMetrics {
    fn wire(t: &Telemetry) -> Self {
        Self {
            scored: t.counter("aequus_rms_predictions_total"),
            underestimates: t.counter("aequus_rms_underestimates_total"),
            kills: t.counter("aequus_rms_predict_kills_total"),
            h_rel_err: t.histogram("aequus_rms_predict_rel_err"),
        }
    }
}

/// Per-class estimator state.
#[derive(Debug, Clone, Default)]
struct ClassHistory {
    count: u64,
    mean: f64,
    last_k: VecDeque<f64>,
}

/// Prediction class: one history per (user, power-of-two width bucket), so
/// a user's wide jobs don't pollute the estimate for their serial ones.
type ClassKey = (String, u32);

/// The runtime predictor: estimator state, in-flight predictions, and
/// misprediction accounting.
#[derive(Debug)]
pub struct RuntimePredictor {
    kind: PredictorKind,
    mispredict: MispredictPolicy,
    classes: BTreeMap<ClassKey, ClassHistory>,
    inflight: BTreeMap<JobId, f64>,
    /// Accuracy accounting.
    pub stats: PredictionStats,
    metrics: PredictMetrics,
}

fn class_key(job: &Job) -> ClassKey {
    let user = job
        .grid_user
        .as_ref()
        .map(|u| u.as_str().to_string())
        .unwrap_or_else(|| job.system_user.as_str().to_string());
    (user, job.cores.max(1).next_power_of_two())
}

impl RuntimePredictor {
    /// Create a predictor with the given estimator and overrun policy.
    pub fn new(kind: PredictorKind, mispredict: MispredictPolicy) -> Self {
        Self {
            kind,
            mispredict,
            classes: BTreeMap::new(),
            inflight: BTreeMap::new(),
            stats: PredictionStats::default(),
            metrics: PredictMetrics::default(),
        }
    }

    /// Wire prediction metrics into a telemetry registry.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.metrics = PredictMetrics::wire(t);
    }

    /// The configured estimator.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// The configured overrun policy.
    pub fn mispredict(&self) -> MispredictPolicy {
        self.mispredict
    }

    /// Predicted runtime for a queued job, clamped to
    /// `[MIN_PREDICTION_S, request]` — the request stays an upper bound
    /// because the job cannot be *scheduled* for longer than its contract.
    pub fn predict(&self, job: &Job) -> f64 {
        let request = job.request_s.max(MIN_PREDICTION_S);
        let raw = match self.kind {
            PredictorKind::Request => request,
            PredictorKind::RunningAverage { .. } => self
                .classes
                .get(&class_key(job))
                .filter(|h| h.count > 0)
                .map_or(request, |h| h.mean),
            PredictorKind::LastKMax { .. } => self
                .classes
                .get(&class_key(job))
                .filter(|h| !h.last_k.is_empty())
                .map_or(request, |h| h.last_k.iter().copied().fold(0.0, f64::max)),
        };
        raw.clamp(MIN_PREDICTION_S, request)
    }

    /// Record the prediction a job started under, and return the wall-clock
    /// the job will actually occupy its cores for: the true duration, or the
    /// requested limit when [`MispredictPolicy::KillAtRequest`] truncates an
    /// overrunning job. The bool reports whether the job was killed.
    pub fn on_start(&mut self, job: &Job) -> (f64, bool) {
        self.inflight.insert(job.id, self.predict(job));
        if self.mispredict == MispredictPolicy::KillAtRequest && job.duration_s > job.request_s {
            self.stats.kills += 1;
            self.metrics.kills.inc();
            (job.request_s, true)
        } else {
            (job.duration_s, false)
        }
    }

    /// Score the start-time prediction against the observed runtime and
    /// feed the observation back into the class history. `actual_s` is the
    /// runtime as it happened (post-kill truncation).
    pub fn on_complete(&mut self, job: &Job, actual_s: f64) {
        if let Some(predicted) = self.inflight.remove(&job.id) {
            let actual = actual_s.max(MIN_PREDICTION_S);
            let rel_err = (predicted - actual).abs() / actual;
            self.stats.scored += 1;
            self.stats.abs_rel_err_sum += rel_err;
            self.metrics.scored.inc();
            self.metrics.h_rel_err.record(rel_err);
            if predicted < actual {
                self.stats.underestimates += 1;
                self.metrics.underestimates.inc();
            } else if predicted > actual {
                self.stats.overestimates += 1;
            }
        }
        let history = self.classes.entry(class_key(job)).or_default();
        history.count += 1;
        match self.kind {
            PredictorKind::Request => {}
            PredictorKind::RunningAverage { cap } => {
                let n = history.count.min(cap.max(1) as u64) as f64;
                history.mean += (actual_s - history.mean) / n;
            }
            PredictorKind::LastKMax { k } => {
                history.last_k.push_back(actual_s);
                while history.last_k.len() > k.max(1) {
                    history.last_k.pop_front();
                }
            }
        }
    }

    /// Believed completion time of a running job: start + predicted
    /// runtime, pushed ahead of `now_s` when the job has already outlived
    /// its prediction (the scheduler then believes it ends "any second
    /// now" and re-evaluates next cycle).
    pub fn believed_end(&self, job: &Job, now_s: f64) -> Option<f64> {
        let start_s = match job.state {
            crate::job::JobState::Running { start_s } => start_s,
            _ => return None,
        };
        let predicted = self
            .inflight
            .get(&job.id)
            .copied()
            .unwrap_or(job.duration_s);
        let end = start_s + predicted;
        Some(if end > now_s {
            end
        } else {
            now_s + MIN_PREDICTION_S
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aequus_core::{JobId, SystemUser};

    fn job(id: u64, cores: u32, dur: f64, req: f64) -> Job {
        Job::new(JobId(id), SystemUser::new("u"), cores, 0.0, dur).with_request(req)
    }

    #[test]
    fn request_predictor_echoes_request() {
        let p = RuntimePredictor::new(PredictorKind::Request, MispredictPolicy::Extend);
        assert_eq!(p.predict(&job(1, 1, 50.0, 300.0)), 300.0);
    }

    #[test]
    fn running_average_learns_and_clamps_to_request() {
        let mut p = RuntimePredictor::new(
            PredictorKind::RunningAverage { cap: 10 },
            MispredictPolicy::Extend,
        );
        // No history yet: fall back to the request.
        assert_eq!(p.predict(&job(1, 1, 50.0, 300.0)), 300.0);
        for i in 0..4 {
            p.on_complete(&job(i, 1, 100.0, 300.0), 100.0);
        }
        let est = p.predict(&job(9, 1, 50.0, 300.0));
        assert!(
            (est - 100.0).abs() < 1e-9,
            "learned the true runtime: {est}"
        );
        // A tiny request still caps the prediction.
        assert_eq!(p.predict(&job(10, 1, 50.0, 30.0)), 30.0);
    }

    #[test]
    fn classes_keep_widths_apart() {
        let mut p = RuntimePredictor::new(
            PredictorKind::RunningAverage { cap: 10 },
            MispredictPolicy::Extend,
        );
        p.on_complete(&job(1, 1, 10.0, 300.0), 10.0);
        p.on_complete(&job(2, 8, 200.0, 300.0), 200.0);
        assert!((p.predict(&job(3, 1, 0.0, 300.0)) - 10.0).abs() < 1e-9);
        assert!((p.predict(&job(4, 8, 0.0, 300.0)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn last_k_max_is_conservative() {
        let mut p =
            RuntimePredictor::new(PredictorKind::LastKMax { k: 3 }, MispredictPolicy::Extend);
        for (i, d) in [10.0, 90.0, 20.0, 30.0].iter().enumerate() {
            p.on_complete(&job(i as u64, 1, *d, 300.0), *d);
        }
        // Window is [90, 20, 30] → max 90.
        assert_eq!(p.predict(&job(9, 1, 0.0, 300.0)), 90.0);
        p.on_complete(&job(5, 1, 5.0, 300.0), 5.0);
        // Window slides to [20, 30, 5] → max 30.
        assert_eq!(p.predict(&job(9, 1, 0.0, 300.0)), 30.0);
    }

    #[test]
    fn kill_at_request_truncates_and_counts() {
        let mut p = RuntimePredictor::new(PredictorKind::Request, MispredictPolicy::KillAtRequest);
        let j = job(1, 1, 100.0, 60.0); // under-requested
        let (run_for, killed) = p.on_start(&j);
        assert!(killed);
        assert_eq!(run_for, 60.0);
        assert_eq!(p.stats.kills, 1);
        let ok = job(2, 1, 50.0, 60.0);
        let (run_for, killed) = p.on_start(&ok);
        assert!(!killed);
        assert_eq!(run_for, 50.0);
    }

    #[test]
    fn accuracy_accounting_scores_completions() {
        let mut p = RuntimePredictor::new(PredictorKind::Request, MispredictPolicy::Extend);
        let j = job(1, 1, 100.0, 300.0);
        p.on_start(&j); // predicted 300
        p.on_complete(&j, 100.0); // actual 100 → overestimate, rel err 2.0
        assert_eq!(p.stats.scored, 1);
        assert_eq!(p.stats.overestimates, 1);
        assert_eq!(p.stats.underestimates, 0);
        assert!((p.stats.mean_abs_rel_err() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn believed_end_never_in_the_past() {
        let mut p = RuntimePredictor::new(PredictorKind::Request, MispredictPolicy::Extend);
        let mut j = job(1, 1, 100.0, 50.0); // request shorter than truth
        p.on_start(&j); // predicted 50
        j.state = crate::job::JobState::Running { start_s: 0.0 };
        // At t=80 the job outlived its 50 s prediction: believed end stays
        // ahead of now.
        let end = p.believed_end(&j, 80.0).unwrap();
        assert!(end > 80.0);
    }
}
