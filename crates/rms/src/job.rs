//! Jobs as seen by the local resource manager.

use aequus_core::{GridUser, JobId, SystemUser};
use serde::{Deserialize, Serialize};

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Executing since the given time.
    Running {
        /// Execution start time, seconds.
        start_s: f64,
    },
    /// Finished.
    Completed {
        /// Execution start time, seconds.
        start_s: f64,
        /// Execution end time, seconds.
        end_s: f64,
    },
}

/// A job in the local resource management system.
///
/// The trace is "comprised exclusively of bag-of-task jobs using a single
/// processor per job" (§IV-3), but multi-core jobs are supported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identity.
    pub id: JobId,
    /// The local system account the job runs under.
    pub system_user: SystemUser,
    /// The grid identity, resolved at submission (global fairshare requires
    /// it "regardless of where the job is being executed", §III-B).
    pub grid_user: Option<GridUser>,
    /// Cores requested.
    pub cores: u32,
    /// Submission time, seconds.
    pub submit_s: f64,
    /// Wall-clock duration once started, seconds (the test-bed replaces
    /// computation with idle waits of this length).
    pub duration_s: f64,
    /// Requested walltime, seconds — the user's declared upper bound, which
    /// backfill reservations and kill-at-limit enforcement are based on.
    /// Defaults to `duration_s` (a perfectly honest request).
    pub request_s: f64,
    /// Current state.
    pub state: JobState,
}

impl Job {
    /// Create a pending job.
    pub fn new(
        id: JobId,
        system_user: SystemUser,
        cores: u32,
        submit_s: f64,
        duration_s: f64,
    ) -> Self {
        Self {
            id,
            system_user,
            grid_user: None,
            cores,
            submit_s,
            duration_s,
            request_s: duration_s,
            state: JobState::Pending,
        }
    }

    /// Set the requested walltime (builder style). Requests below the true
    /// duration model under-requesting users; above, padded requests.
    pub fn with_request(mut self, request_s: f64) -> Self {
        self.request_s = request_s;
        self
    }

    /// Time spent waiting in the queue as of `now_s` (0 once running).
    pub fn wait_time(&self, now_s: f64) -> f64 {
        match self.state {
            JobState::Pending => (now_s - self.submit_s).max(0.0),
            JobState::Running { start_s } | JobState::Completed { start_s, .. } => {
                (start_s - self.submit_s).max(0.0)
            }
        }
    }

    /// Completion time if running (start + duration).
    pub fn expected_end(&self) -> Option<f64> {
        match self.state {
            JobState::Running { start_s } => Some(start_s + self.duration_s),
            _ => None,
        }
    }

    /// Whether the job has finished.
    pub fn is_completed(&self) -> bool {
        matches!(self.state, JobState::Completed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_time_by_state() {
        let mut j = Job::new(JobId(1), SystemUser::new("u"), 1, 100.0, 50.0);
        assert_eq!(j.wait_time(130.0), 30.0);
        j.state = JobState::Running { start_s: 120.0 };
        assert_eq!(j.wait_time(500.0), 20.0);
        assert_eq!(j.expected_end(), Some(170.0));
        j.state = JobState::Completed {
            start_s: 120.0,
            end_s: 170.0,
        };
        assert_eq!(j.wait_time(999.0), 20.0);
        assert!(j.is_completed());
        assert_eq!(j.expected_end(), None);
    }

    #[test]
    fn wait_never_negative() {
        let j = Job::new(JobId(1), SystemUser::new("u"), 1, 100.0, 50.0);
        assert_eq!(j.wait_time(50.0), 0.0);
    }
}
